//! OSV-shaped affected-range semantics and JSON round-trip.
//!
//! Advisories carry the [OSV schema](https://ossf.github.io/osv-schema/)'s
//! `affected[].ranges[].events` model: a range is a sorted walk over
//! `introduced` / `fixed` / `last_affected` events, `SEMVER` ranges for
//! ecosystems whose registries publish strict semver and `ECOSYSTEM`
//! ranges elsewhere. Evaluation reuses the workspace [`Version`] ordering
//! (including the PR 5 pre-release fixes) and mirrors the
//! [`VersionReq`](sbomdiff_types::VersionReq) pre-release gate: a
//! pre-release only matches a range whose events mention one, so the OSV
//! path and the legacy constraint path agree on the same universe.
//!
//! The database round-trips through files as OSV JSON (an
//! `{"advisories": [...]}` envelope of per-advisory OSV documents) via
//! `sbomdiff_textformats::json`; ingestion never panics — malformed
//! envelopes fail with one classified [`Diagnostic`], damaged individual
//! advisories are skipped with per-advisory diagnostics.

use sbomdiff_textformats::{json, Value};
use sbomdiff_types::{DiagClass, Diagnostic, Ecosystem, Purl, Version};

use crate::advisory::{Advisory, AdvisoryDb, Severity};

/// OSV range type: how event versions are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeKind {
    /// `SEMVER`: events are strict semver, compared per SemVer §11.
    Semver,
    /// `ECOSYSTEM`: events use the ecosystem's native version ordering.
    Ecosystem,
}

impl RangeKind {
    /// The OSV `ranges[].type` string.
    pub fn label(self) -> &'static str {
        match self {
            RangeKind::Semver => "SEMVER",
            RangeKind::Ecosystem => "ECOSYSTEM",
        }
    }

    /// Parses an OSV `ranges[].type` string.
    pub fn from_label(label: &str) -> Option<RangeKind> {
        match label {
            "SEMVER" => Some(RangeKind::Semver),
            "ECOSYSTEM" => Some(RangeKind::Ecosystem),
            _ => None,
        }
    }

    /// The range type OSV feeds use for an ecosystem: `SEMVER` where the
    /// registry mandates semver (npm, Go, Cargo, Swift PM), `ECOSYSTEM`
    /// where versioning is scheme-specific (PEP 440, Maven, gems, ...).
    pub fn for_ecosystem(eco: Ecosystem) -> RangeKind {
        match eco {
            Ecosystem::JavaScript | Ecosystem::Go | Ecosystem::Rust | Ecosystem::Swift => {
                RangeKind::Semver
            }
            _ => RangeKind::Ecosystem,
        }
    }
}

/// One OSV range event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsvEvent {
    /// `{"introduced": v}`; `None` encodes the schema's `"0"` sentinel
    /// (affected since the beginning of time).
    Introduced(Option<Version>),
    /// `{"fixed": v}`: `v` itself is no longer affected (exclusive).
    Fixed(Version),
    /// `{"last_affected": v}`: `v` is the last affected version
    /// (inclusive).
    LastAffected(Version),
}

impl OsvEvent {
    /// The event's version, when it carries a concrete one.
    pub fn version(&self) -> Option<&Version> {
        match self {
            OsvEvent::Introduced(v) => v.as_ref(),
            OsvEvent::Fixed(v) | OsvEvent::LastAffected(v) => Some(v),
        }
    }

    /// Sort rank at equal versions, used as a deterministic tie-breaker;
    /// the walk itself decides whether a tied `introduced` is applied
    /// before or after the tied limit events (see [`OsvRange::affects`]).
    fn rank(&self) -> u8 {
        match self {
            OsvEvent::Introduced(_) => 0,
            OsvEvent::LastAffected(_) => 1,
            OsvEvent::Fixed(_) => 2,
        }
    }

    /// The OSV JSON key for this event.
    fn key(&self) -> &'static str {
        match self {
            OsvEvent::Introduced(_) => "introduced",
            OsvEvent::Fixed(_) => "fixed",
            OsvEvent::LastAffected(_) => "last_affected",
        }
    }

    /// The OSV JSON value for this event (`"0"` for the epoch sentinel).
    fn value_string(&self) -> String {
        match self.version() {
            Some(v) => v.to_unprefixed(),
            None => "0".to_string(),
        }
    }
}

/// One OSV `ranges[]` entry: a type plus its event list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsvRange {
    /// How event versions are compared.
    pub kind: RangeKind,
    /// The events, in declaration order (evaluation sorts a copy).
    pub events: Vec<OsvEvent>,
}

impl OsvRange {
    /// The dominant real-world shape: affected from `introduced` (or the
    /// beginning of time) up to, excluding, `fixed`.
    pub fn half_open(kind: RangeKind, introduced: Option<Version>, fixed: Version) -> OsvRange {
        OsvRange {
            kind,
            events: vec![OsvEvent::Introduced(introduced), OsvEvent::Fixed(fixed)],
        }
    }

    /// A closed range with no published fix: affected from `introduced`
    /// through `last_affected`, inclusive.
    pub fn closed(kind: RangeKind, introduced: Option<Version>, last: Version) -> OsvRange {
        OsvRange {
            kind,
            events: vec![
                OsvEvent::Introduced(introduced),
                OsvEvent::LastAffected(last),
            ],
        }
    }

    /// Whether any event version is a pre-release. Mirrors
    /// [`VersionReq::allows_prerelease`](sbomdiff_types::VersionReq::allows_prerelease):
    /// pre-release versions only match ranges that mention one.
    pub fn mentions_prerelease(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.version().is_some_and(Version::is_prerelease))
    }

    /// Evaluates the range against a concrete version: the OSV sorted-walk
    /// algorithm. Events are visited in version order; each `introduced`
    /// at or below `v` opens the affected state, each `fixed` at or below
    /// `v` closes it, each `last_affected` strictly below `v` closes it.
    ///
    /// Events tied on the same version are processed as one group, and
    /// the order inside the group depends on the incoming state: an open
    /// interval is closed by its limit event before a co-located
    /// `introduced` opens the next one (adjacent intervals touching at a
    /// shared boundary, e.g. `last_affected 2.0.0-rc.1` followed by
    /// `introduced 2.0.0-rc.1`), while from a closed state `introduced`
    /// applies first so a `fixed` at its own `introduced` version stays
    /// an empty range rather than opening one.
    pub fn affects(&self, v: &Version) -> bool {
        if v.is_prerelease() && !self.mentions_prerelease() {
            return false;
        }
        let mut sorted: Vec<&OsvEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| {
            // The epoch sentinel precedes every concrete version.
            match (a.version(), b.version()) {
                (None, None) => a.rank().cmp(&b.rank()),
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => x.cmp(y).then(a.rank().cmp(&b.rank())),
            }
        });
        let mut affected = false;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len()
                && match (sorted[i].version(), sorted[j].version()) {
                    (Some(x), Some(y)) => x == y,
                    (None, None) => true,
                    _ => false,
                }
            {
                j += 1;
            }
            let group = &sorted[i..j];
            // Closed state: opens first. Open state: closes first.
            let limits_first = affected;
            for pass in 0..2 {
                let do_limits = (pass == 0) == limits_first;
                for event in group {
                    match event {
                        OsvEvent::Introduced(None) if !do_limits => affected = true,
                        OsvEvent::Introduced(Some(x)) if !do_limits => {
                            if v >= x {
                                affected = true;
                            }
                        }
                        OsvEvent::Fixed(x) if do_limits => {
                            if v >= x {
                                affected = false;
                            }
                        }
                        OsvEvent::LastAffected(x) if do_limits => {
                            if v > x {
                                affected = false;
                            }
                        }
                        _ => {}
                    }
                }
            }
            i = j;
        }
        affected
    }

    /// Structural issues with the event list, empty when well-formed:
    /// a missing `introduced`, a limit event at or below its
    /// `introduced`, both `fixed` and `last_affected` in one range, or
    /// duplicate events.
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        let introduced: Vec<&OsvEvent> = self
            .events
            .iter()
            .filter(|e| matches!(e, OsvEvent::Introduced(_)))
            .collect();
        if introduced.is_empty() {
            issues.push("range has no introduced event".to_string());
        }
        let floor = introduced.iter().filter_map(|e| e.version()).min();
        let mut has_fixed = false;
        let mut has_last = false;
        for event in &self.events {
            match event {
                OsvEvent::Fixed(x) => {
                    has_fixed = true;
                    if let Some(floor) = floor {
                        if x <= floor {
                            issues.push(format!(
                                "fixed {} does not follow introduced {}",
                                x.canonical(),
                                floor.canonical()
                            ));
                        }
                    }
                }
                OsvEvent::LastAffected(x) => {
                    has_last = true;
                    if let Some(floor) = floor {
                        if x < floor {
                            issues.push(format!(
                                "last_affected {} precedes introduced {}",
                                x.canonical(),
                                floor.canonical()
                            ));
                        }
                    }
                }
                OsvEvent::Introduced(_) => {}
            }
        }
        if has_fixed && has_last {
            issues.push("range mixes fixed and last_affected events".to_string());
        }
        for (i, a) in self.events.iter().enumerate() {
            if self.events[..i].contains(a) {
                issues.push(format!("duplicate {} event", a.key()));
            }
        }
        issues
    }
}

/// The OSV `affected[].package.ecosystem` name for a workspace ecosystem.
pub fn osv_ecosystem(eco: Ecosystem) -> &'static str {
    match eco {
        Ecosystem::Python => "PyPI",
        Ecosystem::JavaScript => "npm",
        Ecosystem::Ruby => "RubyGems",
        Ecosystem::Php => "Packagist",
        Ecosystem::Java => "Maven",
        Ecosystem::Go => "Go",
        Ecosystem::Rust => "crates.io",
        Ecosystem::Swift => "SwiftURL",
        Ecosystem::DotNet => "NuGet",
    }
}

/// Parses an OSV ecosystem name back to a workspace ecosystem.
pub fn ecosystem_from_osv(name: &str) -> Option<Ecosystem> {
    match name {
        "PyPI" => Some(Ecosystem::Python),
        "npm" => Some(Ecosystem::JavaScript),
        "RubyGems" => Some(Ecosystem::Ruby),
        "Packagist" => Some(Ecosystem::Php),
        "Maven" => Some(Ecosystem::Java),
        "Go" => Some(Ecosystem::Go),
        "crates.io" => Some(Ecosystem::Rust),
        "SwiftURL" => Some(Ecosystem::Swift),
        "NuGet" => Some(Ecosystem::DotNet),
        other => other.parse().ok(),
    }
}

/// Serializes one advisory as an OSV JSON document value.
pub fn advisory_to_osv(advisory: &Advisory) -> Value {
    let mut events_per_range = Vec::new();
    for range in &advisory.ranges {
        let mut events = Vec::new();
        for event in &range.events {
            let mut ev = Value::object();
            ev.set(event.key(), Value::Str(event.value_string()));
            events.push(ev);
        }
        let mut r = Value::object();
        r.set("type", Value::Str(range.kind.label().to_string()));
        r.set("events", Value::Array(events));
        events_per_range.push(r);
    }
    let mut package = Value::object();
    package.set(
        "ecosystem",
        Value::Str(osv_ecosystem(advisory.ecosystem).to_string()),
    );
    package.set("name", Value::Str(advisory.package.clone()));
    package.set(
        "purl",
        Value::Str(Purl::for_package(advisory.ecosystem, &advisory.package, None).to_string()),
    );
    let mut affected = Value::object();
    affected.set("package", package);
    affected.set("ranges", Value::Array(events_per_range));

    let mut doc = Value::object();
    doc.set("id", Value::Str(advisory.id.clone()));
    // Synthetic feed: a fixed timestamp keeps serialization seed-pure.
    doc.set("modified", Value::Str("2023-06-01T00:00:00Z".to_string()));
    doc.set("summary", Value::Str(advisory.summary.clone()));
    doc.set("affected", Value::Array(vec![affected]));
    let mut dbs = Value::object();
    dbs.set(
        "severity",
        Value::Str(advisory.severity.label().to_string()),
    );
    doc.set("database_specific", dbs);
    doc
}

/// Serializes a whole database as an `{"advisories": [...]}` OSV JSON
/// envelope (pretty-printed, trailing newline) for file round-trips.
pub fn db_to_osv_json(db: &AdvisoryDb) -> String {
    let mut envelope = Value::object();
    envelope.set(
        "advisories",
        Value::Array(db.advisories().iter().map(advisory_to_osv).collect()),
    );
    let mut out = json::to_string_pretty(&envelope);
    out.push('\n');
    out
}

/// Ingests an OSV JSON envelope from raw bytes.
///
/// Returns the database plus per-advisory diagnostics for entries that
/// were skipped (damaged events, unknown ecosystems, unparseable
/// versions). Ingestion never panics.
///
/// # Errors
///
/// A single classified [`Diagnostic`] when the envelope itself is
/// unusable: invalid UTF-8 ([`DiagClass::EncodingError`]), truncated
/// JSON ([`DiagClass::TruncatedInput`]), other syntax damage or a
/// missing/ill-typed `advisories` array ([`DiagClass::MalformedFile`]).
pub fn ingest_osv(bytes: &[u8]) -> Result<(AdvisoryDb, Vec<Diagnostic>), Diagnostic> {
    if std::str::from_utf8(bytes).is_err() {
        return Err(Diagnostic::new(
            DiagClass::EncodingError,
            "OSV feed is not valid UTF-8",
        ));
    }
    let doc = json::parse_bytes(bytes).map_err(|e| {
        let truncated = e.message().contains("unexpected end")
            || e.message().contains("unterminated")
            || e.message().contains("expected value");
        Diagnostic::new(
            if truncated {
                DiagClass::TruncatedInput
            } else {
                DiagClass::MalformedFile
            },
            format!("OSV feed line {}: {}", e.line(), e.message()),
        )
        .with_line(e.line() as u32)
    })?;
    let Some(entries) = doc.get("advisories").and_then(Value::as_array) else {
        return Err(Diagnostic::new(
            DiagClass::MalformedFile,
            "OSV envelope has no advisories array",
        ));
    };
    let mut advisories = Vec::new();
    let mut diagnostics = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        match parse_osv_advisory(entry) {
            Ok(advisory) => advisories.push(advisory),
            Err(diag) => {
                diagnostics.push(diag.with_line(i as u32));
            }
        }
    }
    Ok((AdvisoryDb::from_advisories(advisories), diagnostics))
}

fn parse_osv_advisory(entry: &Value) -> Result<Advisory, Diagnostic> {
    let id = entry
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| Diagnostic::new(DiagClass::MissingField, "advisory without id"))?
        .to_string();
    let fail =
        |class: DiagClass, message: String| Diagnostic::new(class, format!("{id}: {message}"));
    let affected = entry
        .get("affected")
        .and_then(Value::as_array)
        .filter(|a| !a.is_empty())
        .ok_or_else(|| fail(DiagClass::MissingField, "no affected entries".into()))?;
    // The synthetic feed writes one affected entry per advisory; tolerate
    // extras by reading the first (the matcher is per-package anyway).
    let first = &affected[0];
    let eco_name = first
        .pointer("package/ecosystem")
        .and_then(Value::as_str)
        .ok_or_else(|| {
            fail(
                DiagClass::MissingField,
                "affected entry without package.ecosystem".into(),
            )
        })?;
    let ecosystem = ecosystem_from_osv(eco_name).ok_or_else(|| {
        fail(
            DiagClass::UnsupportedSyntax,
            format!("unknown ecosystem {eco_name:?}"),
        )
    })?;
    let package = first
        .pointer("package/name")
        .and_then(Value::as_str)
        .ok_or_else(|| {
            fail(
                DiagClass::MissingField,
                "affected entry without package.name".into(),
            )
        })?;
    let raw_ranges = first
        .get("ranges")
        .and_then(Value::as_array)
        .filter(|r| !r.is_empty())
        .ok_or_else(|| {
            fail(
                DiagClass::MissingField,
                "affected entry without ranges".into(),
            )
        })?;
    let mut ranges = Vec::new();
    for raw in raw_ranges {
        let kind_label = raw.get("type").and_then(Value::as_str).unwrap_or("");
        let kind = RangeKind::from_label(kind_label).ok_or_else(|| {
            fail(
                DiagClass::UnsupportedSyntax,
                format!("unknown range type {kind_label:?}"),
            )
        })?;
        let raw_events = raw
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| fail(DiagClass::MissingField, "range without events".into()))?;
        let mut events = Vec::new();
        for ev in raw_events {
            events.push(parse_osv_event(ev).map_err(|m| fail(DiagClass::InvalidVersion, m))?);
        }
        let range = OsvRange { kind, events };
        let issues = range.validate();
        if let Some(issue) = issues.first() {
            return Err(fail(DiagClass::UnsupportedSyntax, issue.clone()));
        }
        ranges.push(range);
    }
    let severity = entry
        .pointer("database_specific/severity")
        .and_then(Value::as_str)
        .and_then(Severity::from_label)
        .unwrap_or(Severity::Medium);
    let fixed_in = ranges
        .iter()
        .flat_map(|r| &r.events)
        .filter_map(|e| match e {
            OsvEvent::Fixed(v) => Some(v.clone()),
            _ => None,
        })
        .max();
    Ok(Advisory {
        id,
        ecosystem,
        package: sbomdiff_types::name::normalize(ecosystem, package),
        summary: entry
            .get("summary")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        ranges,
        fixed_in,
        severity,
    })
}

fn parse_osv_event(ev: &Value) -> Result<OsvEvent, String> {
    let pairs = ev
        .as_object()
        .ok_or_else(|| "event is not an object".to_string())?;
    let [(key, value)] = pairs else {
        return Err(format!(
            "event must carry exactly one key, has {}",
            pairs.len()
        ));
    };
    let text = value
        .as_str()
        .ok_or_else(|| format!("{key} event version is not a string"))?;
    match key.as_str() {
        "introduced" if text == "0" => Ok(OsvEvent::Introduced(None)),
        "introduced" => Ok(OsvEvent::Introduced(Some(parse_version(text)?))),
        "fixed" => Ok(OsvEvent::Fixed(parse_version(text)?)),
        "last_affected" => Ok(OsvEvent::LastAffected(parse_version(text)?)),
        other => Err(format!("unknown event kind {other:?}")),
    }
}

fn parse_version(text: &str) -> Result<Version, String> {
    Version::parse(text).map_err(|e| format!("bad event version {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Version {
        Version::parse(text).unwrap()
    }

    #[test]
    fn half_open_range_matches_like_osv() {
        let r = OsvRange::half_open(RangeKind::Ecosystem, None, v("1.22.0"));
        assert!(r.affects(&v("0.1.0")));
        assert!(r.affects(&v("1.21.9")));
        assert!(!r.affects(&v("1.22.0")), "fixed version is excluded");
        assert!(!r.affects(&v("2.0.0")));
    }

    #[test]
    fn introduced_floor_is_inclusive() {
        let r = OsvRange::half_open(RangeKind::Semver, Some(v("1.2.0")), v("1.4.0"));
        assert!(!r.affects(&v("1.1.9")));
        assert!(r.affects(&v("1.2.0")), "introduced version is included");
        assert!(r.affects(&v("1.3.5")));
        assert!(!r.affects(&v("1.4.0")));
    }

    #[test]
    fn last_affected_is_inclusive() {
        let r = OsvRange::closed(RangeKind::Ecosystem, Some(v("2.0.0")), v("2.3.0"));
        assert!(r.affects(&v("2.3.0")), "last_affected version is included");
        assert!(!r.affects(&v("2.3.1")));
    }

    #[test]
    fn prerelease_gate_mirrors_version_req() {
        let r = OsvRange::half_open(RangeKind::Semver, None, v("1.22.0"));
        assert!(
            !r.affects(&v("1.21.0-rc.1")),
            "pre-releases need an explicit mention"
        );
        let pre = OsvRange::half_open(RangeKind::Semver, None, v("1.22.0-rc.1"));
        assert!(pre.affects(&v("1.21.0-beta.2")));
    }

    #[test]
    fn adjacent_intervals_survive_a_shared_boundary_version() {
        // `last_affected 2.0.0-rc.1` then `introduced 2.0.0-rc.1`: the
        // inclusive close and the open touch at one version; probes
        // inside the second interval must stay affected, and a `fixed`
        // at its own `introduced` must still be an empty window.
        let r = OsvRange {
            kind: RangeKind::Ecosystem,
            events: vec![
                OsvEvent::Introduced(None),
                OsvEvent::LastAffected(v("2.0.0-rc.1")),
                OsvEvent::Introduced(Some(v("2.0.0-rc.1"))),
                OsvEvent::LastAffected(v("3.0.0")),
            ],
        };
        assert!(r.validate().is_empty());
        assert!(r.affects(&v("2.0.0-rc.1")), "shared boundary is affected");
        assert!(r.affects(&v("2.0.0-rc.2")), "second interval survives");
        assert!(r.affects(&v("2.5.0")));
        assert!(r.affects(&v("3.0.0")), "last_affected stays inclusive");
        assert!(!r.affects(&v("3.0.1")));
        let fixed_pair = OsvRange {
            kind: RangeKind::Ecosystem,
            events: vec![
                OsvEvent::Introduced(Some(v("1.0.0"))),
                OsvEvent::Fixed(v("2.0.0")),
                OsvEvent::Introduced(Some(v("2.0.0"))),
                OsvEvent::Fixed(v("3.0.0")),
            ],
        };
        assert!(fixed_pair.affects(&v("2.0.0")), "reintroduced at the fix");
        assert!(fixed_pair.affects(&v("2.5.0")));
        assert!(!fixed_pair.affects(&v("3.0.0")));
    }

    #[test]
    fn multi_range_reintroduction() {
        let r1 = OsvRange::half_open(RangeKind::Ecosystem, None, v("1.1.0"));
        let r2 = OsvRange::half_open(RangeKind::Ecosystem, Some(v("2.0.0")), v("2.2.0"));
        let ranges = [r1, r2];
        let affects = |x: &Version| ranges.iter().any(|r| r.affects(x));
        assert!(affects(&v("1.0.0")));
        assert!(!affects(&v("1.5.0")), "patched window");
        assert!(affects(&v("2.1.0")), "reintroduced");
        assert!(!affects(&v("2.2.0")));
    }

    #[test]
    fn validation_flags_damage() {
        let no_intro = OsvRange {
            kind: RangeKind::Ecosystem,
            events: vec![OsvEvent::Fixed(v("1.0.0"))],
        };
        assert!(!no_intro.validate().is_empty());
        let inverted = OsvRange::half_open(RangeKind::Ecosystem, Some(v("2.0.0")), v("1.0.0"));
        assert!(inverted
            .validate()
            .iter()
            .any(|m| m.contains("does not follow")));
        let dup = OsvRange {
            kind: RangeKind::Ecosystem,
            events: vec![
                OsvEvent::Introduced(None),
                OsvEvent::Introduced(None),
                OsvEvent::Fixed(v("1.0.0")),
            ],
        };
        assert!(dup.validate().iter().any(|m| m.contains("duplicate")));
        assert!(OsvRange::half_open(RangeKind::Ecosystem, None, v("1.0.0"))
            .validate()
            .is_empty());
    }

    #[test]
    fn osv_ecosystem_names_round_trip() {
        for eco in Ecosystem::ALL {
            assert_eq!(ecosystem_from_osv(osv_ecosystem(eco)), Some(eco));
        }
        assert_eq!(ecosystem_from_osv("Linux"), None);
    }
}

//! Downstream vulnerability-impact assessment.
//!
//! The paper's motivation (§I): "Discrepancies or omissions in the SBOM
//! can lead to false assurances of security or compliance". This crate
//! makes that loss measurable: a seeded synthetic advisory database over
//! the same package universe the generators see, a matcher that works the
//! way SCA scanners consume SBOMs (canonical name + concrete version), and
//! an impact report comparing what an SBOM-driven scan finds against what
//! is *actually* installed.
//!
//! The headline effects fall straight out of §V's findings:
//!
//! * Trivy/Syft's silently-dropped unpinned dependencies (§V-D) become
//!   **missed vulnerabilities**;
//! * GitHub DG's verbatim ranges carry no concrete version, so scanners
//!   cannot match them — more **missed vulnerabilities**;
//! * sbom-tool's marker-blind, latest-pinned entries produce **false
//!   alarms** and version-shifted matches.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod advisory;
pub mod enrich;
pub mod impact;
pub mod osv;

pub use advisory::{Advisory, AdvisoryDb, Severity};
pub use enrich::{assess_cached, EnrichCache, EnrichStats};
pub use impact::{assess, assess_in, ImpactReport};
pub use osv::{db_to_osv_json, ingest_osv, OsvEvent, OsvRange, RangeKind};

//! The synthetic OSV-shaped advisory database.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbomdiff_registry::Registries;
use sbomdiff_types::{Ecosystem, Version, VersionReq};

use crate::osv::{OsvEvent, OsvRange, RangeKind};

/// Advisory severity, CVSS-band style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// CVSS 0.1–3.9.
    Low,
    /// CVSS 4.0–6.9.
    Medium,
    /// CVSS 7.0–8.9.
    High,
    /// CVSS 9.0–10.0.
    Critical,
}

impl Severity {
    /// Every severity, lowest first (metrics and CSV columns iterate
    /// this; keep the order stable).
    pub const ALL: [Severity; 4] = [
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];

    /// Label used in reports and OSV `database_specific.severity`.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Low => "LOW",
            Severity::Medium => "MEDIUM",
            Severity::High => "HIGH",
            Severity::Critical => "CRITICAL",
        }
    }

    /// Lowercase label for Prometheus `{severity=...}` values.
    pub fn metric_label(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }

    /// Parses a report/OSV label (case-insensitive).
    pub fn from_label(label: &str) -> Option<Severity> {
        match label.to_ascii_uppercase().as_str() {
            "LOW" => Some(Severity::Low),
            "MEDIUM" | "MODERATE" => Some(Severity::Medium),
            "HIGH" => Some(Severity::High),
            "CRITICAL" => Some(Severity::Critical),
            _ => None,
        }
    }

    /// Position in [`Severity::ALL`] (counter-array index).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One synthetic advisory: a package and the OSV ranges it is affected in.
#[derive(Debug, Clone)]
pub struct Advisory {
    /// Synthetic identifier (`SYN-2023-0042`).
    pub id: String,
    /// Ecosystem of the affected package.
    pub ecosystem: Ecosystem,
    /// Canonical (registry-normalized) package name.
    pub package: String,
    /// One-line human summary.
    pub summary: String,
    /// OSV affected ranges; a version is affected when any range matches.
    pub ranges: Vec<OsvRange>,
    /// First fixed version, when one exists.
    pub fixed_in: Option<Version>,
    /// Severity band.
    pub severity: Severity,
}

impl Advisory {
    /// Whether a concrete installed version is affected.
    pub fn affects(&self, version: &Version) -> bool {
        self.ranges.iter().any(|r| r.affects(version))
    }

    /// The legacy `VersionReq` equivalent (`<fixed`), for advisories with
    /// the single half-open-from-zero shape the pre-OSV generator emitted.
    /// The OSV event walk and this requirement must agree on every
    /// version (asserted by the `osv_props` property suite).
    pub fn legacy_req(&self) -> Option<VersionReq> {
        let [range] = self.ranges.as_slice() else {
            return None;
        };
        let [OsvEvent::Introduced(None), OsvEvent::Fixed(fixed)] = range.events.as_slice() else {
            return None;
        };
        VersionReq::parse(
            &format!("<{}", fixed.to_unprefixed()),
            sbomdiff_types::ConstraintFlavor::Pep440,
        )
        .ok()
    }
}

/// A seeded advisory database over the synthetic registries, indexed by
/// `(ecosystem, canonical package)` for per-package lookup.
///
/// # Examples
///
/// ```
/// use sbomdiff_registry::Registries;
/// use sbomdiff_vuln::AdvisoryDb;
///
/// let registries = Registries::generate(9);
/// let db = AdvisoryDb::generate(&registries, 1, 0.2);
/// assert!(!db.is_empty());
/// for advisory in db.advisories().iter().take(3) {
///     assert!(advisory.id.starts_with("SYN-"));
///     assert!(!advisory.ranges.is_empty());
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdvisoryDb {
    advisories: Vec<Advisory>,
    index: BTreeMap<(Ecosystem, String), Vec<u32>>,
    by_id: BTreeMap<String, u32>,
    fingerprint: u64,
}

impl AdvisoryDb {
    /// Builds a database from explicit advisories (tests, OSV ingestion,
    /// custom feeds).
    pub fn from_advisories(advisories: Vec<Advisory>) -> Self {
        let mut index: BTreeMap<(Ecosystem, String), Vec<u32>> = BTreeMap::new();
        let mut by_id = BTreeMap::new();
        let mut fp = 0xcbf29ce484222325u64; // FNV-1a
        for (i, a) in advisories.iter().enumerate() {
            index
                .entry((a.ecosystem, a.package.clone()))
                .or_default()
                .push(i as u32);
            by_id.insert(a.id.clone(), i as u32);
            for byte in a.id.bytes().chain(a.package.bytes()) {
                fp = (fp ^ byte as u64).wrapping_mul(0x100000001b3);
            }
        }
        AdvisoryDb {
            advisories,
            index,
            by_id,
            fingerprint: fp,
        }
    }

    /// Generates advisories for roughly `vulnerable_share` of each
    /// ecosystem's packages, with the OSV shape mix real feeds show:
    /// mostly affected-from-the-beginning half-open ranges, some with a
    /// later `introduced` floor, some unfixed (`last_affected`) and a few
    /// patched-then-reintroduced two-range advisories.
    pub fn generate(registries: &Registries, seed: u64, vulnerable_share: f64) -> Self {
        let mut advisories = Vec::new();
        let mut counter = 0usize;
        for (eco, universe) in registries.iter() {
            let mut rng = StdRng::seed_from_u64(seed ^ ((eco as u64) << 40) ^ 0xadd1);
            let kind = RangeKind::for_ecosystem(eco);
            let entries: Vec<(String, Vec<Version>)> = universe
                .entries()
                .map(|(name, versions)| {
                    (
                        name.to_string(),
                        versions.iter().map(|v| v.version.clone()).collect(),
                    )
                })
                .collect();
            for (name, versions) in entries {
                if !rng.gen_bool(vulnerable_share.clamp(0.0, 1.0)) {
                    continue;
                }
                if versions.len() < 2 {
                    continue;
                }
                // The fix lands at some mid/late published version.
                let fix_idx = rng.gen_range(1..versions.len());
                let fixed = versions[fix_idx].clone();
                let shape = rng.gen_range(0..20u32);
                let (ranges, fixed_in) = match shape {
                    // 15%: the flaw was introduced at a later version.
                    14..=16 if fix_idx >= 2 => {
                        let intro = versions[rng.gen_range(1..fix_idx)].clone();
                        (
                            vec![OsvRange::half_open(kind, Some(intro), fixed.clone())],
                            Some(fixed),
                        )
                    }
                    // 10%: no published fix — a closed last_affected range.
                    17..=18 => {
                        let last = versions[fix_idx - 1].clone();
                        (vec![OsvRange::closed(kind, None, last)], None)
                    }
                    // 5%: patched early, reintroduced before the real fix.
                    19 if fix_idx >= 3 => {
                        let patched = versions[1].clone();
                        let reintroduced = versions[fix_idx - 1].clone();
                        (
                            vec![
                                OsvRange::half_open(kind, None, patched),
                                OsvRange::half_open(kind, Some(reintroduced), fixed.clone()),
                            ],
                            Some(fixed),
                        )
                    }
                    // 70% (plus the fallbacks above on short histories):
                    // affected from the beginning until the fix.
                    _ => (
                        vec![OsvRange::half_open(kind, None, fixed.clone())],
                        Some(fixed),
                    ),
                };
                let severity = match rng.gen_range(0..10) {
                    0 => Severity::Critical,
                    1..=3 => Severity::High,
                    4..=7 => Severity::Medium,
                    _ => Severity::Low,
                };
                counter += 1;
                let package = sbomdiff_types::name::normalize(eco, &name);
                advisories.push(Advisory {
                    id: format!("SYN-2023-{counter:04}"),
                    ecosystem: eco,
                    summary: format!("synthetic vulnerability in {package} ({})", eco.label()),
                    package,
                    ranges,
                    fixed_in,
                    severity,
                });
            }
        }
        Self::from_advisories(advisories)
    }

    /// Number of advisories.
    pub fn len(&self) -> usize {
        self.advisories.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.advisories.is_empty()
    }

    /// All advisories.
    pub fn advisories(&self) -> &[Advisory] {
        &self.advisories
    }

    /// Content fingerprint (stable across clones and round-trips through
    /// OSV JSON); enrichment caches shared between databases key on it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The advisory with the given id.
    pub fn by_id(&self, id: &str) -> Option<&Advisory> {
        self.by_id
            .get(id)
            .and_then(|&i| self.advisories.get(i as usize))
    }

    /// Every advisory for a `(ecosystem, name)` pair, version-independent;
    /// the name is normalized before the index lookup.
    pub fn for_package(&self, eco: Ecosystem, name: &str) -> Vec<&Advisory> {
        let canonical = sbomdiff_types::name::normalize(eco, name);
        self.index
            .get(&(eco, canonical))
            .map(|ids| {
                ids.iter()
                    .filter_map(|&i| self.advisories.get(i as usize))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Advisories affecting a concrete `(ecosystem, name, version)` triple;
    /// the name is normalized before lookup (how a *correct* scanner
    /// matches — spelling variations in SBOMs therefore cause misses).
    pub fn matching(&self, eco: Ecosystem, name: &str, version: &Version) -> Vec<&Advisory> {
        let mut out = self.for_package(eco, name);
        out.retain(|a| a.affects(version));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_registry::Registries;

    #[test]
    fn generates_plausible_database() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 0.2);
        assert!(db.len() > 200, "db size {}", db.len());
        let mut fixed_shapes = 0;
        let mut unfixed_shapes = 0;
        for a in db.advisories() {
            assert!(a.id.starts_with("SYN-2023-"));
            assert!(!a.ranges.is_empty());
            for r in &a.ranges {
                assert!(r.validate().is_empty(), "{}: {:?}", a.id, r.validate());
            }
            match &a.fixed_in {
                Some(fixed) => {
                    fixed_shapes += 1;
                    assert!(!a.affects(fixed), "fix version must not be affected");
                }
                None => unfixed_shapes += 1,
            }
        }
        assert!(fixed_shapes > unfixed_shapes, "fixed shapes dominate");
        assert!(unfixed_shapes > 0, "some advisories have no fix");
    }

    #[test]
    fn generation_is_deterministic() {
        let regs = Registries::generate(55);
        let a = AdvisoryDb::generate(&regs, 9, 0.2);
        let b = AdvisoryDb::generate(&regs, 9, 0.2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.advisories()[0].id, b.advisories()[0].id);
        assert_eq!(a.advisories()[0].package, b.advisories()[0].package);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            AdvisoryDb::generate(&regs, 10, 0.2).fingerprint()
        );
    }

    #[test]
    fn matching_normalizes_names() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 1.0);
        // numpy is curated with versions up to 1.25.2; an advisory exists
        // at share 1.0.
        let numpy = db
            .advisories()
            .iter()
            .find(|a| a.package == "numpy")
            .expect("numpy advisory at 100% share");
        let old = Version::parse("1.19.2").unwrap();
        if numpy.affects(&old) {
            assert!(!db.matching(Ecosystem::Python, "NumPy", &old).is_empty());
        }
        assert!(db
            .matching(Ecosystem::Python, "definitely-not-here", &old)
            .is_empty());
    }

    #[test]
    fn index_matches_linear_scan() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 0.3);
        for a in db.advisories().iter().take(100) {
            let via_index = db.for_package(a.ecosystem, &a.package);
            assert!(via_index.iter().any(|hit| hit.id == a.id));
            let linear = db
                .advisories()
                .iter()
                .filter(|x| x.ecosystem == a.ecosystem && x.package == a.package)
                .count();
            assert_eq!(via_index.len(), linear);
        }
        assert_eq!(
            db.by_id(&db.advisories()[0].id).map(|a| a.id.as_str()),
            Some(db.advisories()[0].id.as_str())
        );
    }

    #[test]
    fn legacy_req_agrees_on_half_open_shape() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 0.2);
        let mut checked = 0;
        for a in db.advisories() {
            let Some(req) = a.legacy_req() else { continue };
            for v in ["0.1.0", "1.0.0", "1.19.2", "2.5.0", "9.9.9"] {
                let v = Version::parse(v).unwrap();
                assert_eq!(a.affects(&v), req.matches(&v), "{} at {}", a.id, v);
            }
            checked += 1;
        }
        assert!(checked > 50, "enough half-open advisories: {checked}");
    }
}

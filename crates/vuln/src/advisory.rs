//! The synthetic advisory database.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbomdiff_registry::{PackageUniverse, Registries};
use sbomdiff_types::{Ecosystem, Version, VersionReq};

/// Advisory severity, CVSS-band style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// CVSS 0.1–3.9.
    Low,
    /// CVSS 4.0–6.9.
    Medium,
    /// CVSS 7.0–8.9.
    High,
    /// CVSS 9.0–10.0.
    Critical,
}

impl Severity {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Low => "LOW",
            Severity::Medium => "MEDIUM",
            Severity::High => "HIGH",
            Severity::Critical => "CRITICAL",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One synthetic advisory: a package and the version range it affects.
#[derive(Debug, Clone)]
pub struct Advisory {
    /// Synthetic identifier (`SYN-2023-0042`).
    pub id: String,
    /// Ecosystem of the affected package.
    pub ecosystem: Ecosystem,
    /// Canonical (registry-normalized) package name.
    pub package: String,
    /// Affected version range.
    pub affected: VersionReq,
    /// First fixed version, when one exists.
    pub fixed_in: Option<Version>,
    /// Severity band.
    pub severity: Severity,
}

impl Advisory {
    /// Whether a concrete installed version is affected.
    pub fn affects(&self, version: &Version) -> bool {
        self.affected.matches(version)
    }
}

/// A seeded advisory database over the synthetic registries.
///
/// # Examples
///
/// ```
/// use sbomdiff_registry::Registries;
/// use sbomdiff_vuln::AdvisoryDb;
///
/// let registries = Registries::generate(9);
/// let db = AdvisoryDb::generate(&registries, 1, 0.2);
/// assert!(!db.is_empty());
/// for advisory in db.advisories().iter().take(3) {
///     assert!(advisory.id.starts_with("SYN-"));
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdvisoryDb {
    advisories: Vec<Advisory>,
}

impl AdvisoryDb {
    /// Builds a database from explicit advisories (tests, custom feeds).
    pub fn from_advisories(advisories: Vec<Advisory>) -> Self {
        AdvisoryDb { advisories }
    }

    /// Generates advisories for roughly `vulnerable_share` of each
    /// ecosystem's packages. Each advisory affects all versions strictly
    /// below a randomly chosen published "fix" version (the dominant
    /// real-world shape).
    pub fn generate(registries: &Registries, seed: u64, vulnerable_share: f64) -> Self {
        let mut advisories = Vec::new();
        let mut counter = 0usize;
        for (eco, universe) in registries.iter() {
            let mut rng = StdRng::seed_from_u64(seed ^ ((eco as u64) << 40) ^ 0xadd1);
            advisories.extend(Self::for_universe(
                eco,
                universe,
                &mut rng,
                vulnerable_share,
                &mut counter,
            ));
        }
        AdvisoryDb { advisories }
    }

    fn for_universe(
        eco: Ecosystem,
        universe: &PackageUniverse,
        rng: &mut StdRng,
        share: f64,
        counter: &mut usize,
    ) -> Vec<Advisory> {
        let mut out = Vec::new();
        let names: Vec<String> = universe.package_names().map(str::to_string).collect();
        for name in names {
            if !rng.gen_bool(share.clamp(0.0, 1.0)) {
                continue;
            }
            let versions = universe.versions(&name);
            if versions.len() < 2 {
                continue;
            }
            // The fix lands at some mid/late published version; everything
            // below is affected.
            let fix_idx = rng.gen_range(1..versions.len());
            let fixed = versions[fix_idx].clone();
            let Ok(affected) = VersionReq::parse(
                &format!("<{}", fixed.to_unprefixed()),
                sbomdiff_types::ConstraintFlavor::Pep440,
            ) else {
                continue;
            };
            *counter += 1;
            let severity = match rng.gen_range(0..10) {
                0 => Severity::Critical,
                1..=3 => Severity::High,
                4..=7 => Severity::Medium,
                _ => Severity::Low,
            };
            out.push(Advisory {
                id: format!("SYN-2023-{:04}", *counter),
                ecosystem: eco,
                package: sbomdiff_types::name::normalize(eco, &name),
                affected,
                fixed_in: Some(fixed),
                severity,
            });
        }
        out
    }

    /// Number of advisories.
    pub fn len(&self) -> usize {
        self.advisories.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.advisories.is_empty()
    }

    /// All advisories.
    pub fn advisories(&self) -> &[Advisory] {
        &self.advisories
    }

    /// Advisories affecting a concrete `(ecosystem, name, version)` triple;
    /// the name is normalized before lookup (how a *correct* scanner
    /// matches — spelling variations in SBOMs therefore cause misses).
    pub fn matching(&self, eco: Ecosystem, name: &str, version: &Version) -> Vec<&Advisory> {
        let canonical = sbomdiff_types::name::normalize(eco, name);
        self.advisories
            .iter()
            .filter(|a| a.ecosystem == eco && a.package == canonical && a.affects(version))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_registry::Registries;

    #[test]
    fn generates_plausible_database() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 0.2);
        assert!(db.len() > 200, "db size {}", db.len());
        for a in db.advisories().iter().take(50) {
            assert!(a.id.starts_with("SYN-2023-"));
            let fixed = a.fixed_in.as_ref().unwrap();
            assert!(!a.affects(fixed), "fix version must not be affected");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let regs = Registries::generate(55);
        let a = AdvisoryDb::generate(&regs, 9, 0.2);
        let b = AdvisoryDb::generate(&regs, 9, 0.2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.advisories()[0].id, b.advisories()[0].id);
        assert_eq!(a.advisories()[0].package, b.advisories()[0].package);
    }

    #[test]
    fn matching_normalizes_names() {
        let regs = Registries::generate(55);
        let db = AdvisoryDb::generate(&regs, 9, 1.0);
        // numpy is curated with versions up to 1.25.2; an advisory exists
        // at share 1.0.
        let numpy = db
            .advisories()
            .iter()
            .find(|a| a.package == "numpy")
            .expect("numpy advisory at 100% share");
        let old = Version::parse("1.19.2").unwrap();
        if numpy.affects(&old) {
            assert!(!db.matching(Ecosystem::Python, "NumPy", &old).is_empty());
        }
        assert!(db
            .matching(Ecosystem::Python, "definitely-not-here", &old)
            .is_empty());
    }
}

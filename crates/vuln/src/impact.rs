//! SBOM-driven vulnerability scanning vs ground truth.

use std::collections::BTreeSet;

use sbomdiff_types::{ResolvedPackage, Sbom, Version};

use crate::advisory::AdvisoryDb;

/// The outcome of scanning with an SBOM instead of the true install set.
#[derive(Debug, Clone, Default)]
pub struct ImpactReport {
    /// Advisory ids that affect the true install set (the scan target).
    pub actual: BTreeSet<String>,
    /// Advisory ids the SBOM-driven scan surfaced that are real.
    pub detected: BTreeSet<String>,
    /// Real advisories the SBOM-driven scan missed — the paper's "false
    /// assurances of security" (§I).
    pub missed: BTreeSet<String>,
    /// Advisories flagged from SBOM entries that are not actually
    /// installed (wrong version, dev-only file, marker-excluded, ...).
    pub false_alarms: BTreeSet<String>,
}

impl ImpactReport {
    /// Share of real vulnerabilities the SBOM-driven scan missed.
    pub fn miss_rate(&self) -> f64 {
        if self.actual.is_empty() {
            return 0.0;
        }
        self.missed.len() as f64 / self.actual.len() as f64
    }

    /// Share of raised findings that are false alarms.
    pub fn false_alarm_rate(&self) -> f64 {
        let raised = self.detected.len() + self.false_alarms.len();
        if raised == 0 {
            return 0.0;
        }
        self.false_alarms.len() as f64 / raised as f64
    }

    /// Renders the assessment as VEX statements: detected and missed
    /// advisories are `affected`; false alarms are `not_affected` (the SBOM
    /// names a component/version that is not actually installed).
    ///
    /// Statements are deduplicated and emitted in id order. After a
    /// [`merge`](Self::merge) the sets can overlap (one repository detects
    /// what another misses, or raises as a false alarm what a third really
    /// has); each id yields exactly one statement, and a real
    /// vulnerability anywhere (`affected`) outranks a false alarm
    /// elsewhere.
    pub fn to_vex_statements(&self) -> Vec<(String, &'static str)> {
        let affected: BTreeSet<&String> = self.detected.union(&self.missed).collect();
        let mut out: Vec<(String, &'static str)> = affected
            .iter()
            .map(|id| ((*id).clone(), "affected"))
            .collect();
        out.extend(
            self.false_alarms
                .iter()
                .filter(|id| !affected.contains(id))
                .map(|id| (id.clone(), "not_affected")),
        );
        out.sort();
        out
    }

    /// Merges another report's counts (for corpus-level aggregation).
    pub fn merge(&mut self, other: &ImpactReport) {
        self.actual.extend(other.actual.iter().cloned());
        self.detected.extend(other.detected.iter().cloned());
        self.missed.extend(other.missed.iter().cloned());
        self.false_alarms.extend(other.false_alarms.iter().cloned());
    }
}

/// Assesses an SBOM against the advisory database and the true install set.
///
/// The scan matches the way real SCA consumers do: an SBOM entry
/// contributes findings only when it carries a parseable concrete version
/// (range text and missing versions cannot match — which is exactly how
/// §V-D's dropped/verbatim versions turn into missed vulnerabilities).
pub fn assess(db: &AdvisoryDb, sbom: &Sbom, truth: &[ResolvedPackage]) -> ImpactReport {
    let eco = sbom_ecosystem(sbom).unwrap_or(sbomdiff_types::Ecosystem::Python);
    assess_in(db, eco, sbom, truth)
}

/// [`assess`] with the ground-truth ecosystem stated explicitly instead of
/// inferred from the SBOM's first component — required when the SBOM may
/// be empty (a tool that dropped everything still has to be scored against
/// the right language's install set).
pub fn assess_in(
    db: &AdvisoryDb,
    eco: sbomdiff_types::Ecosystem,
    sbom: &Sbom,
    truth: &[ResolvedPackage],
) -> ImpactReport {
    let mut report = ImpactReport::default();
    // What is really vulnerable: advisories over the installed set.
    for pkg in truth {
        for adv in db.matching(eco, &pkg.name, &pkg.version) {
            report.actual.insert(adv.id.clone());
        }
    }
    // What an SBOM-driven scan raises.
    let mut raised: BTreeSet<String> = BTreeSet::new();
    for c in sbom.components() {
        let Some(version) = c.version.as_deref().and_then(|v| Version::parse(v).ok()) else {
            continue; // no concrete version → unmatchable entry
        };
        for adv in db.matching(c.ecosystem, &c.name, &version) {
            raised.insert(adv.id.clone());
        }
    }
    for id in &raised {
        if report.actual.contains(id) {
            report.detected.insert(id.clone());
        } else {
            report.false_alarms.insert(id.clone());
        }
    }
    for id in &report.actual {
        if !raised.contains(id) {
            report.missed.insert(id.clone());
        }
    }
    report
}

fn sbom_ecosystem(sbom: &Sbom) -> Option<sbomdiff_types::Ecosystem> {
    sbom.components().first().map(|c| c.ecosystem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisory::{Advisory, Severity};
    use crate::osv::{OsvRange, RangeKind};
    use sbomdiff_types::{Component, Ecosystem, ResolvedPackage};

    fn advisory(id: &str, package: &str, fixed: &str) -> Advisory {
        let fixed = Version::parse(fixed).unwrap();
        Advisory {
            id: id.into(),
            ecosystem: Ecosystem::Python,
            package: package.into(),
            summary: format!("test advisory for {package}"),
            ranges: vec![OsvRange::half_open(
                RangeKind::Ecosystem,
                None,
                fixed.clone(),
            )],
            fixed_in: Some(fixed),
            severity: Severity::High,
        }
    }

    fn db() -> AdvisoryDb {
        AdvisoryDb::from_advisories(vec![advisory("SYN-2023-0001", "numpy", "1.22.0")])
    }

    #[test]
    fn detects_real_vulnerability() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert_eq!(report.detected.len(), 1);
        assert!(report.missed.is_empty());
        assert_eq!(report.miss_rate(), 0.0);
    }

    #[test]
    fn omission_becomes_missed_vulnerability() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let empty = Sbom::new("t", "1"); // the tool dropped the dependency
        let report = assess(&db, &empty, &truth);
        assert_eq!(report.missed.len(), 1);
        assert_eq!(report.miss_rate(), 1.0);
    }

    #[test]
    fn range_text_cannot_match() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        // GitHub DG-style verbatim range: unmatchable by scanners.
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some(">=1.19".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert_eq!(report.missed.len(), 1);
        assert!(report.detected.is_empty());
    }

    #[test]
    fn wrong_version_is_false_alarm_plus_miss() {
        let db = db();
        // Installed version is safe (>= fix), but the SBOM claims an old,
        // vulnerable one.
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.25.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert!(report.actual.is_empty());
        assert_eq!(report.false_alarms.len(), 1);
        assert!(report.false_alarm_rate() > 0.99);
    }

    #[test]
    fn assess_in_scores_empty_sboms_in_the_right_ecosystem() {
        let mut go_adv = advisory("SYN-2023-0009", "github.com/stretchr/testify", "1.8.0");
        go_adv.ecosystem = Ecosystem::Go;
        let db = AdvisoryDb::from_advisories(vec![go_adv]);
        let truth = vec![ResolvedPackage::direct(
            "github.com/stretchr/testify",
            Version::parse("1.7.0").unwrap(),
        )];
        let empty = Sbom::new("t", "1");
        // Inference falls back to Python and sees nothing...
        assert!(assess(&db, &empty, &truth).actual.is_empty());
        // ...but the explicit ecosystem scores the miss.
        let report = assess_in(&db, Ecosystem::Go, &empty, &truth);
        assert_eq!(report.missed.len(), 1);
    }

    #[test]
    fn vex_statements_deduplicate_merged_reports() {
        // Repo A detects 0001; repo B misses it and falsely raises 0002;
        // repo C really has 0002. Merged, the id sets overlap.
        let mut merged = ImpactReport::default();
        merged.detected.insert("SYN-2023-0001".into());
        let mut b = ImpactReport::default();
        b.missed.insert("SYN-2023-0001".into());
        b.false_alarms.insert("SYN-2023-0002".into());
        let mut c = ImpactReport::default();
        c.detected.insert("SYN-2023-0002".into());
        merged.merge(&b);
        merged.merge(&c);
        let statements = merged.to_vex_statements();
        assert_eq!(
            statements,
            vec![
                ("SYN-2023-0001".to_string(), "affected"),
                ("SYN-2023-0002".to_string(), "affected"),
            ],
            "one statement per id; affected outranks not_affected"
        );
    }

    #[test]
    fn vex_statements_partition_single_assessments() {
        let mut report = ImpactReport::default();
        report.detected.insert("SYN-2023-0001".into());
        report.missed.insert("SYN-2023-0002".into());
        report.false_alarms.insert("SYN-2023-0003".into());
        assert_eq!(
            report.to_vex_statements(),
            vec![
                ("SYN-2023-0001".to_string(), "affected"),
                ("SYN-2023-0002".to_string(), "affected"),
                ("SYN-2023-0003".to_string(), "not_affected"),
            ]
        );
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = ImpactReport::default();
        a.actual.insert("SYN-2023-0001".into());
        a.detected.insert("SYN-2023-0001".into());
        let mut b = ImpactReport::default();
        b.actual.insert("SYN-2023-0002".into());
        b.missed.insert("SYN-2023-0002".into());
        b.false_alarms.insert("SYN-2023-0003".into());

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_again = ab.clone();
        ab_again.merge(&b);
        ab_again.merge(&ab);
        assert_eq!(ab.actual, ab_again.actual, "merge is idempotent");
        assert_eq!(ab.detected, ab_again.detected);
        assert_eq!(ab.missed, ab_again.missed);
        assert_eq!(ab.false_alarms, ab_again.false_alarms);

        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.actual, ba.actual, "merge is commutative");
        assert_eq!(ab.to_vex_statements(), ba.to_vex_statements());
    }
}

//! SBOM-driven vulnerability scanning vs ground truth.

use std::collections::BTreeSet;

use sbomdiff_types::{ResolvedPackage, Sbom, Version};

use crate::advisory::AdvisoryDb;

/// The outcome of scanning with an SBOM instead of the true install set.
#[derive(Debug, Clone, Default)]
pub struct ImpactReport {
    /// Advisory ids that affect the true install set (the scan target).
    pub actual: BTreeSet<String>,
    /// Advisory ids the SBOM-driven scan surfaced that are real.
    pub detected: BTreeSet<String>,
    /// Real advisories the SBOM-driven scan missed — the paper's "false
    /// assurances of security" (§I).
    pub missed: BTreeSet<String>,
    /// Advisories flagged from SBOM entries that are not actually
    /// installed (wrong version, dev-only file, marker-excluded, ...).
    pub false_alarms: BTreeSet<String>,
}

impl ImpactReport {
    /// Share of real vulnerabilities the SBOM-driven scan missed.
    pub fn miss_rate(&self) -> f64 {
        if self.actual.is_empty() {
            return 0.0;
        }
        self.missed.len() as f64 / self.actual.len() as f64
    }

    /// Share of raised findings that are false alarms.
    pub fn false_alarm_rate(&self) -> f64 {
        let raised = self.detected.len() + self.false_alarms.len();
        if raised == 0 {
            return 0.0;
        }
        self.false_alarms.len() as f64 / raised as f64
    }

    /// Renders the assessment as VEX statements: detected and missed
    /// advisories are `affected`; false alarms are `not_affected` (the SBOM
    /// names a component/version that is not actually installed).
    pub fn to_vex_statements(&self) -> Vec<(String, &'static str)> {
        let mut out = Vec::new();
        for id in self.detected.iter().chain(self.missed.iter()) {
            out.push((id.clone(), "affected"));
        }
        for id in &self.false_alarms {
            out.push((id.clone(), "not_affected"));
        }
        out
    }

    /// Merges another report's counts (for corpus-level aggregation).
    pub fn merge(&mut self, other: &ImpactReport) {
        self.actual.extend(other.actual.iter().cloned());
        self.detected.extend(other.detected.iter().cloned());
        self.missed.extend(other.missed.iter().cloned());
        self.false_alarms.extend(other.false_alarms.iter().cloned());
    }
}

/// Assesses an SBOM against the advisory database and the true install set.
///
/// The scan matches the way real SCA consumers do: an SBOM entry
/// contributes findings only when it carries a parseable concrete version
/// (range text and missing versions cannot match — which is exactly how
/// §V-D's dropped/verbatim versions turn into missed vulnerabilities).
pub fn assess(db: &AdvisoryDb, sbom: &Sbom, truth: &[ResolvedPackage]) -> ImpactReport {
    let mut report = ImpactReport::default();
    // What is really vulnerable: advisories over the installed set.
    for pkg in truth {
        for adv in db.matching(
            sbom_ecosystem(sbom).unwrap_or(sbomdiff_types::Ecosystem::Python),
            &pkg.name,
            &pkg.version,
        ) {
            report.actual.insert(adv.id.clone());
        }
    }
    // What an SBOM-driven scan raises.
    let mut raised: BTreeSet<String> = BTreeSet::new();
    for c in sbom.components() {
        let Some(version) = c.version.as_deref().and_then(|v| Version::parse(v).ok()) else {
            continue; // no concrete version → unmatchable entry
        };
        for adv in db.matching(c.ecosystem, &c.name, &version) {
            raised.insert(adv.id.clone());
        }
    }
    for id in &raised {
        if report.actual.contains(id) {
            report.detected.insert(id.clone());
        } else {
            report.false_alarms.insert(id.clone());
        }
    }
    for id in &report.actual {
        if !raised.contains(id) {
            report.missed.insert(id.clone());
        }
    }
    report
}

fn sbom_ecosystem(sbom: &Sbom) -> Option<sbomdiff_types::Ecosystem> {
    sbom.components().first().map(|c| c.ecosystem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisory::{Advisory, Severity};
    use sbomdiff_types::{Component, ConstraintFlavor, Ecosystem, ResolvedPackage, VersionReq};

    fn db() -> AdvisoryDb {
        let advisory = Advisory {
            id: "SYN-2023-0001".into(),
            ecosystem: Ecosystem::Python,
            package: "numpy".into(),
            affected: VersionReq::parse("<1.22.0", ConstraintFlavor::Pep440).unwrap(),
            fixed_in: Some(Version::parse("1.22.0").unwrap()),
            severity: Severity::High,
        };
        AdvisoryDb::from_advisories(vec![advisory])
    }

    #[test]
    fn detects_real_vulnerability() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert_eq!(report.detected.len(), 1);
        assert!(report.missed.is_empty());
        assert_eq!(report.miss_rate(), 0.0);
    }

    #[test]
    fn omission_becomes_missed_vulnerability() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let empty = Sbom::new("t", "1"); // the tool dropped the dependency
        let report = assess(&db, &empty, &truth);
        assert_eq!(report.missed.len(), 1);
        assert_eq!(report.miss_rate(), 1.0);
    }

    #[test]
    fn range_text_cannot_match() {
        let db = db();
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.19.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        // GitHub DG-style verbatim range: unmatchable by scanners.
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some(">=1.19".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert_eq!(report.missed.len(), 1);
        assert!(report.detected.is_empty());
    }

    #[test]
    fn wrong_version_is_false_alarm_plus_miss() {
        let db = db();
        // Installed version is safe (>= fix), but the SBOM claims an old,
        // vulnerable one.
        let truth = vec![ResolvedPackage::direct(
            "numpy",
            Version::parse("1.25.2").unwrap(),
        )];
        let mut sbom = Sbom::new("t", "1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let report = assess(&db, &sbom, &truth);
        assert!(report.actual.is_empty());
        assert_eq!(report.false_alarms.len(), 1);
        assert!(report.false_alarm_rate() > 0.99);
    }
}

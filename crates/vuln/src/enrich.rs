//! TTL'd sharded enrichment cache for per-package advisory lookups.
//!
//! `/v1/impact` batches, the divergence experiment and repeated profile
//! scans all ask the same `(ecosystem, package)` advisory question many
//! times; this cache shares that work. Entries expire on a TTL (stale
//! advisory data must not outlive a feed refresh) and the cache keys on
//! the database [fingerprint](crate::AdvisoryDb::fingerprint) so lookups
//! against different seeded universes never alias.
//!
//! Two fault sites instrument the path (DESIGN.md §15 contract):
//! [`VULN_LOOKUP`](sbomdiff_faultline::sites::VULN_LOOKUP) fires on every
//! lookup, [`VULN_ENRICH`](sbomdiff_faultline::sites::VULN_ENRICH) on a
//! cache fill. A surfaced fault returns a marker-carrying error and is
//! **never cached** — degraded answers must not poison later requests.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sbomdiff_faultline as fault;
use sbomdiff_types::{Ecosystem, ResolvedPackage, Sbom, Version};

use crate::advisory::{Advisory, AdvisoryDb};
use crate::impact::ImpactReport;

/// Counter snapshot for the `/metrics` exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnrichStats {
    /// Lookups answered from a live cache entry.
    pub hits: u64,
    /// Lookups that filled a missing entry.
    pub misses: u64,
    /// Lookups that found an entry past its TTL (refilled; also counted
    /// as a miss).
    pub expired: u64,
}

type Key = (u64, Ecosystem, String);

struct Entry {
    advisories: Arc<Vec<Advisory>>,
    expires: Instant,
}

/// The sharded TTL cache. Keys are `(db fingerprint, ecosystem,
/// canonical package)`; values are the package's full advisory slice
/// (version-independent — the caller evaluates ranges per version, so
/// one fill serves every version and every profile).
pub struct EnrichCache {
    shards: Vec<Mutex<HashMap<Key, Entry>>>,
    ttl: Duration,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
}

impl EnrichCache {
    /// Default shape: 8 shards, 5-minute TTL (matches a feed-refresh
    /// cadence; entries are tiny so expiry is about staleness, not
    /// memory).
    pub fn new() -> Self {
        Self::with(8, Duration::from_secs(300))
    }

    /// Custom shard count and TTL.
    pub fn with(shards: usize, ttl: Duration) -> Self {
        EnrichCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EnrichStats {
        EnrichStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The advisory slice for `(ecosystem, name)`, from cache or filled
    /// from `db`.
    ///
    /// # Errors
    ///
    /// A marker-carrying message when an injected fault surfaces at the
    /// lookup or fill site; the caller must degrade (and nothing is
    /// cached).
    pub fn advisories_for(
        &self,
        db: &AdvisoryDb,
        eco: Ecosystem,
        name: &str,
    ) -> Result<Arc<Vec<Advisory>>, String> {
        self.advisories_for_at(db, eco, name, Instant::now())
    }

    /// [`advisories_for`](Self::advisories_for) with an explicit clock,
    /// so TTL expiry is testable without sleeping.
    pub fn advisories_for_at(
        &self,
        db: &AdvisoryDb,
        eco: Ecosystem,
        name: &str,
        now: Instant,
    ) -> Result<Arc<Vec<Advisory>>, String> {
        let canonical = sbomdiff_types::name::normalize(eco, name);
        if let Some(surfaced) = fault::point!(fault::sites::VULN_LOOKUP, &canonical) {
            return Err(surfaced.message(fault::sites::VULN_LOOKUP));
        }
        let key = (db.fingerprint(), eco, canonical);
        let shard = &self.shards[self.shard_of(&key)];
        {
            let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.get(&key) {
                Some(entry) if entry.expires > now => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.advisories));
                }
                Some(_) => {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    guard.remove(&key);
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(surfaced) = fault::point!(fault::sites::VULN_ENRICH, &key.2) {
            return Err(surfaced.message(fault::sites::VULN_ENRICH));
        }
        let advisories: Arc<Vec<Advisory>> =
            Arc::new(db.for_package(eco, &key.2).into_iter().cloned().collect());
        shard.lock().unwrap_or_else(PoisonError::into_inner).insert(
            key,
            Entry {
                advisories: Arc::clone(&advisories),
                expires: now + self.ttl,
            },
        );
        Ok(advisories)
    }

    fn shard_of(&self, key: &Key) -> usize {
        // FNV-1a over the canonical name + fingerprint: cheap, stable.
        let mut h = 0xcbf29ce484222325u64 ^ key.0;
        for b in key.2.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (h as usize) % self.shards.len()
    }
}

impl Default for EnrichCache {
    fn default() -> Self {
        Self::new()
    }
}

/// [`assess`](crate::impact::assess) routed through the enrichment cache:
/// both the ground-truth side and the SBOM-driven side pull per-package
/// advisory slices from the cache and evaluate ranges locally, so a batch
/// of profiles over the same packages fills each key once.
///
/// # Errors
///
/// The first surfaced fault message; the caller must answer degraded and
/// the partial result is discarded.
pub fn assess_cached(
    cache: &EnrichCache,
    db: &AdvisoryDb,
    eco: Ecosystem,
    sbom: &Sbom,
    truth: &[ResolvedPackage],
) -> Result<ImpactReport, String> {
    let mut report = ImpactReport::default();
    for pkg in truth {
        for adv in cache.advisories_for(db, eco, &pkg.name)?.iter() {
            if adv.affects(&pkg.version) {
                report.actual.insert(adv.id.clone());
            }
        }
    }
    let mut raised: BTreeSet<String> = BTreeSet::new();
    for c in sbom.components() {
        let Some(version) = c.version.as_deref().and_then(|v| Version::parse(v).ok()) else {
            continue; // no concrete version → unmatchable entry
        };
        for adv in cache.advisories_for(db, c.ecosystem, &c.name)?.iter() {
            if adv.ecosystem == c.ecosystem && adv.affects(&version) {
                raised.insert(adv.id.clone());
            }
        }
    }
    for id in &raised {
        if report.actual.contains(id) {
            report.detected.insert(id.clone());
        } else {
            report.false_alarms.insert(id.clone());
        }
    }
    for id in &report.actual {
        if !raised.contains(id) {
            report.missed.insert(id.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_registry::Registries;
    use sbomdiff_types::Component;

    fn db() -> AdvisoryDb {
        AdvisoryDb::generate(&Registries::generate(55), 9, 0.5)
    }

    #[test]
    fn caches_and_counts_hits() {
        let db = db();
        let cache = EnrichCache::new();
        let a = cache
            .advisories_for(&db, Ecosystem::Python, "numpy")
            .unwrap();
        let b = cache
            .advisories_for(&db, Ecosystem::Python, "NumPy")
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "normalized names share the entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.expired), (1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ttl_expiry_refills() {
        let db = db();
        let cache = EnrichCache::with(4, Duration::from_secs(60));
        let t0 = Instant::now();
        cache
            .advisories_for_at(&db, Ecosystem::Python, "numpy", t0)
            .unwrap();
        // Within the TTL: a hit.
        cache
            .advisories_for_at(
                &db,
                Ecosystem::Python,
                "numpy",
                t0 + Duration::from_secs(30),
            )
            .unwrap();
        // Past the TTL: expired + refilled.
        cache
            .advisories_for_at(
                &db,
                Ecosystem::Python,
                "numpy",
                t0 + Duration::from_secs(61),
            )
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.expired), (1, 2, 1));
    }

    #[test]
    fn different_databases_never_alias() {
        let regs = Registries::generate(55);
        let a = AdvisoryDb::generate(&regs, 9, 0.5);
        let b = AdvisoryDb::generate(&regs, 10, 0.5);
        let cache = EnrichCache::new();
        let from_a = cache
            .advisories_for(&a, Ecosystem::Python, "numpy")
            .unwrap();
        let from_b = cache
            .advisories_for(&b, Ecosystem::Python, "numpy")
            .unwrap();
        assert_eq!(cache.stats().misses, 2, "distinct fingerprints fill twice");
        let ids_a: Vec<&str> = from_a.iter().map(|x| x.id.as_str()).collect();
        let ids_b: Vec<&str> = from_b.iter().map(|x| x.id.as_str()).collect();
        // Same package, different universes: entries are independent.
        assert_eq!(cache.len(), 2, "{ids_a:?} vs {ids_b:?}");
    }

    #[test]
    fn assess_cached_matches_uncached_assess() {
        let db = db();
        let cache = EnrichCache::new();
        let truth = vec![
            ResolvedPackage::direct("numpy", Version::parse("1.19.2").unwrap()),
            ResolvedPackage::direct("requests", Version::parse("2.8.1").unwrap()),
        ];
        let mut sbom = Sbom::new("t", "1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let cached = assess_cached(&cache, &db, Ecosystem::Python, &sbom, &truth).unwrap();
        let direct = crate::impact::assess_in(&db, Ecosystem::Python, &sbom, &truth);
        assert_eq!(cached.actual, direct.actual);
        assert_eq!(cached.detected, direct.detected);
        assert_eq!(cached.missed, direct.missed);
        assert_eq!(cached.false_alarms, direct.false_alarms);
        assert!(cache.stats().misses > 0);
    }

    #[test]
    fn surfaced_faults_are_not_cached() {
        let db = db();
        let cache = EnrichCache::new();
        // Key the rule to one package so concurrent tests in this binary
        // are unaffected by the process-global plan.
        let plan = fault::FaultPlan {
            seed: 7,
            rules: vec![fault::FaultRule::new(
                fault::sites::VULN_ENRICH,
                1_000_000,
                fault::FaultAction::Error,
            )
            .for_key("enrich-fault-probe")],
        };
        let guard = fault::install(plan);
        let err = cache
            .advisories_for(&db, Ecosystem::Python, "enrich-fault-probe")
            .unwrap_err();
        assert!(fault::is_injected(&err));
        assert_eq!(cache.len(), 0, "failed fills must not be cached");
        drop(guard);
        // Fault-free retry fills normally.
        assert!(cache
            .advisories_for(&db, Ecosystem::Python, "enrich-fault-probe")
            .is_ok());
        assert_eq!(cache.len(), 1);
    }
}

//! Property-based tests for the OSV range semantics in `sbomdiff-vuln`.
//!
//! Four invariant families from the enrichment-pipeline contract:
//!
//! 1. **Event ordering** — `affects` evaluates a *sorted* walk, so the
//!    declaration order of `events[]` must never change the verdict, and
//!    the boundary conventions (introduced inclusive, fixed exclusive,
//!    last_affected inclusive) must hold for arbitrary event versions.
//! 2. **OSV vs legacy equivalence** — advisories with the single
//!    half-open-from-zero shape expose a legacy `VersionReq`; the event
//!    walk and the constraint matcher must agree on every probed version.
//! 3. **Pre-release boundaries** — a pre-release version only matches a
//!    range that itself mentions a pre-release, mirroring the
//!    `VersionReq` gate, and agreement must survive pre-release event
//!    versions.
//! 4. **Affects monotonicity** — a single well-formed range describes one
//!    contiguous affected interval: walking any ascending version chain,
//!    the verdict switches at most twice (off→on→off) and never
//!    re-enters the affected state.

use proptest::prelude::*;
use sbomdiff_registry::Registries;
use sbomdiff_types::{ConstraintFlavor, Version, VersionReq};
use sbomdiff_vuln::{AdvisoryDb, OsvEvent, OsvRange, RangeKind};

/// Release-only versions: 1–3 numeric segments, small enough that
/// collisions (equal versions, adjacent versions) are common.
fn release_strategy() -> impl Strategy<Value = Version> {
    prop::collection::vec(0u64..12, 1..4).prop_map(|segs| {
        let text = segs
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(".");
        Version::parse(&text).expect("numeric dotted version parses")
    })
}

/// Versions with an optional pre-release tail, for the gate properties.
fn version_strategy() -> impl Strategy<Value = Version> {
    let pre = prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|n| format!("-alpha.{n}")),
        (0u64..4).prop_map(|n| format!("-rc.{n}")),
    ];
    (prop::collection::vec(0u64..12, 1..4), pre).prop_map(|(segs, pre)| {
        let release = segs
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(".");
        Version::parse(&format!("{release}{pre}")).expect("version parses")
    })
}

fn kind_strategy() -> impl Strategy<Value = RangeKind> {
    prop_oneof![Just(RangeKind::Semver), Just(RangeKind::Ecosystem)]
}

/// Orders an arbitrary pair into a strictly ascending `(floor, ceiling)`
/// (the vendored proptest has no `prop_assume`, so equality is resolved
/// by appending a segment, which sorts strictly above its prefix).
fn ascending(a: Version, b: Version) -> (Version, Version) {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => (a, b),
        std::cmp::Ordering::Greater => (b, a),
        std::cmp::Ordering::Equal => {
            let bumped = Version::parse(&format!("{}.1", a.to_unprefixed()))
                .expect("appending a segment still parses");
            (a, bumped)
        }
    }
}

/// Arbitrary event lists (1–5 events, possibly ill-ordered or even
/// ill-formed) — `affects` must be a total function over all of them.
fn events_strategy() -> impl Strategy<Value = Vec<OsvEvent>> {
    let event = prop_oneof![
        Just(OsvEvent::Introduced(None)),
        version_strategy().prop_map(|v| OsvEvent::Introduced(Some(v))),
        version_strategy().prop_map(OsvEvent::Fixed),
        version_strategy().prop_map(OsvEvent::LastAffected),
    ];
    prop::collection::vec(event, 1..6)
}

proptest! {
    // ---- 1. event ordering -------------------------------------------

    /// Declaration order is irrelevant: evaluation sorts the events, so
    /// any permutation (here: reversal and a rotation, which together
    /// generate non-trivial reorderings) yields the same verdict.
    #[test]
    fn affects_is_independent_of_event_declaration_order(
        kind in kind_strategy(),
        events in events_strategy(),
        rotate in 0usize..6,
        probe in version_strategy(),
    ) {
        let baseline = OsvRange { kind, events: events.clone() };
        let mut reversed = events.clone();
        reversed.reverse();
        let mut rotated = events.clone();
        rotated.rotate_left(rotate % events.len().max(1));
        let reversed = OsvRange { kind, events: reversed };
        let rotated = OsvRange { kind, events: rotated };
        prop_assert_eq!(baseline.affects(&probe), reversed.affects(&probe));
        prop_assert_eq!(baseline.affects(&probe), rotated.affects(&probe));
    }

    /// Boundary conventions on the dominant half-open shape: the
    /// `introduced` floor is inclusive, the `fixed` ceiling exclusive,
    /// for arbitrary (well-ordered) event versions.
    #[test]
    fn half_open_boundaries_are_inclusive_exclusive(
        kind in kind_strategy(),
        a in release_strategy(),
        b in release_strategy(),
    ) {
        let (intro, fixed) = ascending(a, b);
        let range = OsvRange::half_open(kind, Some(intro.clone()), fixed.clone());
        prop_assert!(range.validate().is_empty());
        prop_assert!(range.affects(&intro), "introduced version is affected");
        prop_assert!(!range.affects(&fixed), "fixed version is not affected");
    }

    /// `last_affected` is inclusive: the named version is still affected.
    #[test]
    fn closed_range_includes_its_last_affected(
        kind in kind_strategy(),
        a in release_strategy(),
        b in release_strategy(),
    ) {
        let (intro, last) = if a <= b { (a, b) } else { (b, a) };
        let range = OsvRange::closed(kind, Some(intro.clone()), last.clone());
        prop_assert!(range.validate().is_empty());
        prop_assert!(range.affects(&intro));
        prop_assert!(range.affects(&last), "last_affected version is affected");
    }

    /// An empty window — `fixed` at its own `introduced` — matches
    /// nothing, and `validate` flags the shape.
    #[test]
    fn fixed_at_introduced_is_an_empty_flagged_range(
        kind in kind_strategy(),
        at in release_strategy(),
        probe in version_strategy(),
    ) {
        let range = OsvRange::half_open(kind, Some(at.clone()), at.clone());
        prop_assert!(!range.affects(&probe));
        prop_assert!(!range.validate().is_empty(), "degenerate range is flagged");
    }

    // ---- 3. pre-release boundaries -----------------------------------

    /// The gate: a pre-release probe never matches a range whose events
    /// are all final releases, regardless of where it falls numerically.
    #[test]
    fn prerelease_probe_requires_a_prerelease_mention(
        kind in kind_strategy(),
        events in events_strategy(),
        release in release_strategy(),
        tag in 0u64..4,
    ) {
        let probe = Version::parse(&format!("{}-rc.{tag}", release.to_unprefixed()))
            .expect("pre-release parses");
        let range = OsvRange { kind, events };
        if !range.mentions_prerelease() {
            prop_assert!(!range.affects(&probe));
        }
    }

    /// With the gate open (a pre-release `fixed` event), pre-releases
    /// below the fix are affected and the fix itself is still excluded.
    #[test]
    fn prerelease_fixed_event_opens_the_gate(
        kind in kind_strategy(),
        release in release_strategy(),
        fix_tag in 1u64..5,
        probe_tag in 0u64..5,
    ) {
        let base = release.to_unprefixed();
        let fixed = Version::parse(&format!("{base}-rc.{fix_tag}")).unwrap();
        let probe = Version::parse(&format!("{base}-rc.{probe_tag}")).unwrap();
        let range = OsvRange::half_open(kind, None, fixed.clone());
        prop_assert!(range.mentions_prerelease());
        prop_assert_eq!(range.affects(&probe), probe < fixed);
    }

    /// A closed range whose `last_affected` carries a pre-release suffix,
    /// probed at exactly that version under ECOSYSTEM ordering: the
    /// boundary is inclusive, and the walk agrees with the equivalent
    /// `<=last` constraint on the boundary and on every nearby probe.
    #[test]
    fn prerelease_last_affected_boundary_agrees_with_legacy_constraint(
        release in release_strategy(),
        tag in 0u64..4,
        probe_tag in 0u64..4,
    ) {
        let base = release.to_unprefixed();
        let last = Version::parse(&format!("{base}-rc.{tag}")).unwrap();
        let range = OsvRange::closed(RangeKind::Ecosystem, None, last.clone());
        let req = VersionReq::parse(
            &format!("<={}", last.to_unprefixed()),
            ConstraintFlavor::Pep440,
        )
        .unwrap();
        // Inclusive boundary, both paths.
        prop_assert!(range.affects(&last), "last_affected version is affected");
        prop_assert!(req.matches(&last));
        // PEP 440 compact respelling of the same version still matches.
        let respelled = Version::parse(&format!("{base}rc{tag}")).unwrap();
        prop_assert!(range.affects(&respelled));
        // Probes around the boundary agree with the constraint path.
        for probe in [
            Version::parse(&format!("{base}-rc.{probe_tag}")).unwrap(),
            Version::parse(&format!("{base}-alpha.{probe_tag}")).unwrap(),
            release.clone(),
            release.bump_patch(),
        ] {
            prop_assert_eq!(
                range.affects(&probe),
                req.matches(&probe),
                "walk vs constraint at {}",
                probe.canonical()
            );
        }
    }

    /// Two intervals touching at one shared pre-release boundary —
    /// `last_affected x` immediately followed by `introduced x` — cover
    /// the union of both: the walk must agree with the pair of legacy
    /// constraints (`<=x` OR `>=x,<=y`) on every probe. The pre-fix walk
    /// let the inclusive close at `x` erase the co-located open, dropping
    /// the entire second interval.
    #[test]
    fn adjacent_intervals_keep_their_shared_prerelease_boundary(
        release in release_strategy(),
        tag in 0u64..4,
        chain in prop::collection::btree_set(version_strategy(), 2..16),
    ) {
        let x = Version::parse(&format!("{}-rc.{tag}", release.to_unprefixed())).unwrap();
        let y = Version::parse(&format!("{}.9", release.bump_major().to_unprefixed())).unwrap();
        let range = OsvRange {
            kind: RangeKind::Ecosystem,
            events: vec![
                OsvEvent::Introduced(None),
                OsvEvent::LastAffected(x.clone()),
                OsvEvent::Introduced(Some(x.clone())),
                OsvEvent::LastAffected(y.clone()),
            ],
        };
        prop_assert!(range.validate().is_empty());
        let first = VersionReq::parse(
            &format!("<={}", x.to_unprefixed()),
            ConstraintFlavor::Pep440,
        )
        .unwrap();
        let second = VersionReq::parse(
            &format!(">={},<={}", x.to_unprefixed(), y.to_unprefixed()),
            ConstraintFlavor::Pep440,
        )
        .unwrap();
        prop_assert!(range.affects(&x), "shared boundary is affected");
        for probe in chain {
            let legacy = first.matches(&probe) || second.matches(&probe);
            prop_assert_eq!(
                range.affects(&probe),
                legacy,
                "walk vs constraint pair at {}",
                probe.canonical()
            );
        }
    }

    // ---- 4. affects monotonicity -------------------------------------

    /// A single well-formed range is one contiguous interval: along any
    /// ascending chain of versions the verdict changes at most twice and
    /// never returns to `true` after leaving it.
    #[test]
    fn single_range_affected_set_is_contiguous(
        kind in kind_strategy(),
        open_floor in any::<bool>(),
        a in release_strategy(),
        b in release_strategy(),
        use_last_affected in any::<bool>(),
        chain in prop::collection::btree_set(release_strategy(), 2..24),
    ) {
        let (floor, limit) = ascending(a, b);
        let intro = if open_floor { None } else { Some(floor) };
        let range = if use_last_affected {
            OsvRange::closed(kind, intro, limit)
        } else {
            OsvRange::half_open(kind, intro, limit)
        };
        prop_assert!(range.validate().is_empty());
        // BTreeSet iteration is ascending and duplicate-free.
        let verdicts: Vec<bool> = chain.iter().map(|v| range.affects(v)).collect();
        let transitions = verdicts.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert!(
            transitions <= 2,
            "affected set is not an interval: {verdicts:?}"
        );
        if transitions == 2 {
            prop_assert!(
                !verdicts[0] && !verdicts[verdicts.len() - 1],
                "two transitions must be off→on→off: {verdicts:?}"
            );
        }
    }
}

// ---- 2. OSV vs legacy `VersionReq` equivalence -----------------------
//
// Generated universes are the realistic input distribution, so the
// equivalence is checked there rather than over synthetic strategies:
// every advisory that exposes a legacy requirement must agree with the
// event walk on every published version of its package plus the exact
// boundary versions of its events.

#[test]
fn legacy_req_equivalence_over_generated_universes() {
    let mut checked = 0usize;
    for seed in [1u64, 9, 77] {
        let registries = Registries::generate(7);
        let db = AdvisoryDb::generate(&registries, seed, 0.35);
        assert!(!db.is_empty());
        for (eco, universe) in registries.iter() {
            for (name, published) in universe.entries() {
                let normalized = sbomdiff_types::name::normalize(eco, name);
                for advisory in db.for_package(eco, &normalized) {
                    let Some(req) = advisory.legacy_req() else {
                        continue;
                    };
                    let mut probes: Vec<Version> =
                        published.iter().map(|r| r.version.clone()).collect();
                    for range in &advisory.ranges {
                        probes.extend(range.events.iter().filter_map(|e| e.version().cloned()));
                    }
                    for v in &probes {
                        assert_eq!(
                            advisory.affects(v),
                            req.matches(v),
                            "{} diverges from its legacy requirement at {}",
                            advisory.id,
                            v.canonical()
                        );
                    }
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 100,
        "too few half-open advisories checked: {checked}"
    );
}

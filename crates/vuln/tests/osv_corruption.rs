//! Corruption/fuzz suite for OSV advisory-feed ingestion.
//!
//! The feed loader takes arbitrary external bytes, so it must never
//! panic and must classify every failure — envelope-level damage as one
//! fatal [`Diagnostic`], per-advisory damage as skip diagnostics while
//! the rest of the feed survives. This suite serializes generated
//! databases via `db_to_osv_json` and mangles them: exhaustive-stride
//! truncation, deterministic bit flips, invalid UTF-8 splices, plus the
//! OSV-specific structural damage of duplicate and out-of-order range
//! events.
//!
//! Deterministic by construction: fixed seeds, fixed iteration counts.
//! `INGEST_FUZZ_BUDGET` scales the mutation count (CI smoke uses a
//! reduced budget; the default exercises the full matrix).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sbomdiff_registry::Registries;
use sbomdiff_types::{DiagClass, Version};
use sbomdiff_vuln::{db_to_osv_json, ingest_osv, AdvisoryDb};

/// Mutations per (document, corruption family). Override with
/// `INGEST_FUZZ_BUDGET` for CI smoke runs.
fn budget() -> usize {
    std::env::var("INGEST_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// A feed worth corrupting: non-trivial, covers every range shape the
/// generator emits (half-open, introduced-later, last_affected, multi-
/// range reintroduction) across all nine ecosystems.
fn valid_feed() -> (AdvisoryDb, String) {
    let registries = Registries::generate(6);
    let db = AdvisoryDb::generate(&registries, 42, 0.3);
    assert!(
        db.len() > 50,
        "feed too small to be interesting: {}",
        db.len()
    );
    let json = db_to_osv_json(&db);
    (db, json)
}

/// Envelope-fatal classes `ingest_osv` is allowed to return.
const FATAL_CLASSES: [DiagClass; 3] = [
    DiagClass::EncodingError,
    DiagClass::TruncatedInput,
    DiagClass::MalformedFile,
];

/// Per-advisory skip classes.
const SKIP_CLASSES: [DiagClass; 3] = [
    DiagClass::MissingField,
    DiagClass::InvalidVersion,
    DiagClass::UnsupportedSyntax,
];

/// Ingests a mutant under a panic boundary and asserts the universal
/// invariants: no panic, and every diagnostic — fatal or per-advisory —
/// carries a known class and a non-empty message.
fn probe(bytes: &[u8]) -> Result<(AdvisoryDb, usize), DiagClass> {
    let result = catch_unwind(AssertUnwindSafe(|| ingest_osv(bytes)))
        .unwrap_or_else(|_| panic!("ingest_osv panicked on {} mutated bytes", bytes.len()));
    match result {
        Ok((db, diagnostics)) => {
            for diag in &diagnostics {
                assert!(
                    SKIP_CLASSES.contains(&diag.class),
                    "unclassified skip diagnostic: {diag}"
                );
                assert!(!diag.message.is_empty());
            }
            Ok((db, diagnostics.len()))
        }
        Err(fatal) => {
            assert!(
                FATAL_CLASSES.contains(&fatal.class),
                "unclassified fatal: {fatal}"
            );
            assert!(!fatal.message.is_empty());
            Err(fatal.class)
        }
    }
}

#[test]
fn clean_feed_round_trips_without_diagnostics() {
    let (db, json) = valid_feed();
    let (back, skipped) = probe(json.as_bytes()).expect("clean feed ingests");
    assert_eq!(skipped, 0);
    assert_eq!(back.len(), db.len());
    assert_eq!(back.fingerprint(), db.fingerprint());
}

#[test]
fn truncation_at_every_offset_never_panics() {
    let (_, json) = valid_feed();
    let bytes = json.as_bytes();
    // Exhaustive for small feeds; stride keeps big ones bounded.
    let stride = (bytes.len() / budget().max(1)).max(1);
    for cut in (0..bytes.len()).step_by(stride) {
        let _ = probe(&bytes[..cut]);
    }
    // The empty prefix is its own class: a truncated nothing.
    assert_eq!(probe(b"").unwrap_err(), DiagClass::TruncatedInput);
}

#[test]
fn bit_flips_are_classified_not_panics() {
    let (_, json) = valid_feed();
    let mut rng = StdRng::seed_from_u64(0x51FB17F5);
    let mut survived = 0usize;
    for _ in 0..budget() {
        let mut bytes = json.clone().into_bytes();
        let pos = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u32);
        bytes[pos] ^= 1 << bit;
        if probe(&bytes).is_ok() {
            survived += 1;
        }
    }
    // Most single-bit flips land inside string payloads and the feed
    // still ingests (possibly with skips) — the suite must exercise
    // both the fatal and the survive path.
    assert!(survived > 0, "no flipped feed survived ingestion");
}

#[test]
fn invalid_utf8_yields_encoding_diagnostics() {
    let (_, json) = valid_feed();
    let mut rng = StdRng::seed_from_u64(0x0FF_BEEF);
    let mut saw_encoding_error = false;
    for _ in 0..budget() {
        let mut bytes = json.clone().into_bytes();
        let pos = rng.gen_range(0..bytes.len());
        // Lone continuation bytes, overlong starts, and 0xFF are all
        // invalid in UTF-8.
        bytes[pos] = [0x80, 0xC0, 0xF8, 0xFFu8][rng.gen_range(0..4)];
        if probe(&bytes).err() == Some(DiagClass::EncodingError) {
            saw_encoding_error = true;
        }
    }
    assert!(
        saw_encoding_error,
        "no mutant was classified as an encoding error"
    );
}

/// Duplicating an event inside one advisory's range must skip exactly
/// that advisory — with a classified diagnostic naming the damage — and
/// leave the rest of the feed intact.
#[test]
fn duplicate_events_skip_only_the_damaged_advisory() {
    let (db, _) = valid_feed();
    let victims = [0usize, db.len() / 2, db.len() - 1];
    for victim in victims {
        let mut advisories = db.advisories().to_vec();
        let first = advisories[victim].ranges[0].events[0].clone();
        advisories[victim].ranges[0].events.push(first);
        let damaged_id = advisories[victim].id.clone();
        let json = db_to_osv_json(&AdvisoryDb::from_advisories(advisories));

        let result = catch_unwind(AssertUnwindSafe(|| ingest_osv(json.as_bytes())))
            .expect("no panic on duplicate events");
        let (back, diagnostics) = result.expect("envelope is still well-formed");
        assert_eq!(back.len(), db.len() - 1, "only the victim is dropped");
        assert!(back.by_id(&damaged_id).is_none());
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].class, DiagClass::UnsupportedSyntax);
        assert!(
            diagnostics[0].message.contains("duplicate"),
            "diagnostic names the damage: {}",
            diagnostics[0].message
        );
    }
}

/// Out-of-order events are *legal* OSV: evaluation sorts, so a feed with
/// every event list reversed must ingest cleanly and match identically.
#[test]
fn out_of_order_events_ingest_and_match_identically() {
    let (db, _) = valid_feed();
    let mut advisories = db.advisories().to_vec();
    for advisory in &mut advisories {
        for range in &mut advisory.ranges {
            range.events.reverse();
        }
    }
    let json = db_to_osv_json(&AdvisoryDb::from_advisories(advisories));
    let (back, skipped) = probe(json.as_bytes()).expect("reversed events ingest");
    assert_eq!(skipped, 0);
    assert_eq!(back.len(), db.len());
    for probe_text in ["0.1.0", "1.4.0", "2.0.0", "3.9.9"] {
        let v = Version::parse(probe_text).unwrap();
        for original in db.advisories() {
            let reversed = back.by_id(&original.id).expect("advisory survived");
            assert_eq!(
                original.affects(&v),
                reversed.affects(&v),
                "{} diverges at {probe_text} after event reversal",
                original.id
            );
        }
    }
}

/// Random segment deletion/splice/duplication at the byte level: the
/// catch-all family for structural JSON damage.
#[test]
fn splice_and_delete_mutations_keep_all_invariants() {
    let (_, json) = valid_feed();
    let mut rng = StdRng::seed_from_u64(0x5EED05F0);
    for _ in 0..budget() {
        let mut bytes = json.clone().into_bytes();
        match rng.gen_range(0..3u32) {
            // Delete a random segment.
            0 => {
                let start = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(0..=(bytes.len() - start).min(48));
                bytes.drain(start..start + len);
            }
            // Splice random bytes in.
            1 => {
                let at = rng.gen_range(0..=bytes.len());
                let insert: Vec<u8> = (0..rng.gen_range(1..16usize))
                    .map(|_| rng.gen_range(0..=255u8))
                    .collect();
                bytes.splice(at..at, insert);
            }
            // Duplicate a segment (duplicate keys, repeated clauses).
            _ => {
                let start = rng.gen_range(0..bytes.len());
                let len = (bytes.len() - start).min(32);
                let segment: Vec<u8> = bytes[start..start + len].to_vec();
                bytes.splice(start..start, segment);
            }
        }
        let _ = probe(&bytes);
    }
}

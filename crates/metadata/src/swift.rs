//! Swift metadata parsing: `Package.swift` (SwiftPM manifest subset),
//! `Package.resolved`, `Podfile` and `Podfile.lock` (CocoaPods).
//!
//! CocoaPods subspecs (`Firebase/Auth`) are kept structurally — §V-E shows
//! Syft/Trivy report the subspec while sbom-tool reports the main pod.

use sbomdiff_types::{
    diagnostic::excerpt, ConstraintFlavor, DeclaredDependency, DiagClass, Diagnostic, Ecosystem,
    VersionReq,
};

use sbomdiff_textformats::{json, yaml, Value};

use crate::{format_error_diag, Parsed};

/// Parses `.package(...)` declarations out of `Package.swift`.
///
/// Recognized requirement spellings: `from: "1.2.3"`, `exact: "1.2.3"`,
/// `.upToNextMajor(from: "1.2.3")`, `.upToNextMinor(from: "1.2.3")`,
/// `branch:`/`revision:` (reported without version), and the
/// `"1.0.0"..<"2.0.0"` range form.
pub fn parse_package_swift(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut rest = text;
    while let Some(idx) = rest.find(".package(") {
        rest = &rest[idx + ".package(".len()..];
        let Some(close) = find_balanced_close(rest) else {
            out.push_diag(Diagnostic::new(
                DiagClass::TruncatedInput,
                "Package.swift: unbalanced .package( call",
            ));
            break;
        };
        let call = &rest[..close];
        rest = &rest[close..];
        let Some(url) = extract_labeled_string(call, "url:") else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                format!(".package call without url: {}", excerpt(call)),
            ));
            continue;
        };
        let name = url
            .trim_end_matches('/')
            .rsplit('/')
            .next()
            .unwrap_or(&url)
            .trim_end_matches(".git")
            .to_string();
        if name.is_empty() {
            out.push_diag(Diagnostic::new(
                DiagClass::InvalidName,
                format!("package url yields no name: {}", excerpt(&url)),
            ));
            continue;
        }
        let (req_text, req) = swift_requirement(call);
        let mut dep = DeclaredDependency::new(Ecosystem::Swift, name, req);
        dep.req_text = req_text;
        out.deps.push(dep);
    }
    out
}

fn find_balanced_close(s: &str) -> Option<usize> {
    let mut depth = 1i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn extract_labeled_string(call: &str, label: &str) -> Option<String> {
    let idx = call.find(label)?;
    let after = &call[idx + label.len()..];
    let start = after.find('"')?;
    let rest = &after[start + 1..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn swift_requirement(call: &str) -> (String, Option<VersionReq>) {
    if let Some(v) = extract_labeled_string(call, "exact:") {
        let req = sbomdiff_types::Version::parse(&v)
            .ok()
            .map(VersionReq::exact);
        return (format!("exact: {v}"), req);
    }
    if call.contains(".upToNextMinor") {
        if let Some(v) = extract_labeled_string(call, "from:") {
            let req = VersionReq::parse(&format!("~> {v}"), ConstraintFlavor::RubyGems).ok();
            return (format!("upToNextMinor(from: {v})"), req);
        }
    }
    if let Some(v) = extract_labeled_string(call, "from:") {
        // from: / .upToNextMajor — caret semantics.
        let req = VersionReq::parse(&format!("^{v}"), ConstraintFlavor::Npm).ok();
        return (format!("from: {v}"), req);
    }
    // "1.0.0"..<"2.0.0"
    if let Some(range_idx) = call.find("..<") {
        let before = &call[..range_idx];
        let after = &call[range_idx + 3..];
        let lo = before
            .rfind('"')
            .and_then(|e| before[..e].rfind('"').map(|s| before[s + 1..e].to_string()));
        let hi = after.find('"').and_then(|s| {
            after[s + 1..]
                .find('"')
                .map(|e| after[s + 1..s + 1 + e].to_string())
        });
        if let (Some(lo), Some(hi)) = (lo, hi) {
            let text = format!("{lo}..<{hi}");
            let req = VersionReq::parse(&format!(">={lo}, <{hi}"), ConstraintFlavor::Pep440).ok();
            return (text, req);
        }
    }
    if let Some(b) = extract_labeled_string(call, "branch:") {
        return (format!("branch: {b}"), None);
    }
    if let Some(r) = extract_labeled_string(call, "revision:") {
        return (format!("revision: {r}"), None);
    }
    (String::new(), None)
}

/// Parses `Package.resolved` (v1 `object.pins[].package` and v2/v3
/// `pins[].identity` layouts).
pub fn parse_package_resolved(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Package.resolved", &e)),
    };
    let pins = doc
        .get("pins")
        .or_else(|| doc.pointer("object/pins"))
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    let mut out = Parsed::default();
    for pin in pins {
        let name = pin
            .get("identity")
            .or_else(|| pin.get("package"))
            .and_then(Value::as_str);
        let Some(name) = name else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                "pin without identity/package",
            ));
            continue;
        };
        let version = pin
            .pointer("state/version")
            .and_then(Value::as_str)
            .filter(|v| *v != "null");
        let req = version
            .and_then(|v| sbomdiff_types::Version::parse(v).ok())
            .map(VersionReq::exact);
        let mut dep = DeclaredDependency::new(Ecosystem::Swift, name, req);
        dep.req_text = version.unwrap_or_default().to_string();
        out.deps.push(dep);
    }
    out
}

/// Parses `Podfile` `pod 'Name', '~> 1.0'` declarations (target blocks are
/// flattened; CocoaPods installs the union).
pub fn parse_podfile(text: &str) -> Parsed {
    let mut out = Parsed::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_ruby_comment(raw).trim();
        let Some(rest) = line
            .strip_prefix("pod ")
            .or_else(|| line.strip_prefix("pod("))
        else {
            continue;
        };
        let parts: Vec<&str> = split_top_commas(rest.trim_end_matches(')'));
        let Some(name) = parts.first().and_then(|p| unquote(p)) else {
            out.push_diag(
                Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!("pod declaration without a quoted name: {}", excerpt(line)),
                )
                .with_line(lineno as u32 + 1),
            );
            continue;
        };
        let reqs: Vec<String> = parts
            .iter()
            .skip(1)
            .filter(|p| !p.contains(':'))
            .filter_map(|p| unquote(p))
            .collect();
        let req_text = reqs.join(", ");
        let req = if req_text.is_empty() {
            None
        } else {
            VersionReq::parse(&req_text, ConstraintFlavor::RubyGems).ok()
        };
        let mut dep = DeclaredDependency::new(Ecosystem::Swift, name, req);
        dep.req_text = req_text;
        out.deps.push(dep);
    }
    out
}

fn strip_ruby_comment(line: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_top_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ',' if !in_single && !in_double => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(s[start..].trim());
    parts
}

fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    if (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
        || (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
    {
        Some(s[1..s.len() - 1].to_string())
    } else {
        None
    }
}

/// Parses `Podfile.lock`'s `PODS:` section — the full resolved set
/// including transitive pods and subspecs, each `Name (version)`.
pub fn parse_podfile_lock(text: &str) -> Parsed {
    let doc = match yaml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Podfile.lock", &e)),
    };
    let Some(pods) = doc.get("PODS").and_then(Value::as_array) else {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MissingField,
            "Podfile.lock: no PODS list",
        ));
    };
    let mut out = Parsed::default();
    for pod in pods {
        let entry = match pod {
            Value::Str(s) => Some(s.clone()),
            Value::Object(entries) => entries.first().map(|(k, _)| k.clone()),
            _ => None,
        };
        let Some(entry) = entry else {
            out.push_diag(Diagnostic::new(
                DiagClass::MalformedFile,
                "PODS entry is neither a string nor a mapping",
            ));
            continue;
        };
        if let Some((name, version)) = crate::ruby::name_paren_version(&entry) {
            let req = sbomdiff_types::Version::parse(&version)
                .ok()
                .map(VersionReq::exact);
            let mut dep = DeclaredDependency::new(Ecosystem::Swift, name, req);
            dep.req_text = version;
            out.deps.push(dep);
        } else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                format!("PODS entry without a pinned version: {}", excerpt(&entry)),
            ));
        }
    }
    out
}

/// Parses the `DEPENDENCIES:` section of `Podfile.lock` (the directly
/// declared pods with their raw requirements).
pub fn parse_podfile_lock_dependencies(text: &str) -> Parsed {
    let doc = match yaml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Podfile.lock", &e)),
    };
    let Some(deps) = doc.get("DEPENDENCIES").and_then(Value::as_array) else {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MissingField,
            "Podfile.lock: no DEPENDENCIES list",
        ));
    };
    let mut out = Parsed::default();
    for d in deps {
        let Some(s) = d.as_str() else {
            out.push_diag(Diagnostic::new(
                DiagClass::MalformedFile,
                "DEPENDENCIES entry is not a string",
            ));
            continue;
        };
        match crate::ruby::name_paren_version(s) {
            Some((name, reqs)) => {
                let req = VersionReq::parse(&reqs, ConstraintFlavor::RubyGems).ok();
                let mut dep = DeclaredDependency::new(Ecosystem::Swift, name, req);
                dep.req_text = reqs;
                out.deps.push(dep);
            }
            None => {
                out.deps.push(DeclaredDependency::new(
                    Ecosystem::Swift,
                    s.trim().to_string(),
                    None,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::Version;

    #[test]
    fn package_swift_requirements() {
        let deps = parse_package_swift(
            r#"
// swift-tools-version:5.7
import PackageDescription

let package = Package(
    name: "Demo",
    dependencies: [
        .package(url: "https://github.com/apple/swift-nio.git", from: "2.58.0"),
        .package(url: "https://github.com/apple/swift-log.git", exact: "1.5.2"),
        .package(url: "https://github.com/vapor/vapor.git", .upToNextMinor(from: "4.76.0")),
        .package(url: "https://github.com/me/dev.git", branch: "main"),
        .package(url: "https://github.com/x/y", "1.0.0"..<"2.0.0"),
    ]
)
"#,
        );
        assert_eq!(deps.len(), 5);
        assert_eq!(deps[0].name.raw(), "swift-nio");
        assert!(deps[0]
            .req
            .as_ref()
            .unwrap()
            .matches(&Version::parse("2.99.0").unwrap()));
        assert_eq!(deps[1].pinned_version().unwrap().to_string(), "1.5.2");
        assert!(deps[2]
            .req
            .as_ref()
            .unwrap()
            .matches(&Version::parse("4.76.5").unwrap()));
        assert!(!deps[2]
            .req
            .as_ref()
            .unwrap()
            .matches(&Version::parse("4.77.0").unwrap()));
        assert!(deps[3].req.is_none());
        assert!(deps[4]
            .req
            .as_ref()
            .unwrap()
            .matches(&Version::parse("1.5.0").unwrap()));
    }

    #[test]
    fn package_resolved_v2() {
        let deps = parse_package_resolved(
            r#"{
  "pins": [
    {"identity": "swift-nio", "state": {"revision": "abc", "version": "2.58.0"}},
    {"identity": "swift-log", "state": {"branch": "main", "version": "null"}}
  ],
  "version": 2
}"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "2.58.0");
        assert!(deps[1].req.is_none());
    }

    #[test]
    fn package_resolved_v1() {
        let deps = parse_package_resolved(
            r#"{"object": {"pins": [{"package": "SwiftyJSON", "state": {"version": "5.0.1"}}]}, "version": 1}"#,
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "SwiftyJSON");
    }

    #[test]
    fn podfile_pods() {
        let deps = parse_podfile(
            r#"
platform :ios, '13.0'
target 'App' do
  pod 'Firebase/Auth', '~> 10.0'
  pod 'SnapKit'
  pod 'Custom', :git => 'https://github.com/a/b'
end
"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "Firebase/Auth");
        assert_eq!(deps[0].name.subspec(), Some("Auth"));
        assert_eq!(deps[0].req_text, "~> 10.0");
        assert!(deps[1].req.is_none());
    }

    #[test]
    fn podfile_lock_pods_and_deps() {
        let text = r#"
PODS:
  - Firebase/Auth (10.12.0):
    - FirebaseAuth (~> 10.12.0)
  - FirebaseAuth (10.12.0)
  - GoogleUtilities (7.11.0)

DEPENDENCIES:
  - Firebase/Auth (~> 10.0)
  - SnapKit

COCOAPODS: 1.12.1
"#;
        let pods = parse_podfile_lock(text);
        assert_eq!(pods.len(), 3);
        assert_eq!(pods[0].name.raw(), "Firebase/Auth");
        assert_eq!(pods[0].pinned_version().unwrap().to_string(), "10.12.0");
        let deps = parse_podfile_lock_dependencies(text);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].req_text, "~> 10.0");
        assert_eq!(deps[1].name.raw(), "SnapKit");
    }

    #[test]
    fn malformed_empty() {
        assert!(parse_package_swift("no packages").is_empty());
        assert!(parse_package_resolved("{]").is_empty());
        assert!(parse_podfile_lock("PODS: broken").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        assert!(!parse_package_resolved("{]").diags.is_empty());
        assert_eq!(
            parse_podfile_lock("PODS: broken").diags[0].class,
            DiagClass::MissingField
        );
        let p = parse_package_swift(".package(url: \"https://x/y\", from: \"1.0.0\"");
        assert_eq!(p.diags[0].class, DiagClass::TruncatedInput);
        let p = parse_package_swift(".package(name: \"nourl\")");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
    }
}

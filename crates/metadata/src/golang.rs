//! Go metadata parsing: `go.mod`, `go.sum` and Go executables with
//! embedded build info.
//!
//! The executable support simulates `go version -m`-style buildinfo (see
//! DESIGN.md substitutions): our corpus embeds a marker section listing the
//! modules compiled into the binary, which mirrors what Trivy and Syft read
//! from real Go binaries (Table II "Go executable").

use sbomdiff_types::{
    diagnostic::excerpt, ConstraintFlavor, DeclaredDependency, DepScope, DiagClass, Diagnostic,
    Ecosystem, VersionReq,
};

use crate::Parsed;

/// Magic marker introducing the simulated Go buildinfo section.
pub const GO_BUILDINFO_MAGIC: &str = "\u{1}SBOMDIFF-GO-BUILDINFO\n";

/// Parses `go.mod`: module directive, single-line and block `require`
/// directives, `// indirect` markers, and `replace` directives (replaced
/// modules are reported under their replacement, as `go mod` resolves them).
pub fn parse_go_mod(text: &str) -> Parsed {
    let mut parsed = Parsed::default();
    let out = &mut parsed.deps;
    let mut in_require = false;
    let mut in_other_block = false;
    let mut replaces: Vec<(String, String, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        let comment = raw.split_once("//").map(|(_, c)| c.trim()).unwrap_or("");
        if line.is_empty() {
            continue;
        }
        if in_require || in_other_block {
            if line == ")" {
                in_require = false;
                in_other_block = false;
                continue;
            }
            if in_require {
                if let Some(dep) = require_line(line, comment) {
                    out.push(dep);
                } else {
                    parsed.diags.push(std::sync::Arc::new(
                        Diagnostic::new(
                            DiagClass::UnsupportedSyntax,
                            format!("unparsable require entry: {}", excerpt(line)),
                        )
                        .with_line(lineno as u32 + 1),
                    ));
                }
            }
            continue;
        }
        if line == "require (" || line.starts_with("require(") {
            in_require = true;
            continue;
        }
        if line.starts_with("exclude (")
            || line.starts_with("replace (")
            || line.starts_with("retract (")
        {
            in_other_block = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("require ") {
            if let Some(dep) = require_line(rest.trim(), comment) {
                out.push(dep);
            } else {
                parsed.diags.push(std::sync::Arc::new(
                    Diagnostic::new(
                        DiagClass::UnsupportedSyntax,
                        format!("unparsable require directive: {}", excerpt(line)),
                    )
                    .with_line(lineno as u32 + 1),
                ));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("replace ") {
            if let Some((from, to)) = rest.split_once("=>") {
                let from_mod = from.split_whitespace().next().unwrap_or("");
                let mut to_parts = to.split_whitespace();
                let to_mod = to_parts.next().unwrap_or("");
                let to_ver = to_parts.next().unwrap_or("");
                replaces.push((from_mod.to_string(), to_mod.to_string(), to_ver.to_string()));
            }
        }
    }
    // Apply replace directives.
    for (from, to, to_ver) in replaces {
        for dep in out.iter_mut() {
            if dep.name.raw() == from && !to.starts_with("./") && !to.starts_with("../") {
                let req = if to_ver.is_empty() {
                    dep.req.clone()
                } else {
                    VersionReq::parse(&to_ver, ConstraintFlavor::Go).ok()
                };
                let mut replacement = DeclaredDependency::new(Ecosystem::Go, to.clone(), req);
                replacement.scope = dep.scope;
                replacement.req_text = if to_ver.is_empty() {
                    dep.req_text.clone()
                } else {
                    to_ver.clone()
                };
                *dep = replacement;
            }
        }
    }
    parsed
}

fn require_line(line: &str, comment: &str) -> Option<DeclaredDependency> {
    let mut parts = line.split_whitespace();
    let module = parts.next()?;
    let version = parts.next()?;
    if !module.contains('.') && !module.contains('/') {
        return None;
    }
    let req = VersionReq::parse(version, ConstraintFlavor::Go).ok();
    let mut dep = DeclaredDependency::new(Ecosystem::Go, module, req);
    dep.req_text = version.to_string();
    if comment.contains("indirect") {
        // Indirect requires are transitively-needed modules; mark them
        // optional so profiles can distinguish direct declarations.
        dep = dep.with_scope(DepScope::Optional);
    }
    Some(dep)
}

/// Parses `go.sum`: `module version[/go.mod] hash` lines, deduplicating the
/// `/go.mod` entries. The result is the full transitive closure the module
/// has ever downloaded — a superset of what's compiled in.
pub fn parse_go_sum(text: &str) -> Parsed {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Parsed::default();
    for (lineno, raw) in text.lines().enumerate() {
        let mut parts = raw.split_whitespace();
        let (Some(module), Some(version)) = (parts.next(), parts.next()) else {
            if !raw.trim().is_empty() {
                out.push_diag(
                    Diagnostic::new(
                        DiagClass::MissingField,
                        format!("go.sum line without module/version: {}", excerpt(raw)),
                    )
                    .with_line(lineno as u32 + 1),
                );
            }
            continue;
        };
        let version = version.trim_end_matches("/go.mod");
        if !seen.insert((module.to_string(), version.to_string())) {
            continue;
        }
        let req = VersionReq::parse(version, ConstraintFlavor::Go).ok();
        let mut dep = DeclaredDependency::new(Ecosystem::Go, module, req);
        dep.req_text = version.to_string();
        out.deps.push(dep);
    }
    out
}

/// Scans binary content for the simulated buildinfo section and parses the
/// embedded module table (`dep <module> <version>` lines).
pub fn parse_go_binary(bytes: &[u8]) -> Parsed {
    let Some(start) = find_subslice(bytes, GO_BUILDINFO_MAGIC.as_bytes()) else {
        // A binary without buildinfo is normal, not malformed.
        return Parsed::default();
    };
    let section = &bytes[start + GO_BUILDINFO_MAGIC.len()..];
    let end = find_subslice(section, b"\x01END\n").unwrap_or(section.len());
    let Ok(table) = std::str::from_utf8(&section[..end]) else {
        return Parsed::fail(Diagnostic::new(
            DiagClass::EncodingError,
            "go buildinfo section is not valid UTF-8",
        ));
    };
    let mut out = Parsed::default();
    for line in table.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("dep") {
            continue;
        }
        let (Some(module), Some(version)) = (parts.next(), parts.next()) else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                format!(
                    "buildinfo dep line without module/version: {}",
                    excerpt(line)
                ),
            ));
            continue;
        };
        let req = VersionReq::parse(version, ConstraintFlavor::Go).ok();
        let mut dep = DeclaredDependency::new(Ecosystem::Go, module, req);
        dep.req_text = version.to_string();
        out.deps.push(dep);
    }
    out
}

/// Renders a simulated Go binary containing the given module table
/// (used by the corpus generator).
pub fn render_go_binary(modules: &[(&str, &str)]) -> Vec<u8> {
    let mut bytes = vec![0x7f, b'E', b'L', b'F', 2, 1, 1, 0];
    bytes.extend_from_slice(&[0u8; 24]);
    bytes.extend_from_slice(GO_BUILDINFO_MAGIC.as_bytes());
    for (module, version) in modules {
        bytes.extend_from_slice(format!("dep {module} {version}\n").as_bytes());
    }
    bytes.extend_from_slice(b"\x01END\n");
    bytes.extend_from_slice(&[0u8; 16]);
    bytes
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn go_mod_block_and_single() {
        let deps = parse_go_mod(
            r#"module github.com/example/app

go 1.21

require (
    github.com/stretchr/testify v1.8.4
    golang.org/x/sync v0.3.0 // indirect
)

require github.com/pkg/errors v0.9.1
"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "github.com/stretchr/testify");
        assert_eq!(deps[0].req_text, "v1.8.4");
        assert_eq!(deps[1].scope, DepScope::Optional); // indirect
        assert_eq!(deps[2].name.raw(), "github.com/pkg/errors");
    }

    #[test]
    fn go_mod_replace_rewrites() {
        let deps = parse_go_mod(
            "module m\nrequire example.com/old v1.0.0\nreplace example.com/old => example.com/new v2.0.0\n",
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "example.com/new");
        assert_eq!(deps[0].req_text, "v2.0.0");
    }

    #[test]
    fn go_mod_local_replace_kept() {
        let deps = parse_go_mod(
            "module m\nrequire example.com/x v1.0.0\nreplace example.com/x => ./local\n",
        );
        assert_eq!(deps[0].name.raw(), "example.com/x");
    }

    #[test]
    fn go_sum_dedupe() {
        let deps = parse_go_sum(
            "github.com/a/b v1.0.0 h1:abc=\ngithub.com/a/b v1.0.0/go.mod h1:def=\ngolang.org/x/text v0.9.0/go.mod h1:ghi=\n",
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "github.com/a/b");
        assert_eq!(deps[1].name.raw(), "golang.org/x/text");
    }

    #[test]
    fn binary_roundtrip() {
        let bin = render_go_binary(&[
            ("github.com/a/b", "v1.2.3"),
            ("golang.org/x/net", "v0.12.0"),
        ]);
        let deps = parse_go_binary(&bin);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "github.com/a/b");
        assert_eq!(deps[1].req_text, "v0.12.0");
    }

    #[test]
    fn binary_without_magic_empty() {
        assert!(parse_go_binary(b"\x7fELF plain binary").is_empty());
        assert!(parse_go_binary(b"").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_go_mod("module m\nrequire (\nbroken\n)\n");
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
        assert_eq!(p.diags[0].line, Some(3));
        let p = parse_go_sum("lonely-token\n");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let mut bin = GO_BUILDINFO_MAGIC.as_bytes().to_vec();
        bin.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            parse_go_binary(&bin).diags[0].class,
            DiagClass::EncodingError
        );
    }
}

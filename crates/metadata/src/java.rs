//! Java metadata parsing: `pom.xml` (with property interpolation, parent
//! versions and `dependencyManagement`), `gradle.lockfile`, `MANIFEST.MF`
//! and `pom.properties`.
//!
//! Java package names are compound (`group:artifact`) — §V-E shows the
//! studied tools render them in three different conventions; parsers here
//! always produce the structured `group:artifact` raw form and leave
//! rendering to the tool profiles.

use std::collections::HashMap;

use sbomdiff_types::{
    ConstraintFlavor, DeclaredDependency, DepScope, DiagClass, Diagnostic, Ecosystem, VersionReq,
};

use sbomdiff_textformats::{properties, xml, Element};

use crate::{format_error_diag, Parsed};

/// Parses `pom.xml` `<dependencies>` with `${property}` interpolation,
/// `<parent>` version fallback and `<dependencyManagement>` version lookup.
pub fn parse_pom_xml(text: &str) -> Parsed {
    let root = match xml::parse(text) {
        Ok(root) => root,
        Err(e) => return Parsed::fail(format_error_diag("pom.xml", &e)),
    };
    if root.name != "project" {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            format!("pom.xml: root element is <{}>, not <project>", root.name),
        ));
    }
    let props = collect_properties(&root);
    let managed = collect_managed_versions(&root, &props);

    let mut out = Parsed::default();
    if let Some(deps) = root.child("dependencies") {
        for dep in deps.children_named("dependency") {
            if let Some(d) = parse_dependency_element(dep, &props, &managed) {
                out.deps.push(d);
            } else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    "dependency element without groupId/artifactId",
                ));
            }
        }
    }
    out
}

fn collect_properties(root: &Element) -> HashMap<String, String> {
    let mut props = HashMap::new();
    if let Some(parent) = root.child("parent") {
        if let Some(v) = parent.child_text("version") {
            props.insert("project.parent.version".to_string(), v.to_string());
            props.insert("parent.version".to_string(), v.to_string());
        }
    }
    if let Some(v) = root
        .child_text("version")
        .or_else(|| root.child("parent").and_then(|p| p.child_text("version")))
    {
        props.insert("project.version".to_string(), v.to_string());
        props.insert("version".to_string(), v.to_string());
    }
    if let Some(p) = root.child("properties") {
        for child in &p.children {
            props.insert(child.name.clone(), child.text.clone());
        }
    }
    props
}

fn collect_managed_versions(
    root: &Element,
    props: &HashMap<String, String>,
) -> HashMap<(String, String), String> {
    let mut managed = HashMap::new();
    if let Some(dm) = root.child("dependencyManagement") {
        if let Some(deps) = dm.child("dependencies") {
            for dep in deps.children_named("dependency") {
                let (Some(g), Some(a)) = (dep.child_text("groupId"), dep.child_text("artifactId"))
                else {
                    continue;
                };
                if let Some(v) = dep.child_text("version") {
                    managed.insert(
                        (interpolate(g, props), interpolate(a, props)),
                        interpolate(v, props),
                    );
                }
            }
        }
    }
    managed
}

fn parse_dependency_element(
    dep: &Element,
    props: &HashMap<String, String>,
    managed: &HashMap<(String, String), String>,
) -> Option<DeclaredDependency> {
    let group = interpolate(dep.child_text("groupId")?, props);
    let artifact = interpolate(dep.child_text("artifactId")?, props);
    let version = dep
        .child_text("version")
        .map(|v| interpolate(v, props))
        .or_else(|| managed.get(&(group.clone(), artifact.clone())).cloned());
    let scope = match dep.child_text("scope") {
        Some("test") => DepScope::Dev,
        Some("provided") | Some("system") => DepScope::Optional,
        _ => DepScope::Runtime,
    };
    let name = format!("{group}:{artifact}");
    let req = version
        .as_deref()
        .and_then(|v| VersionReq::parse(v, ConstraintFlavor::Maven).ok());
    let mut d = DeclaredDependency::new(Ecosystem::Java, name, req).with_scope(scope);
    d.req_text = version.unwrap_or_default();
    Some(d)
}

/// Substitutes `${prop}` references (one level, as Maven effectively does
/// for simple poms).
fn interpolate(s: &str, props: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        match rest[start..].find('}') {
            Some(end_rel) => {
                let key = &rest[start + 2..start + end_rel];
                match props.get(key) {
                    Some(v) => out.push_str(v),
                    None => {
                        out.push_str(&rest[start..start + end_rel + 1]);
                    }
                }
                rest = &rest[start + end_rel + 1..];
            }
            None => {
                out.push_str(&rest[start..]);
                return out;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Parses `gradle.lockfile`: `group:artifact:version=configuration,...`
/// lines.
pub fn parse_gradle_lockfile(text: &str) -> Parsed {
    let mut out = Parsed::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("empty=") {
            continue;
        }
        let coord = line.split('=').next().unwrap_or(line);
        let mut parts = coord.split(':');
        let parsed = match (parts.next(), parts.next(), parts.next()) {
            (Some(group), Some(artifact), Some(version))
                if !group.is_empty() && !artifact.is_empty() && !version.is_empty() =>
            {
                Some((group, artifact, version))
            }
            _ => None,
        };
        let Some((group, artifact, version)) = parsed else {
            out.push_diag(
                Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!(
                        "gradle.lockfile line is not a group:artifact:version coordinate: {}",
                        sbomdiff_types::diagnostic::excerpt(line)
                    ),
                )
                .with_line(lineno as u32 + 1),
            );
            continue;
        };
        let req = sbomdiff_types::Version::parse(version)
            .ok()
            .map(VersionReq::exact);
        let mut dep = DeclaredDependency::new(Ecosystem::Java, format!("{group}:{artifact}"), req);
        dep.req_text = version.to_string();
        out.deps.push(dep);
    }
    out
}

/// Parses `MANIFEST.MF`, reporting the bundle (or implementation) itself as
/// a single component — the way Trivy/Syft treat JAR manifests.
pub fn parse_manifest_mf(text: &str) -> Parsed {
    let pairs = properties::parse_manifest(text);
    let name = properties::get_ignore_case(&pairs, "Bundle-SymbolicName")
        .map(|s| s.split(';').next().unwrap_or(s).trim().to_string())
        .or_else(|| {
            properties::get_ignore_case(&pairs, "Implementation-Title")
                .map(|s| s.trim().to_string())
        });
    let version = properties::get_ignore_case(&pairs, "Bundle-Version")
        .or_else(|| properties::get_ignore_case(&pairs, "Implementation-Version"));
    match name {
        Some(n) if !n.is_empty() => {
            let req = version
                .and_then(|v| sbomdiff_types::Version::parse(v).ok())
                .map(VersionReq::exact);
            let mut dep = DeclaredDependency::new(Ecosystem::Java, n, req);
            dep.req_text = version.unwrap_or_default().to_string();
            Parsed::ok(vec![dep])
        }
        _ => Parsed::fail(Diagnostic::new(
            DiagClass::MissingField,
            "MANIFEST.MF without Bundle-SymbolicName or Implementation-Title",
        )),
    }
}

/// Parses `pom.properties` (groupId/artifactId/version triple).
///
/// Broken `\uXXXX` escapes (lone surrogates, short hex runs) degrade to
/// U+FFFD in the parsed values and surface here as classified
/// `EncodingError` diagnostics rather than corrupting the component name.
pub fn parse_pom_properties(text: &str) -> Parsed {
    let parse = properties::parse_properties_full(text);
    let pairs = parse.pairs;
    let mut diags = Vec::new();
    for issue in &parse.issues {
        diags.push(Diagnostic::new(
            DiagClass::EncodingError,
            format!("pom.properties line {}: {}", issue.line, issue.message),
        ));
    }
    let (Some(g), Some(a)) = (
        properties::get(&pairs, "groupId"),
        properties::get(&pairs, "artifactId"),
    ) else {
        let mut out = Parsed::fail(Diagnostic::new(
            DiagClass::MissingField,
            "pom.properties without groupId/artifactId",
        ));
        for d in diags {
            out.push_diag(d);
        }
        return out;
    };
    let version = properties::get(&pairs, "version");
    let req = version
        .and_then(|v| sbomdiff_types::Version::parse(v).ok())
        .map(VersionReq::exact);
    let mut dep = DeclaredDependency::new(Ecosystem::Java, format!("{g}:{a}"), req);
    dep.req_text = version.unwrap_or_default().to_string();
    let mut out = Parsed::ok(vec![dep]);
    for d in diags {
        out.push_diag(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_with_properties_and_management() {
        let deps = parse_pom_xml(
            r#"<?xml version="1.0"?>
<project>
  <groupId>com.example</groupId>
  <artifactId>app</artifactId>
  <version>1.0.0</version>
  <properties>
    <guava.version>32.1.2</guava.version>
  </properties>
  <dependencyManagement>
    <dependencies>
      <dependency>
        <groupId>org.slf4j</groupId>
        <artifactId>slf4j-api</artifactId>
        <version>2.0.7</version>
      </dependency>
    </dependencies>
  </dependencyManagement>
  <dependencies>
    <dependency>
      <groupId>com.google.guava</groupId>
      <artifactId>guava</artifactId>
      <version>${guava.version}</version>
    </dependency>
    <dependency>
      <groupId>org.slf4j</groupId>
      <artifactId>slf4j-api</artifactId>
    </dependency>
    <dependency>
      <groupId>org.junit.jupiter</groupId>
      <artifactId>junit-jupiter</artifactId>
      <version>5.9.2</version>
      <scope>test</scope>
    </dependency>
  </dependencies>
</project>"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "com.google.guava:guava");
        assert_eq!(deps[0].req_text, "32.1.2");
        assert_eq!(deps[1].req_text, "2.0.7"); // from dependencyManagement
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn pom_parent_version_property() {
        let deps = parse_pom_xml(
            r#"<project>
  <parent><groupId>g</groupId><artifactId>p</artifactId><version>3.2.1</version></parent>
  <artifactId>child</artifactId>
  <dependencies>
    <dependency>
      <groupId>g</groupId>
      <artifactId>sibling</artifactId>
      <version>${project.version}</version>
    </dependency>
  </dependencies>
</project>"#,
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].req_text, "3.2.1");
    }

    #[test]
    fn pom_unresolved_property_kept_verbatim() {
        let deps = parse_pom_xml(
            "<project><dependencies><dependency><groupId>g</groupId><artifactId>a</artifactId><version>${missing}</version></dependency></dependencies></project>",
        );
        assert_eq!(deps[0].req_text, "${missing}");
        assert!(deps[0].req.is_none());
    }

    #[test]
    fn gradle_lockfile_lines() {
        let deps = parse_gradle_lockfile(
            "# This is a Gradle generated file\ncom.google.guava:guava:32.1.2=compileClasspath,runtimeClasspath\norg.slf4j:slf4j-api:2.0.7=runtimeClasspath\nempty=annotationProcessor\n",
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "com.google.guava:guava");
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "32.1.2");
    }

    #[test]
    fn manifest_bundle() {
        let deps = parse_manifest_mf(
            "Manifest-Version: 1.0\nBundle-SymbolicName: org.example.lib;singleton:=true\nBundle-Version: 4.5.6\n",
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "org.example.lib");
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "4.5.6");
    }

    #[test]
    fn pom_properties_triple() {
        let deps = parse_pom_properties(
            "groupId=org.apache.commons\nartifactId=commons-lang3\nversion=3.12.0\n",
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "org.apache.commons:commons-lang3");
    }

    #[test]
    fn malformed_inputs_empty() {
        assert!(parse_pom_xml("<not-a-project/>").is_empty());
        assert!(parse_pom_xml("garbage").is_empty());
        assert!(parse_manifest_mf("").is_empty());
        assert!(parse_pom_properties("flavor=vanilla").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_pom_xml("<not-a-project/>");
        assert_eq!(p.diags[0].class, DiagClass::MalformedFile);
        let p = parse_pom_xml(
            "<project><dependencies><dependency><version>1</version></dependency></dependencies></project>",
        );
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_gradle_lockfile("not a coordinate\n");
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
        assert_eq!(p.diags[0].line, Some(1));
        let p = parse_manifest_mf("Manifest-Version: 1.0\n");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_pom_properties("flavor=vanilla");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
    }

    #[test]
    fn pom_properties_lone_surrogate_degrades_with_encoding_diagnostic() {
        // A lone high surrogate in the artifactId becomes U+FFFD and the
        // component is still reported, alongside an EncodingError diagnostic.
        let p = parse_pom_properties(
            "groupId=org.example\nartifactId=lib\\ud83d\nversion=1.0.0\n",
        );
        assert_eq!(p.deps.len(), 1);
        assert_eq!(p.deps[0].name.raw(), "org.example:lib\u{FFFD}");
        assert_eq!(p.diags.len(), 1);
        assert_eq!(p.diags[0].class, DiagClass::EncodingError);
        assert!(p.diags[0].message.contains("line 2"), "{}", p.diags[0].message);
        // A valid surrogate pair decodes cleanly: no diagnostic.
        let p = parse_pom_properties(
            "groupId=org.example\nartifactId=lib\\ud83d\\ude00\nversion=1.0.0\n",
        );
        assert_eq!(p.deps[0].name.raw(), "org.example:lib\u{1F600}");
        assert!(p.diags.is_empty());
        // The diagnostic also survives the missing-field failure path.
        let p = parse_pom_properties("flavor=\\ude00\n");
        assert!(p.deps.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        assert_eq!(p.diags[1].class, DiagClass::EncodingError);
    }
}

//! An in-memory repository file tree.
//!
//! The corpus generator synthesizes repositories as [`RepoFs`] values and
//! the SBOM generators scan them, standing in for the paper's setup of
//! "downloading popular GitHub repositories onto the local file system and
//! subsequently scanning the repository directories" (§III-B).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::MetadataKind;

/// An in-memory repository: a name plus a sorted path → content map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepoFs {
    name: String,
    files: BTreeMap<String, Vec<u8>>,
}

impl RepoFs {
    /// Creates an empty repository.
    pub fn new(name: impl Into<String>) -> Self {
        RepoFs {
            name: name.into(),
            files: BTreeMap::new(),
        }
    }

    /// Reads a repository from a directory on disk (skipping `.git`,
    /// `node_modules`, `target`, `vendor` and anything over 4 MiB — the
    /// hygiene real scanners apply).
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered while walking the tree.
    pub fn from_dir(root: impl AsRef<Path>) -> io::Result<RepoFs> {
        const SKIP_DIRS: [&str; 6] = [
            ".git",
            "node_modules",
            "target",
            "vendor",
            ".venv",
            "__pycache__",
        ];
        const MAX_FILE: u64 = 4 * 1024 * 1024;
        let root = root.as_ref();
        let name = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "repo".to_string());
        let mut repo = RepoFs::new(name);
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                let file_name = entry.file_name().to_string_lossy().into_owned();
                let meta = entry.metadata()?;
                if meta.is_dir() {
                    if !SKIP_DIRS.contains(&file_name.as_str()) {
                        stack.push(path);
                    }
                    continue;
                }
                if meta.len() > MAX_FILE {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace(std::path::MAIN_SEPARATOR, "/");
                // Metadata files matter to the generators; small .txt
                // files are kept too so `-r` include targets with arbitrary
                // names stay resolvable for the ground-truth dry run.
                let small_txt = rel.ends_with(".txt") && meta.len() <= 64 * 1024;
                if MetadataKind::detect(&rel).is_some() || small_txt {
                    repo.add_bytes(rel, std::fs::read(&path)?);
                }
            }
        }
        Ok(repo)
    }

    /// The repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a UTF-8 text file.
    pub fn add_text(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.files.insert(path.into(), content.into().into_bytes());
    }

    /// Adds (or replaces) a binary file.
    pub fn add_bytes(&mut self, path: impl Into<String>, content: Vec<u8>) {
        self.files.insert(path.into(), content);
    }

    /// Removes a file; returns its content if present.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        self.files.remove(path)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the repository has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// All paths in sorted order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Raw bytes of a file.
    pub fn bytes(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// UTF-8 content of a file (None when missing or not UTF-8).
    pub fn text(&self, path: &str) -> Option<&str> {
        self.files
            .get(path)
            .and_then(|b| std::str::from_utf8(b).ok())
    }

    /// All recognized metadata files with their kinds, in path order.
    pub fn metadata_files(&self) -> Vec<(&str, MetadataKind)> {
        self.files
            .keys()
            .filter_map(|p| MetadataKind::detect(p).map(|k| (p.as_str(), k)))
            .collect()
    }

    /// Text files as a path → content map (used by the ground-truth dry run
    /// to follow `-r` includes).
    pub fn text_files(&self) -> BTreeMap<String, String> {
        self.files
            .iter()
            .filter_map(|(p, b)| {
                std::str::from_utf8(b)
                    .ok()
                    .map(|s| (p.clone(), s.to_string()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut repo = RepoFs::new("demo");
        repo.add_text("requirements.txt", "numpy==1.19.2\n");
        repo.add_text("sub/Cargo.lock", "version = 3\n");
        repo.add_bytes("bin/app.gobin", vec![0x7f, b'E']);
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.text("requirements.txt"), Some("numpy==1.19.2\n"));
        assert!(repo.text("bin/app.gobin").is_some()); // valid utf-8 here
        assert!(repo.bytes("missing").is_none());
    }

    #[test]
    fn metadata_detection() {
        let mut repo = RepoFs::new("demo");
        repo.add_text("requirements.txt", "");
        repo.add_text("src/main.py", "");
        repo.add_text("sub/Cargo.lock", "");
        let found = repo.metadata_files();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].1, MetadataKind::RequirementsTxt);
        assert_eq!(found[1].1, MetadataKind::CargoLock);
    }

    #[test]
    fn text_files_skips_binary() {
        let mut repo = RepoFs::new("demo");
        repo.add_text("a.txt", "hello");
        repo.add_bytes("b.bin", vec![0xff, 0xfe, 0x00]);
        let texts = repo.text_files();
        assert_eq!(texts.len(), 1);
        assert!(texts.contains_key("a.txt"));
    }

    #[test]
    fn from_dir_reads_metadata_files() {
        let dir = std::env::temp_dir().join(format!("sbomdiff-repofs-{}", std::process::id()));
        let sub = dir.join("svc");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::create_dir_all(dir.join(".git")).unwrap();
        std::fs::write(dir.join("requirements.txt"), "numpy==1.19.2\n").unwrap();
        std::fs::write(sub.join("Cargo.lock"), "version = 3\n").unwrap();
        std::fs::write(dir.join("README.md"), "not metadata").unwrap();
        std::fs::write(dir.join(".git").join("Gemfile"), "gem 'hidden'\n").unwrap();
        let repo = RepoFs::from_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(repo.len(), 2, "{:?}", repo.paths().collect::<Vec<_>>());
        assert!(repo.text("requirements.txt").is_some());
        assert!(repo.text("svc/Cargo.lock").is_some());
    }

    #[test]
    fn remove_file() {
        let mut repo = RepoFs::new("demo");
        repo.add_text("x", "1");
        assert!(repo.remove("x").is_some());
        assert!(repo.is_empty());
    }
}

//! Rust metadata parsing: `Cargo.toml`, `Cargo.lock` and Rust executables
//! with embedded dependency audit data (simulating `cargo auditable`, see
//! DESIGN.md substitutions).

use sbomdiff_types::{
    ConstraintFlavor, DeclaredDependency, DepScope, DependencySource, DiagClass, Diagnostic,
    Ecosystem, VcsKind, VersionReq,
};

use sbomdiff_textformats::{json, toml, Value};

use crate::{format_error_diag, Parsed};

/// Magic marker introducing the simulated audit section in Rust binaries.
pub const RUST_AUDIT_MAGIC: &str = "\u{1}SBOMDIFF-RUST-AUDIT\n";

/// Parses `Cargo.toml` dependency tables: `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]` and
/// `[target.'cfg'.dependencies]`.
pub fn parse_cargo_toml(text: &str) -> Parsed {
    let doc = match toml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Cargo.toml", &e)),
    };
    let mut out = Parsed::default();
    collect_dep_table(doc.get("dependencies"), DepScope::Runtime, &mut out);
    collect_dep_table(doc.get("dev-dependencies"), DepScope::Dev, &mut out);
    collect_dep_table(doc.get("build-dependencies"), DepScope::Dev, &mut out);
    if let Some(targets) = doc.get("target").and_then(Value::as_object) {
        for (_, tbl) in targets {
            collect_dep_table(tbl.get("dependencies"), DepScope::Runtime, &mut out);
            collect_dep_table(tbl.get("dev-dependencies"), DepScope::Dev, &mut out);
        }
    }
    out
}

fn collect_dep_table(table: Option<&Value>, scope: DepScope, out: &mut Parsed) {
    let Some(entries) = table.and_then(Value::as_object) else {
        return;
    };
    for (name, spec) in entries {
        let mut dep_name = name.clone();
        let mut req_text = String::new();
        let mut source = DependencySource::Registry;
        let mut optional = false;
        match spec {
            Value::Str(s) => req_text = s.clone(),
            Value::Object(_) => {
                if let Some(v) = spec.get("version").and_then(Value::as_str) {
                    req_text = v.to_string();
                }
                if let Some(p) = spec.get("package").and_then(Value::as_str) {
                    dep_name = p.to_string();
                }
                if let Some(path) = spec.get("path").and_then(Value::as_str) {
                    source = DependencySource::Path(path.to_string());
                }
                if let Some(git) = spec.get("git").and_then(Value::as_str) {
                    source = DependencySource::Vcs {
                        kind: VcsKind::Git,
                        url: git.to_string(),
                        reference: spec
                            .get("rev")
                            .or_else(|| spec.get("tag"))
                            .or_else(|| spec.get("branch"))
                            .and_then(Value::as_str)
                            .map(String::from),
                    };
                }
                if spec.get("workspace").and_then(Value::as_bool) == Some(true) {
                    // workspace deps inherit elsewhere; keep without version
                }
                optional = spec.get("optional").and_then(Value::as_bool) == Some(true);
            }
            _ => {
                out.push_diag(Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!("dependency spec for {name} is neither a string nor a table"),
                ));
                continue;
            }
        }
        let req = if req_text.is_empty() {
            None
        } else {
            VersionReq::parse(&req_text, ConstraintFlavor::Cargo).ok()
        };
        let scope = if optional { DepScope::Optional } else { scope };
        if req.is_none() && !req_text.is_empty() {
            out.push_diag(Diagnostic::new(
                DiagClass::InvalidVersion,
                format!("unparsable cargo requirement for {dep_name}: {req_text}"),
            ));
        }
        let mut dep = DeclaredDependency::new(Ecosystem::Rust, dep_name, req)
            .with_scope(scope)
            .with_source(source);
        dep.req_text = req_text;
        out.deps.push(dep);
    }
}

/// Parses `Cargo.lock` `[[package]]` entries (all pinned, transitive-
/// inclusive; the workspace's own crates are included, as real tools report
/// them).
pub fn parse_cargo_lock(text: &str) -> Parsed {
    let doc = match toml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Cargo.lock", &e)),
    };
    let mut out = Parsed::default();
    if let Some(packages) = doc.get("package").and_then(Value::as_array) {
        for pkg in packages {
            let (Some(name), Some(version)) = (
                pkg.get("name").and_then(Value::as_str),
                pkg.get("version").and_then(Value::as_str),
            ) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    "[[package]] entry without name/version",
                ));
                continue;
            };
            let req = sbomdiff_types::Version::parse(version)
                .ok()
                .map(VersionReq::exact);
            let mut dep = DeclaredDependency::new(Ecosystem::Rust, name, req);
            dep.req_text = version.to_string();
            out.deps.push(dep);
        }
    }
    out
}

/// Scans binary content for the simulated audit section (JSON array of
/// `{"name", "version"}` objects).
pub fn parse_rust_binary(bytes: &[u8]) -> Parsed {
    let Some(start) = find_subslice(bytes, RUST_AUDIT_MAGIC.as_bytes()) else {
        // A binary without an audit section is normal, not malformed.
        return Parsed::default();
    };
    let section = &bytes[start + RUST_AUDIT_MAGIC.len()..];
    let end = find_subslice(section, b"\x01END\n").unwrap_or(section.len());
    let Ok(payload) = std::str::from_utf8(&section[..end]) else {
        return Parsed::fail(Diagnostic::new(
            DiagClass::EncodingError,
            "rust audit section is not valid UTF-8",
        ));
    };
    let doc = match json::parse(payload.trim()) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("rust audit section", &e)),
    };
    let mut out = Parsed::default();
    if let Some(items) = doc.as_array() {
        for item in items {
            let (Some(name), Some(version)) = (
                item.get("name").and_then(Value::as_str),
                item.get("version").and_then(Value::as_str),
            ) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    "audit entry without name/version",
                ));
                continue;
            };
            let req = sbomdiff_types::Version::parse(version)
                .ok()
                .map(VersionReq::exact);
            let mut dep = DeclaredDependency::new(Ecosystem::Rust, name, req);
            dep.req_text = version.to_string();
            out.deps.push(dep);
        }
    } else {
        out.push_diag(Diagnostic::new(
            DiagClass::MalformedFile,
            "rust audit section is not a JSON array",
        ));
    }
    out
}

/// Renders a simulated Rust binary with embedded audit data (used by the
/// corpus generator).
pub fn render_rust_binary(crates: &[(&str, &str)]) -> Vec<u8> {
    let mut bytes = vec![0x7f, b'E', b'L', b'F', 2, 1, 1, 0];
    bytes.extend_from_slice(&[0u8; 24]);
    bytes.extend_from_slice(RUST_AUDIT_MAGIC.as_bytes());
    let items: Vec<String> = crates
        .iter()
        .map(|(n, v)| format!("{{\"name\":\"{n}\",\"version\":\"{v}\"}}"))
        .collect();
    bytes.extend_from_slice(format!("[{}]", items.join(",")).as_bytes());
    bytes.extend_from_slice(b"\x01END\n");
    bytes.extend_from_slice(&[0u8; 16]);
    bytes
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_toml_tables() {
        let deps = parse_cargo_toml(
            r#"
[package]
name = "demo"
version = "0.1.0"

[dependencies]
serde = { version = "1.0", features = ["derive"] }
rand = "0.8"
mylib = { path = "../mylib" }
gitdep = { git = "https://github.com/a/b", rev = "abc" }
renamed = { package = "actual-name", version = "2" }
maybe = { version = "0.3", optional = true }

[dev-dependencies]
proptest = "1"

[build-dependencies]
cc = "1.0"

[target.'cfg(windows)'.dependencies]
winapi = "0.3"
"#,
        );
        assert_eq!(deps.len(), 9);
        assert_eq!(deps[0].name.raw(), "serde");
        assert_eq!(deps[0].req_text, "1.0");
        assert!(matches!(deps[2].source, DependencySource::Path(_)));
        assert!(matches!(deps[3].source, DependencySource::Vcs { .. }));
        assert_eq!(deps[4].name.raw(), "actual-name");
        assert_eq!(deps[5].scope, DepScope::Optional);
        assert_eq!(deps[6].scope, DepScope::Dev);
        assert_eq!(deps[7].scope, DepScope::Dev);
        assert_eq!(deps[8].name.raw(), "winapi");
    }

    #[test]
    fn cargo_toml_unpinned_is_range() {
        let deps = parse_cargo_toml("[dependencies]\nserde = \"1.0\"\n");
        assert!(deps[0].pinned_version().is_none());
        assert!(deps[0].req.is_some());
    }

    #[test]
    fn cargo_lock_packages() {
        let deps = parse_cargo_lock(
            r#"
version = 3

[[package]]
name = "autocfg"
version = "1.1.0"

[[package]]
name = "serde"
version = "1.0.188"
dependencies = [
 "serde_derive",
]
"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[1].name.raw(), "serde");
        assert_eq!(deps[1].pinned_version().unwrap().to_string(), "1.0.188");
    }

    #[test]
    fn rust_binary_roundtrip() {
        let bin = render_rust_binary(&[("serde", "1.0.188"), ("rand", "0.8.5")]);
        let deps = parse_rust_binary(&bin);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "serde");
        assert_eq!(deps[1].pinned_version().unwrap().to_string(), "0.8.5");
    }

    #[test]
    fn plain_binary_empty() {
        assert!(parse_rust_binary(b"\x7fELFnothing here").is_empty());
    }

    #[test]
    fn malformed_empty() {
        assert!(parse_cargo_toml("[[broken").is_empty());
        assert!(parse_cargo_lock("nope = [").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_cargo_toml("[[broken");
        assert_eq!(p.diags[0].class, DiagClass::TruncatedInput);
        let p = parse_cargo_lock("[[package]]\nname = \"a\"\n");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let mut bin = Vec::new();
        bin.extend_from_slice(RUST_AUDIT_MAGIC.as_bytes());
        bin.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            parse_rust_binary(&bin).diags[0].class,
            DiagClass::EncodingError
        );
        bin.truncate(RUST_AUDIT_MAGIC.len());
        bin.extend_from_slice(b"[{\"name\":");
        assert!(!parse_rust_binary(&bin).diags.is_empty());
    }
}

//! .NET/NuGet metadata parsing: `*.csproj` `PackageReference` items,
//! `packages.config` and `packages.lock.json`.

use sbomdiff_types::{
    ConstraintFlavor, DeclaredDependency, DepScope, DiagClass, Diagnostic, Ecosystem, VersionReq,
};

use sbomdiff_textformats::{json, xml, Value};

use crate::{format_error_diag, Parsed};

/// Parses SDK-style `*.csproj` `<PackageReference Include=... Version=...>`
/// items (both attribute and child-element version spellings).
pub fn parse_csproj(text: &str) -> Parsed {
    let root = match xml::parse(text) {
        Ok(root) => root,
        Err(e) => return Parsed::fail(format_error_diag("csproj", &e)),
    };
    let mut out = Parsed::default();
    collect_package_refs(&root, &mut out);
    out
}

fn collect_package_refs(el: &xml::Element, out: &mut Parsed) {
    for child in &el.children {
        if child.name == "PackageReference" {
            let Some(name) = child.attr("Include").or_else(|| child.attr("Update")) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    "PackageReference without Include/Update attribute",
                ));
                continue;
            };
            let version = child
                .attr("Version")
                .map(str::to_string)
                .or_else(|| child.child_text("Version").map(str::to_string));
            let dev = child
                .attr("PrivateAssets")
                .map(|v| v.eq_ignore_ascii_case("all"))
                .unwrap_or(false)
                || child
                    .child_text("PrivateAssets")
                    .map(|v| v.eq_ignore_ascii_case("all"))
                    .unwrap_or(false);
            let req = version
                .as_deref()
                .and_then(|v| VersionReq::parse(v, ConstraintFlavor::Maven).ok());
            let scope = if dev {
                DepScope::Dev
            } else {
                DepScope::Runtime
            };
            let mut dep = DeclaredDependency::new(Ecosystem::DotNet, name, req).with_scope(scope);
            dep.req_text = version.unwrap_or_default();
            out.deps.push(dep);
        } else {
            collect_package_refs(child, out);
        }
    }
}

/// Parses legacy `packages.config` `<package id=... version=... />` entries.
pub fn parse_packages_config(text: &str) -> Parsed {
    let root = match xml::parse(text) {
        Ok(root) => root,
        Err(e) => return Parsed::fail(format_error_diag("packages.config", &e)),
    };
    if root.name != "packages" {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            format!(
                "packages.config: root element is <{}>, not <packages>",
                root.name
            ),
        ));
    }
    let mut out = Parsed::default();
    for pkg in root.children_named("package") {
        let Some(id) = pkg.attr("id") else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                "package entry without an id attribute",
            ));
            continue;
        };
        let version = pkg.attr("version");
        let dev = pkg
            .attr("developmentDependency")
            .map(|v| v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let req = version
            .and_then(|v| sbomdiff_types::Version::parse(v).ok())
            .map(VersionReq::exact);
        let scope = if dev {
            DepScope::Dev
        } else {
            DepScope::Runtime
        };
        let mut dep = DeclaredDependency::new(Ecosystem::DotNet, id, req).with_scope(scope);
        dep.req_text = version.unwrap_or_default().to_string();
        out.deps.push(dep);
    }
    out
}

/// Parses `packages.lock.json`: per-framework resolved entries with
/// `Direct` / `Transitive` types.
pub fn parse_packages_lock_json(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("packages.lock.json", &e)),
    };
    let Some(frameworks) = doc.get("dependencies").and_then(Value::as_object) else {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MissingField,
            "packages.lock.json: no dependencies object",
        ));
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Parsed::default();
    for (_framework, entries) in frameworks {
        let Some(entries) = entries.as_object() else {
            out.push_diag(Diagnostic::new(
                DiagClass::MalformedFile,
                "framework entry is not an object",
            ));
            continue;
        };
        for (name, info) in entries {
            let Some(resolved) = info.get("resolved").and_then(Value::as_str) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    format!("lock entry {name} without a resolved version"),
                ));
                continue;
            };
            if !seen.insert((name.clone(), resolved.to_string())) {
                continue;
            }
            let req = sbomdiff_types::Version::parse(resolved)
                .ok()
                .map(VersionReq::exact);
            let mut dep = DeclaredDependency::new(Ecosystem::DotNet, name.clone(), req);
            dep.req_text = resolved.to_string();
            out.deps.push(dep);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csproj_package_references() {
        let deps = parse_csproj(
            r#"<Project Sdk="Microsoft.NET.Sdk">
  <PropertyGroup>
    <TargetFramework>net7.0</TargetFramework>
  </PropertyGroup>
  <ItemGroup>
    <PackageReference Include="Newtonsoft.Json" Version="13.0.3" />
    <PackageReference Include="Serilog">
      <Version>3.0.1</Version>
    </PackageReference>
    <PackageReference Include="StyleCop.Analyzers" Version="1.1.118" PrivateAssets="all" />
    <PackageReference Include="Unversioned" />
  </ItemGroup>
</Project>"#,
        );
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0].name.raw(), "Newtonsoft.Json");
        assert_eq!(deps[0].req_text, "13.0.3");
        assert_eq!(deps[1].req_text, "3.0.1");
        assert_eq!(deps[2].scope, DepScope::Dev);
        assert!(deps[3].req.is_none());
    }

    #[test]
    fn csproj_range_version() {
        let deps = parse_csproj(
            r#"<Project><ItemGroup><PackageReference Include="A" Version="[1.0,2.0)" /></ItemGroup></Project>"#,
        );
        assert_eq!(deps.len(), 1);
        assert!(deps[0].pinned_version().is_none());
        assert!(deps[0].req.is_some());
    }

    #[test]
    fn packages_config_entries() {
        let deps = parse_packages_config(
            r#"<?xml version="1.0" encoding="utf-8"?>
<packages>
  <package id="Newtonsoft.Json" version="12.0.3" targetFramework="net48" />
  <package id="NUnit" version="3.13.3" developmentDependency="true" />
</packages>"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "12.0.3");
        assert_eq!(deps[1].scope, DepScope::Dev);
    }

    #[test]
    fn packages_lock_json_entries() {
        let deps = parse_packages_lock_json(
            r#"{
  "version": 1,
  "dependencies": {
    "net7.0": {
      "Newtonsoft.Json": {"type": "Direct", "requested": "[13.0.3, )", "resolved": "13.0.3"},
      "System.Memory": {"type": "Transitive", "resolved": "4.5.5"}
    },
    "net48": {
      "Newtonsoft.Json": {"type": "Direct", "resolved": "13.0.3"}
    }
  }
}"#,
        );
        assert_eq!(deps.len(), 2); // cross-framework duplicate removed
        assert_eq!(deps[0].name.raw(), "Newtonsoft.Json");
        assert_eq!(deps[1].name.raw(), "System.Memory");
    }

    #[test]
    fn malformed_empty() {
        assert!(parse_csproj("<broken").is_empty());
        assert!(parse_packages_config("<project/>").is_empty());
        assert!(parse_packages_lock_json("{}").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_csproj("<broken");
        assert!(!p.diags.is_empty());
        let p = parse_packages_config("<project/>");
        assert_eq!(p.diags[0].class, DiagClass::MalformedFile);
        let p = parse_packages_lock_json("{}");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_packages_lock_json(r#"{"dependencies": {"net7.0": {"A": {}}}}"#);
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
    }
}

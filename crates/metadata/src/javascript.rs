//! JavaScript/npm metadata parsing: `package.json`, `package-lock.json`
//! (v1–v3), `yarn.lock` (v1) and `pnpm-lock.yaml` (v5/v6 key styles).

use sbomdiff_types::{
    ConstraintFlavor, DeclaredDependency, DepScope, DiagClass, Diagnostic, Ecosystem, VersionReq,
};

use sbomdiff_textformats::{json, yaml, Value};

use crate::{format_error_diag, Parsed};

/// Parses `package.json` dependency sections.
///
/// §V-F: 76% of `package.json` dependencies are dev dependencies; scope is
/// recorded so generators can include or exclude them per policy.
pub fn parse_package_json(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("package.json", &e)),
    };
    if doc.as_object().is_none() {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            "package.json: document root is not an object",
        ));
    }
    let mut out = Vec::new();
    for (section, scope) in [
        ("dependencies", DepScope::Runtime),
        ("devDependencies", DepScope::Dev),
        ("optionalDependencies", DepScope::Optional),
        ("peerDependencies", DepScope::Optional),
    ] {
        if let Some(entries) = doc.get(section).and_then(Value::as_object) {
            for (name, spec) in entries {
                let spec_text = spec.as_str().unwrap_or_default().to_string();
                let req = VersionReq::parse(&spec_text, ConstraintFlavor::Npm).ok();
                let mut dep = DeclaredDependency::new(Ecosystem::JavaScript, name.clone(), req)
                    .with_scope(scope);
                dep.req_text = spec_text;
                out.push(dep);
            }
        }
    }
    Parsed::ok(out)
}

/// Parses `package-lock.json`, handling both the v1 recursive
/// `dependencies` layout and the v2/v3 flat `packages` layout.
pub fn parse_package_lock(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("package-lock.json", &e)),
    };
    if doc.as_object().is_none() {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            "package-lock.json: document root is not an object",
        ));
    }
    let mut out = Parsed::default();
    if let Some(packages) = doc.get("packages").and_then(Value::as_object) {
        // v2/v3: keys like "node_modules/@scope/name".
        for (path, info) in packages {
            if path.is_empty() {
                continue; // the root project itself
            }
            let name = match path.rfind("node_modules/") {
                Some(i) => &path[i + "node_modules/".len()..],
                None => path.as_str(),
            };
            let Some(version) = info.get("version").and_then(Value::as_str) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    format!("lock entry {name} without a version"),
                ));
                continue;
            };
            let dev = info.get("dev").and_then(Value::as_bool).unwrap_or(false);
            out.deps.push(lock_entry(name, version, dev));
        }
    } else if let Some(deps) = doc.get("dependencies").and_then(Value::as_object) {
        collect_v1(deps, &mut out);
    }
    out
}

fn collect_v1(deps: &[(String, Value)], out: &mut Parsed) {
    for (name, info) in deps {
        if let Some(version) = info.get("version").and_then(Value::as_str) {
            let dev = info.get("dev").and_then(Value::as_bool).unwrap_or(false);
            out.deps.push(lock_entry(name, version, dev));
        } else {
            out.push_diag(Diagnostic::new(
                DiagClass::MissingField,
                format!("lock entry {name} without a version"),
            ));
        }
        if let Some(nested) = info.get("dependencies").and_then(Value::as_object) {
            collect_v1(nested, out);
        }
    }
}

fn lock_entry(name: &str, version: &str, dev: bool) -> DeclaredDependency {
    let req = VersionReq::parse(version, ConstraintFlavor::Npm)
        .ok()
        .and_then(|r| r.pinned().cloned().map(VersionReq::exact));
    let req = req.or_else(|| {
        sbomdiff_types::Version::parse(version)
            .ok()
            .map(VersionReq::exact)
    });
    let mut dep = DeclaredDependency::new(Ecosystem::JavaScript, name, req);
    dep.req_text = version.to_string();
    if dev {
        dep = dep.with_scope(DepScope::Dev);
    }
    dep
}

/// Parses `yarn.lock` v1 (the custom indented format).
///
/// ```text
/// "@babel/core@^7.0.0", "@babel/core@^7.1.0":
///   version "7.22.9"
/// ```
pub fn parse_yarn_lock(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut current_names: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if !line.starts_with(' ') && line.ends_with(':') {
            // Header line: comma-separated "name@range" descriptors.
            current_names.clear();
            let header = &line[..line.len() - 1];
            for part in header.split(',') {
                let desc = part.trim().trim_matches('"');
                if let Some(name) = descriptor_name(desc) {
                    if !current_names.contains(&name) {
                        current_names.push(name);
                    }
                }
            }
            if current_names.is_empty() {
                out.push_diag(
                    Diagnostic::new(
                        DiagClass::UnsupportedSyntax,
                        format!(
                            "yarn.lock header with no parsable descriptors: {}",
                            sbomdiff_types::diagnostic::excerpt(header)
                        ),
                    )
                    .with_line(lineno as u32 + 1),
                );
            }
        } else if let Some(vline) = line.trim_start().strip_prefix("version") {
            let version = vline.trim().trim_matches('"');
            if current_names.is_empty() {
                out.push_diag(
                    Diagnostic::new(
                        DiagClass::MissingField,
                        "yarn.lock version line without a preceding descriptor header",
                    )
                    .with_line(lineno as u32 + 1),
                );
            }
            for name in &current_names {
                let req = sbomdiff_types::Version::parse(version)
                    .ok()
                    .map(VersionReq::exact);
                let mut dep = DeclaredDependency::new(Ecosystem::JavaScript, name.clone(), req);
                dep.req_text = version.to_string();
                out.deps.push(dep);
            }
            current_names.clear();
        }
    }
    out
}

/// Extracts the package name from a `name@range` descriptor, handling
/// scoped `@scope/name@range`.
fn descriptor_name(desc: &str) -> Option<String> {
    if desc.is_empty() {
        return None;
    }
    let at = if let Some(rest) = desc.strip_prefix('@') {
        rest.find('@').map(|i| i + 1)
    } else {
        desc.find('@')
    };
    match at {
        Some(i) => Some(desc[..i].to_string()),
        None => Some(desc.to_string()),
    }
}

/// Parses `pnpm-lock.yaml`. Handles both the v5 path style
/// (`/name/1.0.0:`) and the v6 style (`/name@1.0.0:`), plus scoped names.
pub fn parse_pnpm_lock(text: &str) -> Parsed {
    let doc = match yaml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("pnpm-lock.yaml", &e)),
    };
    let mut out = Parsed::default();
    if let Some(packages) = doc.get("packages").and_then(Value::as_object) {
        for (key, info) in packages {
            let Some((name, version)) = pnpm_key_parts(key) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!(
                        "unparsable pnpm package key: {}",
                        sbomdiff_types::diagnostic::excerpt(key)
                    ),
                ));
                continue;
            };
            let dev = info.get("dev").and_then(Value::as_bool).unwrap_or(false);
            out.deps.push(lock_entry(&name, &version, dev));
        }
    }
    out
}

fn pnpm_key_parts(key: &str) -> Option<(String, String)> {
    let key = key.strip_prefix('/')?;
    // Strip peer-dependency suffix in parens: /a@1.0.0(b@2.0.0)
    let key = key.split('(').next().unwrap_or(key);
    // v6: name@version (name may itself start with @scope/)
    if let Some(at) = key.rfind('@') {
        if at > 0 {
            let (name, version) = (&key[..at], &key[at + 1..]);
            if version.starts_with(|c: char| c.is_ascii_digit()) {
                return Some((name.to_string(), version.to_string()));
            }
        }
    }
    // v5: name/version
    if let Some(slash) = key.rfind('/') {
        let (name, version) = (&key[..slash], &key[slash + 1..]);
        if version.starts_with(|c: char| c.is_ascii_digit()) {
            return Some((name.to_string(), version.to_string()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_json_sections_and_scopes() {
        let deps = parse_package_json(
            r#"{
  "name": "demo",
  "dependencies": {"lodash": "^4.17.21", "@babel/core": "~7.22.0"},
  "devDependencies": {"jest": "^29.0.0"},
  "optionalDependencies": {"fsevents": "*"}
}"#,
        );
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0].name.raw(), "lodash");
        assert_eq!(deps[0].req_text, "^4.17.21");
        assert_eq!(deps[1].name.namespace(), Some("@babel"));
        assert_eq!(deps[2].scope, DepScope::Dev);
        assert_eq!(deps[3].scope, DepScope::Optional);
    }

    #[test]
    fn package_lock_v3() {
        let deps = parse_package_lock(
            r#"{
  "lockfileVersion": 3,
  "packages": {
    "": {"name": "root"},
    "node_modules/lodash": {"version": "4.17.21"},
    "node_modules/@babel/core": {"version": "7.22.9", "dev": true},
    "node_modules/a/node_modules/b": {"version": "1.0.0"}
  }
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "lodash");
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "4.17.21");
        assert_eq!(deps[1].scope, DepScope::Dev);
        assert_eq!(deps[2].name.raw(), "b");
    }

    #[test]
    fn package_lock_v1_recursive() {
        let deps = parse_package_lock(
            r#"{
  "lockfileVersion": 1,
  "dependencies": {
    "a": {"version": "1.0.0", "dependencies": {"b": {"version": "2.0.0", "dev": true}}}
  }
}"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[1].name.raw(), "b");
        assert_eq!(deps[1].scope, DepScope::Dev);
    }

    #[test]
    fn yarn_lock_groups() {
        let deps = parse_yarn_lock(
            r#"# yarn lockfile v1

"@babel/core@^7.0.0", "@babel/core@^7.1.0":
  version "7.22.9"
  dependencies:
    json5 "^2.2.2"

lodash@^4.17.20:
  version "4.17.21"
"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "@babel/core");
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "7.22.9");
        assert_eq!(deps[1].name.raw(), "lodash");
    }

    #[test]
    fn pnpm_lock_v6_and_v5_keys() {
        let deps = parse_pnpm_lock(
            r#"
lockfileVersion: '6.0'

packages:

  /lodash@4.17.21:
    resolution: {integrity: sha512-abc}
    dev: false

  /@babel/core@7.22.9:
    resolution: {integrity: sha512-def}
    dev: true

  /cliui/8.0.1:
    resolution: {integrity: sha512-ghi}
"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "lodash");
        assert_eq!(deps[1].name.raw(), "@babel/core");
        assert_eq!(deps[1].scope, DepScope::Dev);
        assert_eq!(deps[2].name.raw(), "cliui");
        assert_eq!(deps[2].pinned_version().unwrap().to_string(), "8.0.1");
    }

    #[test]
    fn pnpm_peer_suffix_stripped() {
        assert_eq!(
            pnpm_key_parts("/a@1.0.0(b@2.0.0)"),
            Some(("a".to_string(), "1.0.0".to_string()))
        );
    }

    #[test]
    fn malformed_inputs_empty() {
        assert!(parse_package_json("{oops").is_empty());
        assert!(parse_package_lock("[]").is_empty());
        assert!(parse_pnpm_lock(":::").is_empty());
        assert!(parse_yarn_lock("").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_package_json("{\"dependencies\": {\"a\":");
        assert_eq!(p.diags[0].class, DiagClass::TruncatedInput);
        let p = parse_package_lock("[]");
        assert_eq!(p.diags[0].class, DiagClass::MalformedFile);
        let p = parse_package_lock(
            r#"{"lockfileVersion": 3, "packages": {"node_modules/a": {"dev": true}}}"#,
        );
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_yarn_lock("  version \"1.0.0\"\n");
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        assert_eq!(p.diags[0].line, Some(1));
        let p = parse_pnpm_lock("packages:\n  not-a-key:\n    dev: false\n");
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
    }
}

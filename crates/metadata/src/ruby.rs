//! Ruby metadata parsing: `Gemfile` (bundler DSL subset), `Gemfile.lock`
//! and `*.gemspec`.

use sbomdiff_types::{
    diagnostic::excerpt, ConstraintFlavor, DeclaredDependency, DepScope, DependencySource,
    DiagClass, Diagnostic, Ecosystem, VcsKind, VersionReq,
};

use crate::Parsed;

/// Parses the bundler `Gemfile` DSL: `gem` declarations, `group` blocks,
/// inline `group:`/`git:`/`path:` options.
pub fn parse_gemfile(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut group_stack: Vec<DepScope> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_ruby_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("group") {
            let scope = if line.contains(":development") || line.contains(":test") {
                DepScope::Dev
            } else {
                DepScope::Runtime
            };
            if line.ends_with("do") {
                group_stack.push(scope);
            }
            continue;
        }
        if line == "end" {
            group_stack.pop();
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("gem ")
            .or_else(|| line.strip_prefix("gem("))
        {
            if let Some(dep) = parse_gem_call(rest, group_stack.last().copied()) {
                out.deps.push(dep);
            } else {
                out.push_diag(
                    Diagnostic::new(
                        DiagClass::UnsupportedSyntax,
                        format!("gem declaration without a quoted name: {}", excerpt(line)),
                    )
                    .with_line(lineno as u32 + 1),
                );
            }
        }
    }
    out
}

fn strip_ruby_comment(line: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_gem_call(args: &str, group_scope: Option<DepScope>) -> Option<DeclaredDependency> {
    let args = args.trim().trim_end_matches(')');
    let parts = split_ruby_args(args);
    let name = unquote(parts.first()?)?;
    let mut reqs = Vec::new();
    let mut scope = group_scope.unwrap_or(DepScope::Runtime);
    let mut source = DependencySource::Registry;
    for part in parts.iter().skip(1) {
        let part = part.trim();
        if let Some(q) = unquote(part) {
            reqs.push(q);
        } else if let Some(rest) = part
            .strip_prefix("group:")
            .or_else(|| part.strip_prefix(":group =>"))
        {
            if rest.contains("development") || rest.contains("test") {
                scope = DepScope::Dev;
            }
        } else if let Some(rest) = part.strip_prefix("git:") {
            source = DependencySource::Vcs {
                kind: VcsKind::Git,
                url: unquote(rest.trim()).unwrap_or_default(),
                reference: None,
            };
        } else if let Some(rest) = part.strip_prefix("path:") {
            source = DependencySource::Path(unquote(rest.trim()).unwrap_or_default());
        } else if part.starts_with("github:") {
            source = DependencySource::Vcs {
                kind: VcsKind::Git,
                url: format!(
                    "https://github.com/{}",
                    unquote(part.trim_start_matches("github:").trim()).unwrap_or_default()
                ),
                reference: None,
            };
        } else if part.contains("require:") || part.contains("platforms:") {
            // irrelevant options
        }
    }
    let req_text = reqs.join(", ");
    let req = if req_text.is_empty() {
        None
    } else {
        VersionReq::parse(&req_text, ConstraintFlavor::RubyGems).ok()
    };
    let mut dep = DeclaredDependency::new(Ecosystem::Ruby, name, req)
        .with_scope(scope)
        .with_source(source);
    dep.req_text = req_text;
    Some(dep)
}

fn split_ruby_args(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_single = false;
    let mut in_double = false;
    for c in s.chars() {
        match c {
            '\'' if !in_double => {
                in_single = !in_single;
                cur.push(c);
            }
            '"' if !in_single => {
                in_double = !in_double;
                cur.push(c);
            }
            ',' if !in_single && !in_double => {
                parts.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    parts.push(cur);
    parts.into_iter().map(|p| p.trim().to_string()).collect()
}

fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    if (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
        || (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
    {
        Some(s[1..s.len() - 1].to_string())
    } else {
        None
    }
}

/// Parses `Gemfile.lock`: the `GEM > specs:` section (all resolved gems,
/// including transitives) and `PATH`/`GIT` sections.
pub fn parse_gemfile_lock(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut in_specs = false;
    for (lineno, raw) in text.lines().enumerate() {
        let indent = raw.len() - raw.trim_start().len();
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if indent == 0 {
            in_specs = false;
            continue;
        }
        if line == "specs:" {
            in_specs = true;
            continue;
        }
        if !in_specs {
            continue;
        }
        // Resolved gems at indent 4: `name (1.2.3)`; their requirements at
        // indent 6 (skipped — they are ranges, not resolved entries).
        if indent == 4 {
            if let Some((name, version)) = name_paren_version(line) {
                let req = sbomdiff_types::Version::parse(&version)
                    .ok()
                    .map(VersionReq::exact);
                let mut dep = DeclaredDependency::new(Ecosystem::Ruby, name, req);
                dep.req_text = version;
                out.deps.push(dep);
            } else {
                out.push_diag(
                    Diagnostic::new(
                        DiagClass::MissingField,
                        format!("specs entry without a (version): {}", excerpt(line)),
                    )
                    .with_line(lineno as u32 + 1),
                );
            }
        }
    }
    out
}

/// Splits `name (1.2.3)` / `name (~> 1.2)` lines used by Gemfile.lock and
/// Podfile.lock.
pub(crate) fn name_paren_version(line: &str) -> Option<(String, String)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close <= open {
        return None;
    }
    let name = line[..open].trim().to_string();
    let version = line[open + 1..close].trim().to_string();
    if name.is_empty() || version.is_empty() {
        return None;
    }
    Some((name, version))
}

/// Parses `*.gemspec` dependency declarations:
/// `spec.add_dependency 'name', '~> 1.0'` and the development/runtime
/// variants.
pub fn parse_gemspec(text: &str) -> Parsed {
    let mut out = Parsed::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_ruby_comment(raw).trim();
        let (call, scope) = if let Some(i) = line.find("add_development_dependency") {
            (
                &line[i + "add_development_dependency".len()..],
                DepScope::Dev,
            )
        } else if let Some(i) = line.find("add_runtime_dependency") {
            (
                &line[i + "add_runtime_dependency".len()..],
                DepScope::Runtime,
            )
        } else if let Some(i) = line.find("add_dependency") {
            (&line[i + "add_dependency".len()..], DepScope::Runtime)
        } else {
            continue;
        };
        let call = call.trim().trim_start_matches('(').trim_end_matches(')');
        let parts = split_ruby_args(call);
        let Some(name) = parts.first().and_then(|p| unquote(p)) else {
            out.push_diag(
                Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!(
                        "gemspec dependency call without a quoted name: {}",
                        excerpt(line)
                    ),
                )
                .with_line(lineno as u32 + 1),
            );
            continue;
        };
        let reqs: Vec<String> = parts.iter().skip(1).filter_map(|p| unquote(p)).collect();
        let req_text = reqs.join(", ");
        let req = if req_text.is_empty() {
            None
        } else {
            VersionReq::parse(&req_text, ConstraintFlavor::RubyGems).ok()
        };
        let mut dep = DeclaredDependency::new(Ecosystem::Ruby, name, req).with_scope(scope);
        dep.req_text = req_text;
        out.deps.push(dep);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemfile_basics() {
        let deps = parse_gemfile(
            r#"
source 'https://rubygems.org'

gem 'rails', '~> 7.0.4'
gem 'pg', '>= 0.18', '< 2.0'
gem 'puma' # server
gem 'debug', group: :development
group :test do
  gem 'rspec-rails'
end
gem 'mylib', git: 'https://github.com/me/mylib'
"#,
        );
        assert_eq!(deps.len(), 6);
        assert_eq!(deps[0].name.raw(), "rails");
        assert_eq!(deps[0].req_text, "~> 7.0.4");
        assert_eq!(deps[1].req_text, ">= 0.18, < 2.0");
        assert!(deps[2].req.is_none());
        assert_eq!(deps[3].scope, DepScope::Dev);
        assert_eq!(deps[4].scope, DepScope::Dev);
        assert!(matches!(deps[5].source, DependencySource::Vcs { .. }));
    }

    #[test]
    fn gemfile_lock_specs() {
        let deps = parse_gemfile_lock(
            r#"GEM
  remote: https://rubygems.org/
  specs:
    actionpack (7.0.4)
      actionview (= 7.0.4)
      rack (~> 2.0, >= 2.2.0)
    actionview (7.0.4)
    rack (2.2.6)

PLATFORMS
  x86_64-linux

DEPENDENCIES
  rails (~> 7.0.4)

BUNDLED WITH
   2.3.26
"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "actionpack");
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "7.0.4");
        assert_eq!(deps[2].name.raw(), "rack");
    }

    #[test]
    fn gemspec_declarations() {
        let deps = parse_gemspec(
            r#"
Gem::Specification.new do |spec|
  spec.name = "mylib"
  spec.add_dependency 'activesupport', '~> 7.0'
  spec.add_runtime_dependency("thor", ">= 1.0", "< 2.0")
  spec.add_development_dependency 'rspec', '~> 3.12'
end
"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "activesupport");
        assert_eq!(deps[1].req_text, ">= 1.0, < 2.0");
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn comment_with_quote_chars() {
        let deps = parse_gemfile("gem 'a' # don't break\n");
        assert_eq!(deps.len(), 1);
    }

    #[test]
    fn empty_and_garbage_inputs() {
        assert!(parse_gemfile("").is_empty());
        assert!(parse_gemfile_lock("random text\n").is_empty());
        assert!(parse_gemspec("no deps here").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_gemfile("gem unquoted_name\n");
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
        assert_eq!(p.diags[0].line, Some(1));
        let p = parse_gemfile_lock("GEM\n  specs:\n    noversion\n");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        assert_eq!(p.diags[0].line, Some(3));
        let p = parse_gemspec("spec.add_dependency bare\n");
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
    }
}

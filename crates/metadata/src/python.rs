//! Python metadata parsing: `requirements.txt` (PEP 508/PEP 440),
//! `setup.py`, `poetry.lock` and `Pipfile.lock`.
//!
//! `requirements.txt` is the format at the center of the paper's accuracy
//! study (§V-H, Table III) and parser-confusion attack (§VI, Table IV), so
//! its parser is *dialect-parameterized*: [`ReqStyle::Pip`] is the faithful
//! reference (ground truth), while the other styles reproduce the documented
//! behaviors of each studied SBOM tool, including the exact Table IV
//! outcomes.

use sbomdiff_types::{
    diagnostic::excerpt, ConstraintFlavor, DeclaredDependency, DepScope, DependencySource,
    DiagClass, Diagnostic, Ecosystem, VcsKind, VersionReq,
};

use sbomdiff_textformats::{json, toml, Value};

use crate::{format_error_diag, Parsed};

/// Which tool's `requirements.txt` reading behavior to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqStyle {
    /// Reference pip semantics: full PEP 508 syntax, line continuations,
    /// `-r`/`-c` includes, URL/path/VCS sources, extras and markers.
    Pip,
    /// Trivy/Syft behavior (§V-B, §V-D): custom parser keyed on the `==`
    /// separator; every unpinned, exotic, or continuation-using declaration
    /// is silently dropped.
    TrivySyft,
    /// Microsoft sbom-tool behavior: anchored `name [op version]` lines
    /// only; trailing backslashes treated as stray whitespace (which is how
    /// `numpy \` + `==\` + `1.19.2` becomes bare `numpy` resolved to the
    /// registry's latest, Table IV); extras and environment markers ignored.
    SbomTool,
    /// GitHub Dependency Graph behavior: good raw-metadata syntax coverage,
    /// but version ranges are reported verbatim (§V-D), includes and
    /// URL/path/VCS installs are skipped, and continuations are unsupported.
    GithubDg,
}

/// Parses `requirements.txt` content in the given dialect.
///
/// The reference dialect emits [`DependencySource::IncludeFile`] /
/// [`DependencySource::ConstraintsFile`] entries for `-r`/`-c` lines so the
/// caller (the ground-truth resolver) can follow them; the tool dialects
/// skip them, as the tools do.
pub fn parse_requirements(text: &str, style: ReqStyle) -> Parsed {
    let parse_line: fn(&str) -> Option<DeclaredDependency> = match style {
        ReqStyle::Pip => return parse_requirements_pip(text),
        ReqStyle::TrivySyft => parse_line_trivy_syft,
        ReqStyle::SbomTool => parse_line_sbom_tool,
        ReqStyle::GithubDg => parse_line_github,
    };
    let mut out = Parsed::default();
    for (lineno, raw) in text.lines().enumerate() {
        match parse_line(raw) {
            Some(dep) => out.deps.push(dep),
            None => {
                if let Some(d) = dialect_drop_diag(raw, style) {
                    out.push_diag(d.with_line(lineno as u32 + 1));
                }
            }
        }
    }
    out
}

/// Classifies a requirements line a tool dialect silently discards. The
/// classes mirror the paper's drop taxonomy: §V-D's unpinned discards map
/// to [`DiagClass::UnpinnedDropped`], URL/path/VCS installs to
/// [`DiagClass::ExoticSource`], and syntax the emulated parser cannot
/// represent to [`DiagClass::UnsupportedSyntax`].
fn dialect_drop_diag(raw: &str, style: ReqStyle) -> Option<Diagnostic> {
    let line = strip_comment(raw).trim();
    if line.is_empty() {
        return None;
    }
    let tool = match style {
        ReqStyle::Pip => "pip",
        ReqStyle::TrivySyft => "trivy/syft",
        ReqStyle::SbomTool => "sbom-tool",
        ReqStyle::GithubDg => "github-dg",
    };
    let (class, why) = if line.starts_with('-') {
        (DiagClass::UnsupportedSyntax, "option line ignored")
    } else if line.ends_with('\\') {
        (
            DiagClass::UnsupportedSyntax,
            "line continuation not supported",
        )
    } else if looks_like_url_or_path(line) || split_at_url_separator(line).is_some() {
        (DiagClass::ExoticSource, "URL/path/VCS requirement skipped")
    } else if style == ReqStyle::TrivySyft && !line.contains("==") {
        (
            DiagClass::UnpinnedDropped,
            "requirement without a pinned == version dropped",
        )
    } else {
        (
            DiagClass::UnsupportedSyntax,
            "requirement line not recognized",
        )
    };
    Some(Diagnostic::new(
        class,
        format!("{tool}: {why}: {}", excerpt(line)),
    ))
}

fn strip_comment(line: &str) -> &str {
    // pip: '#' starts a comment at line start or preceded by whitespace.
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            return &line[..i];
        }
    }
    line
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(is_name_char)
        && s.starts_with(|c: char| c.is_ascii_alphanumeric())
}

/// Reference pip parsing with logical-line continuation handling.
fn parse_requirements_pip(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut logical = String::new();
    let mut logical_start = 0u32;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed_end = line.trim_end();
        if let Some(stripped) = trimmed_end.strip_suffix('\\') {
            if logical.is_empty() {
                logical_start = lineno as u32 + 1;
            }
            logical.push_str(stripped);
            continue;
        }
        let start = if logical.is_empty() {
            lineno as u32 + 1
        } else {
            logical_start
        };
        logical.push_str(line);
        let complete = std::mem::take(&mut logical);
        match parse_line_pip(&complete) {
            Some(dep) => out.deps.push(dep),
            None => {
                if let Some(d) = pip_drop_diag(&complete) {
                    out.push_diag(d.with_line(start));
                }
            }
        }
    }
    if !logical.is_empty() {
        match parse_line_pip(&logical) {
            Some(dep) => out.deps.push(dep),
            None => {
                if let Some(d) = pip_drop_diag(&logical) {
                    out.push_diag(d.with_line(logical_start));
                }
            }
        }
    }
    out
}

/// Classifies a logical line the *reference* pip parser could not turn into
/// a dependency. Option lines (index URLs, hashes) are understood and
/// intentionally dependency-free, so they carry no diagnostic.
fn pip_drop_diag(complete: &str) -> Option<Diagnostic> {
    let line = complete.trim();
    if line.is_empty() || line.starts_with('-') {
        return None;
    }
    let name_end = line
        .char_indices()
        .find(|(_, c)| !is_name_char(*c))
        .map(|(i, _)| i)
        .unwrap_or(line.len());
    let class = if valid_name(&line[..name_end]) {
        DiagClass::UnsupportedSyntax
    } else {
        DiagClass::InvalidName
    };
    Some(Diagnostic::new(
        class,
        format!("unparsable requirement line: {}", excerpt(line)),
    ))
}

fn parse_line_pip(line: &str) -> Option<DeclaredDependency> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    // Option lines.
    if let Some(rest) = option_value(line, &["-r", "--requirement"]) {
        return Some(
            DeclaredDependency::new(Ecosystem::Python, rest.clone(), None)
                .with_source(DependencySource::IncludeFile(rest)),
        );
    }
    if let Some(rest) = option_value(line, &["-c", "--constraint"]) {
        return Some(
            DeclaredDependency::new(Ecosystem::Python, rest.clone(), None)
                .with_source(DependencySource::ConstraintsFile(rest)),
        );
    }
    if let Some(rest) = option_value(line, &["-e", "--editable"]) {
        return parse_url_or_path(&rest);
    }
    if line.starts_with('-') {
        // Index options, hashes, etc. — no dependency.
        return None;
    }
    // Strip per-requirement --hash options.
    let line = match line.find(" --hash") {
        Some(i) => &line[..i],
        None => line,
    };
    // Direct URL / VCS / path installs.
    if looks_like_url_or_path(line) {
        return parse_url_or_path(line);
    }
    // PEP 508: name [extras] (@ url | specifier)? (; marker)?
    let (req_part, marker) = match line.split_once(';') {
        Some((r, m)) => (r.trim(), Some(m.trim().to_string())),
        None => (line, None),
    };
    // name @ url form
    if let Some((name_part, url_part)) = split_at_url_separator(req_part) {
        let (name, extras) = split_extras(&name_part)?;
        if !valid_name(&name) {
            return None;
        }
        let mut dep = parse_url_or_path(url_part.trim())?;
        dep.name = sbomdiff_types::PackageName::new(Ecosystem::Python, name);
        dep.extras = extras;
        if let Some(m) = marker {
            dep = dep.with_marker(m);
        }
        return Some(dep);
    }
    // Find where the name+extras end and the specifier begins.
    let spec_start = req_part
        .char_indices()
        .scan(0i32, |bracket_depth, (i, c)| {
            match c {
                '[' => *bracket_depth += 1,
                ']' => *bracket_depth -= 1,
                '(' | '<' | '>' | '=' | '!' | '~' if *bracket_depth == 0 => {
                    return Some(Some(i));
                }
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next();
    let (name_part, spec_part) = match spec_start {
        Some(i) => (req_part[..i].trim(), req_part[i..].trim()),
        None => (req_part.trim(), ""),
    };
    let (name, extras) = split_extras(name_part)?;
    if !valid_name(&name) {
        return None;
    }
    let spec_text = spec_part
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .trim()
        .to_string();
    let req = if spec_text.is_empty() {
        None
    } else {
        VersionReq::parse(&spec_text, ConstraintFlavor::Pep440).ok()
    };
    let mut dep = DeclaredDependency::new(Ecosystem::Python, name, req).with_extras(extras);
    dep.req_text = spec_text;
    if let Some(m) = marker {
        dep = dep.with_marker(m);
    }
    Some(dep)
}

fn option_value(line: &str, options: &[&str]) -> Option<String> {
    for opt in options {
        if let Some(rest) = line.strip_prefix(opt) {
            if rest.starts_with([' ', '\t', '=']) {
                return Some(rest.trim_start_matches(['=', ' ', '\t']).trim().to_string());
            }
        }
    }
    None
}

fn looks_like_url_or_path(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    lower.starts_with("http://")
        || lower.starts_with("https://")
        || lower.starts_with("ftp://")
        || lower.starts_with("file://")
        || lower.starts_with("git+")
        || lower.starts_with("hg+")
        || lower.starts_with("svn+")
        || lower.starts_with("./")
        || lower.starts_with("../")
        || lower.starts_with('/')
        || lower.ends_with(".whl")
        || lower.ends_with(".tar.gz")
        || lower.ends_with(".zip")
}

/// Splits `name @ url` — PEP 508 direct references.
fn split_at_url_separator(s: &str) -> Option<(String, &str)> {
    let idx = s.find('@')?;
    let (left, right) = (s[..idx].trim(), s[idx + 1..].trim());
    if left.is_empty() || right.is_empty() {
        return None;
    }
    // Only treat as a direct reference when the right side looks like a URL
    // or path (otherwise '@' may be part of something else).
    if looks_like_url_or_path(right) {
        Some((left.to_string(), &s[idx + 1..]))
    } else {
        None
    }
}

/// Splits `name[extra1,extra2]` (spaces tolerated, as pip allows).
fn split_extras(s: &str) -> Option<(String, Vec<String>)> {
    let s = s.trim();
    match s.find('[') {
        Some(i) => {
            let name = s[..i].trim().to_string();
            let rest = &s[i + 1..];
            let close = rest.find(']')?;
            if !rest[close + 1..].trim().is_empty() {
                return None;
            }
            let extras = rest[..close]
                .split(',')
                .map(|e| e.trim().to_string())
                .filter(|e| !e.is_empty())
                .collect();
            Some((name, extras))
        }
        None => Some((s.to_string(), Vec::new())),
    }
}

fn parse_url_or_path(s: &str) -> Option<DeclaredDependency> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let lower = s.to_ascii_lowercase();
    let source = if lower.starts_with("git+") {
        vcs_source(VcsKind::Git, s)
    } else if lower.starts_with("hg+") {
        vcs_source(VcsKind::Hg, s)
    } else if lower.starts_with("svn+") {
        vcs_source(VcsKind::Svn, s)
    } else if lower.starts_with("http") || lower.starts_with("ftp") || lower.starts_with("file") {
        DependencySource::Url(s.to_string())
    } else {
        DependencySource::Path(s.to_string())
    };
    // Derive a name from a wheel/sdist filename when possible:
    // name-1.2.3-py3-none-any.whl
    let file = s.rsplit('/').next().unwrap_or(s);
    let name = wheel_name(file).unwrap_or_else(|| derive_name_from_target(s));
    let version = wheel_version(file);
    let req = version.map(|v| {
        VersionReq::parse(&format!("=={v}"), ConstraintFlavor::Pep440)
            .unwrap_or_else(|_| VersionReq::any())
    });
    Some(DeclaredDependency::new(Ecosystem::Python, name, req).with_source(source))
}

fn vcs_source(kind: VcsKind, s: &str) -> DependencySource {
    let body = &s[s.find('+').map(|i| i + 1).unwrap_or(0)..];
    let (url, reference) = match body.rsplit_once('@') {
        Some((u, r)) if !r.contains('/') => (u.to_string(), Some(r.to_string())),
        _ => (body.to_string(), None),
    };
    DependencySource::Vcs {
        kind,
        url,
        reference,
    }
}

fn wheel_name(file: &str) -> Option<String> {
    let stem = file
        .strip_suffix(".whl")
        .or_else(|| file.strip_suffix(".tar.gz"))
        .or_else(|| file.strip_suffix(".zip"))?;
    let first = stem.split('-').next()?;
    if valid_name(first) {
        Some(first.to_string())
    } else {
        None
    }
}

fn wheel_version(file: &str) -> Option<String> {
    let stem = file
        .strip_suffix(".whl")
        .or_else(|| file.strip_suffix(".tar.gz"))
        .or_else(|| file.strip_suffix(".zip"))?;
    let second = stem.split('-').nth(1)?;
    if second.starts_with(|c: char| c.is_ascii_digit()) {
        Some(second.to_string())
    } else {
        None
    }
}

fn derive_name_from_target(s: &str) -> String {
    let tail = s
        .trim_end_matches('/')
        .rsplit('/')
        .next()
        .unwrap_or(s)
        .split('@')
        .next()
        .unwrap_or(s);
    let tail = tail.trim_end_matches(".git");
    if tail.is_empty() {
        s.to_string()
    } else {
        tail.to_string()
    }
}

/// Trivy/Syft: only `name==version` survives; everything else is silently
/// dropped (§V-D "silently discarding dependencies without pinned versions").
fn parse_line_trivy_syft(raw: &str) -> Option<DeclaredDependency> {
    let line = strip_comment(raw).trim();
    if line.is_empty() || line.starts_with('-') {
        return None;
    }
    // Markers are stripped (common syntax they do support).
    let line = line.split(';').next().unwrap_or(line).trim();
    let (name, version) = line.split_once("==")?;
    let name = name.trim();
    let version = version.trim();
    if !valid_name(name) || version.is_empty() || !version_token_ok(version) {
        return None;
    }
    let req = VersionReq::parse(&format!("=={version}"), ConstraintFlavor::Pep440).ok()?;
    Some(DeclaredDependency::new(Ecosystem::Python, name, Some(req)))
}

fn version_token_ok(v: &str) -> bool {
    !v.is_empty()
        && v.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '*' | '+' | '!' | '-'))
}

/// sbom-tool: anchored `name [op version]` lines. Trailing backslashes are
/// discarded as stray whitespace — the root of the Table IV `numpy` row: the
/// name survives alone, and the generator later pins the registry's latest.
/// Extras attached without a space are ignored; a space before `[` breaks the
/// anchor and drops the line. Environment markers are ignored entirely
/// (§V-H), i.e. the dependency is included unconditionally.
fn parse_line_sbom_tool(raw: &str) -> Option<DeclaredDependency> {
    let mut line = strip_comment(raw).trim();
    if line.is_empty() || line.starts_with('-') {
        return None;
    }
    // Markers dropped (the dependency itself is kept).
    line = line.split(';').next().unwrap_or(line).trim();
    // Trailing backslash treated as whitespace.
    let cleaned = line.trim_end_matches('\\').trim();
    if cleaned.is_empty() {
        return None;
    }
    // Anchored shape: NAME[extras]? (OP VERSION)? with nothing else.
    let mut rest = cleaned;
    let name_end = rest
        .char_indices()
        .find(|(_, c)| !is_name_char(*c))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if !valid_name(name) {
        return None;
    }
    rest = &rest[name_end..];
    // Directly attached extras are skipped (ignored, not fatal).
    if rest.starts_with('[') {
        let close = rest.find(']')?;
        rest = &rest[close + 1..];
    }
    let rest = rest.trim();
    if rest.is_empty() {
        return Some(DeclaredDependency::new(Ecosystem::Python, name, None));
    }
    // Operator + version, nothing trailing.
    let ops = ["==", ">=", "<=", "!=", "~=", ">", "<"];
    let op = ops.iter().find(|op| rest.starts_with(**op))?;
    let version = rest[op.len()..].trim();
    if version.is_empty() || !version_token_ok(version) || version.contains(char::is_whitespace) {
        return None;
    }
    let req = VersionReq::parse(&format!("{op}{version}"), ConstraintFlavor::Pep440).ok()?;
    Some(DeclaredDependency::new(Ecosystem::Python, name, Some(req)))
}

/// GitHub Dependency Graph: broad syntax coverage for plain requirements,
/// ranges reported verbatim, but option lines, URL/path/VCS installs and
/// continuations yield nothing.
fn parse_line_github(raw: &str) -> Option<DeclaredDependency> {
    let line = strip_comment(raw).trim();
    if line.is_empty() || line.starts_with('-') {
        return None;
    }
    // A continuation backslash anywhere breaks its parser: the fragment
    // lines do not form a valid requirement.
    if line.ends_with('\\') {
        return None;
    }
    if looks_like_url_or_path(line) || split_at_url_separator(line).is_some() {
        return None;
    }
    // pip-compile hash options are common; GitHub's parser strips them.
    let line = match line.find(" --hash") {
        Some(i) => line[..i].trim_end(),
        None => line,
    };
    let (req_part, marker) = match line.split_once(';') {
        Some((r, m)) => (r.trim(), Some(m.trim().to_string())),
        None => (line, None),
    };
    // Name must be directly followed by extras or specifier (no space before
    // '[' — Table IV row 1).
    let name_end = req_part
        .char_indices()
        .find(|(_, c)| !is_name_char(*c))
        .map(|(i, _)| i)
        .unwrap_or(req_part.len());
    let name = &req_part[..name_end];
    // GitHub's grammar requires names to start with a letter, which is why
    // the `1.19.2` fragment of the Table IV continuation sample yields
    // nothing.
    if !valid_name(name) || !name.starts_with(|c: char| c.is_ascii_alphabetic()) {
        return None;
    }
    let mut rest = &req_part[name_end..];
    let mut extras = Vec::new();
    if rest.starts_with('[') {
        let close = rest.find(']')?;
        extras = rest[1..close]
            .split(',')
            .map(|e| e.trim().to_string())
            .filter(|e| !e.is_empty())
            .collect();
        rest = &rest[close + 1..];
    } else if rest.trim_start().starts_with('[') {
        // space before '[' — unsupported
        return None;
    }
    let spec_text = rest.trim().to_string();
    let req = if spec_text.is_empty() {
        None
    } else {
        VersionReq::parse(&spec_text, ConstraintFlavor::Pep440).ok()
    };
    if !spec_text.is_empty() && req.is_none() {
        return None;
    }
    let mut dep = DeclaredDependency::new(Ecosystem::Python, name, req).with_extras(extras);
    dep.req_text = spec_text;
    if let Some(m) = marker {
        dep = dep.with_marker(m);
    }
    Some(dep)
}

/// Extracts `install_requires` and `extras_require` entries from `setup.py`
/// without executing Python: bracket-matched literal scanning, the approach
/// GitHub DG's best-effort setup.py support takes (Table II).
pub fn parse_setup_py(text: &str) -> Parsed {
    let mut out = Parsed::default();
    for dep in extract_list_strings(text, "install_requires") {
        match parse_line_pip(&dep) {
            Some(d) => out.deps.push(d),
            None => push_setup_py_drop(&mut out, &dep),
        }
    }
    for dep in extract_list_strings(text, "tests_require") {
        match parse_line_pip(&dep) {
            Some(d) => out.deps.push(d.with_scope(DepScope::Dev)),
            None => push_setup_py_drop(&mut out, &dep),
        }
    }
    for dep in extract_dict_list_strings(text, "extras_require") {
        match parse_line_pip(&dep) {
            Some(d) => out.deps.push(d.with_scope(DepScope::Optional)),
            None => push_setup_py_drop(&mut out, &dep),
        }
    }
    out
}

fn push_setup_py_drop(out: &mut Parsed, literal: &str) {
    if literal.trim().is_empty() {
        return;
    }
    out.push_diag(Diagnostic::new(
        DiagClass::UnsupportedSyntax,
        format!("unparsable setup.py requirement: {}", excerpt(literal)),
    ));
}

/// Collects string literals inside `key = [ ... ]` / `key=[...]`.
fn extract_list_strings(text: &str, key: &str) -> Vec<String> {
    let Some(kidx) = text.find(key) else {
        return Vec::new();
    };
    let after = &text[kidx + key.len()..];
    let Some(open_rel) = after.find('[') else {
        return Vec::new();
    };
    // Only an '=' (possibly spaced) may sit between key and '['.
    if !after[..open_rel]
        .trim()
        .trim_start_matches('=')
        .trim()
        .is_empty()
    {
        return Vec::new();
    }
    collect_strings_until_close(&after[open_rel..], '[', ']')
}

/// Collects string literals inside the *values* of `key = { ... }`.
fn extract_dict_list_strings(text: &str, key: &str) -> Vec<String> {
    let Some(kidx) = text.find(key) else {
        return Vec::new();
    };
    let after = &text[kidx + key.len()..];
    let Some(open_rel) = after.find('{') else {
        return Vec::new();
    };
    if !after[..open_rel]
        .trim()
        .trim_start_matches('=')
        .trim()
        .is_empty()
    {
        return Vec::new();
    }
    // Every string in the dict that is inside a nested list is a requirement;
    // strings that are dict keys sit before ':' and outside brackets.
    let body = &after[open_rel..];
    let mut depth = 0i32;
    let mut list_depth = 0i32;
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            '[' => list_depth += 1,
            ']' => list_depth -= 1,
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                for q in chars.by_ref() {
                    if q == quote {
                        break;
                    }
                    s.push(q);
                }
                if list_depth > 0 {
                    out.push(s);
                }
            }
            _ => {}
        }
    }
    out
}

fn collect_strings_until_close(body: &str, open: char, close: char) -> Vec<String> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            c if c == open => depth += 1,
            c if c == close => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                for q in chars.by_ref() {
                    if q == quote {
                        break;
                    }
                    s.push(q);
                }
                out.push(s);
            }
            _ => {}
        }
    }
    out
}

/// Parses `poetry.lock` (TOML `[[package]]` entries, all pinned).
pub fn parse_poetry_lock(text: &str) -> Parsed {
    let doc = match toml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("poetry.lock", &e)),
    };
    let mut out = Parsed::default();
    if let Some(packages) = doc.get("package").and_then(Value::as_array) {
        for pkg in packages {
            let Some(name) = pkg.get("name").and_then(Value::as_str) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    "[[package]] entry without a name",
                ));
                continue;
            };
            let Some(version) = pkg.get("version").and_then(Value::as_str) else {
                out.push_diag(Diagnostic::new(
                    DiagClass::MissingField,
                    format!("[[package]] entry {name} without a version"),
                ));
                continue;
            };
            let scope = match pkg.get("category").and_then(Value::as_str) {
                Some("dev") => DepScope::Dev,
                _ => DepScope::Runtime,
            };
            let req = VersionReq::parse(&format!("=={version}"), ConstraintFlavor::Pep440).ok();
            out.deps
                .push(DeclaredDependency::new(Ecosystem::Python, name, req).with_scope(scope));
        }
    }
    out
}

/// Parses `Pipfile.lock` (JSON `default` / `develop` sections).
pub fn parse_pipfile_lock(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("Pipfile.lock", &e)),
    };
    let mut out = Parsed::default();
    for (section, scope) in [("default", DepScope::Runtime), ("develop", DepScope::Dev)] {
        if let Some(entries) = doc.get(section).and_then(Value::as_object) {
            for (name, info) in entries {
                if let Some(vstr) = info.get("version").and_then(Value::as_str) {
                    let spec = vstr.trim();
                    let req = VersionReq::parse(spec, ConstraintFlavor::Pep440).ok();
                    let mut dep = DeclaredDependency::new(Ecosystem::Python, name.clone(), req)
                        .with_scope(scope);
                    dep.req_text = spec.to_string();
                    out.deps.push(dep);
                } else if let Some(git) = info.get("git").and_then(Value::as_str) {
                    let reference = info
                        .get("ref")
                        .and_then(Value::as_str)
                        .map(|s| s.to_string());
                    out.deps.push(
                        DeclaredDependency::new(Ecosystem::Python, name.clone(), None)
                            .with_scope(scope)
                            .with_source(DependencySource::Vcs {
                                kind: VcsKind::Git,
                                url: git.to_string(),
                                reference,
                            }),
                    );
                } else {
                    out.push_diag(Diagnostic::new(
                        DiagClass::MissingField,
                        format!("lock entry {name} without a version or git source"),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pinned(dep: &DeclaredDependency) -> Option<String> {
        dep.pinned_version().map(|v| v.to_string())
    }

    // ---------- reference (pip) dialect ----------

    #[test]
    fn pip_basic_forms() {
        let deps = parse_requirements(
            "requests>=2.8.1\nnumpy==1.19.2\nflask\npandas>=1.0,<2.0  # pinned later\n",
            ReqStyle::Pip,
        );
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0].name.raw(), "requests");
        assert_eq!(pinned(&deps[1]).as_deref(), Some("1.19.2"));
        assert!(deps[2].req.is_none());
        assert_eq!(deps[3].req_text, ">=1.0,<2.0");
    }

    #[test]
    fn pip_line_continuation() {
        let deps = parse_requirements("numpy \\\n==\\\n1.19.2\n", ReqStyle::Pip);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "numpy");
        assert_eq!(pinned(&deps[0]).as_deref(), Some("1.19.2"));
    }

    #[test]
    fn pip_extras_with_and_without_space() {
        let deps = parse_requirements(
            "requests [security]>=2.8.1\ncelery[redis,msgpack]==5.3.0\n",
            ReqStyle::Pip,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "requests");
        assert_eq!(deps[0].extras, vec!["security"]);
        assert_eq!(deps[1].extras, vec!["redis", "msgpack"]);
    }

    #[test]
    fn pip_includes_and_options() {
        let deps = parse_requirements(
            "-r common.txt\n-c constraints.txt\n--index-url https://pypi.example\nrequests\n",
            ReqStyle::Pip,
        );
        assert_eq!(deps.len(), 3);
        assert!(matches!(
            deps[0].source,
            DependencySource::IncludeFile(ref f) if f == "common.txt"
        ));
        assert!(matches!(
            deps[1].source,
            DependencySource::ConstraintsFile(_)
        ));
        assert_eq!(deps[2].name.raw(), "requests");
    }

    #[test]
    fn pip_url_path_vcs() {
        let deps = parse_requirements(
            "./path/to/local_pkg-1.0.0-py3-none-any.whl\nhttps://host/remote_pkg-2.1.0.tar.gz\nurllib3 @ git+https://github.com/urllib3/urllib3@abc123\n",
            ReqStyle::Pip,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "local_pkg");
        assert_eq!(pinned(&deps[0]).as_deref(), Some("1.0.0"));
        assert!(matches!(deps[0].source, DependencySource::Path(_)));
        assert_eq!(deps[1].name.raw(), "remote_pkg");
        assert!(matches!(deps[1].source, DependencySource::Url(_)));
        assert_eq!(deps[2].name.raw(), "urllib3");
        match &deps[2].source {
            DependencySource::Vcs {
                kind,
                url,
                reference,
            } => {
                assert_eq!(*kind, VcsKind::Git);
                assert!(url.contains("github.com/urllib3"));
                assert_eq!(reference.as_deref(), Some("abc123"));
            }
            other => panic!("expected vcs source, got {other:?}"),
        }
    }

    #[test]
    fn pip_markers_preserved() {
        let deps = parse_requirements("pywin32>=1.0; sys_platform == 'win32'\n", ReqStyle::Pip);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].marker.as_deref(), Some("sys_platform == 'win32'"));
    }

    #[test]
    fn pip_editable_install() {
        let deps = parse_requirements("-e ./src/mylib\n", ReqStyle::Pip);
        assert_eq!(deps.len(), 1);
        assert!(matches!(deps[0].source, DependencySource::Path(_)));
    }

    #[test]
    fn pip_parenthesized_spec() {
        let deps = parse_requirements("requests (>=2.8.1)\n", ReqStyle::Pip);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].req_text, ">=2.8.1");
    }

    // ---------- Trivy/Syft dialect ----------

    #[test]
    fn trivy_syft_only_double_equals() {
        let deps = parse_requirements(
            "numpy==1.19.2\nrequests>=2.8.1\nflask\npandas~=1.5\n",
            ReqStyle::TrivySyft,
        );
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "numpy");
    }

    #[test]
    fn trivy_syft_table_iv_rows_all_dropped() {
        for sample in [
            "requests [security]>=2.8.1",
            "numpy \\\n==\\\n1.19.2",
            "-r SOME_REQS.txt",
            "./path/to/local_pkg.whl",
            "https://remote_pkg.whl",
            "urlib3 @ git+https://github.com/urllib3/urllib3@abc123",
        ] {
            let deps = parse_requirements(sample, ReqStyle::TrivySyft);
            assert!(deps.is_empty(), "sample should be missed: {sample}");
        }
    }

    #[test]
    fn trivy_syft_extras_break_name() {
        let deps = parse_requirements("celery[redis]==5.3.0\n", ReqStyle::TrivySyft);
        assert!(deps.is_empty());
    }

    #[test]
    fn trivy_syft_marker_stripped() {
        let deps = parse_requirements("x==1.0; python_version<'3'\n", ReqStyle::TrivySyft);
        assert_eq!(deps.len(), 1);
        assert_eq!(pinned(&deps[0]).as_deref(), Some("1.0"));
    }

    // ---------- sbom-tool dialect ----------

    #[test]
    fn sbom_tool_salvages_backslash_name() {
        // Table IV row 2: the three physical lines of the attack sample.
        let deps = parse_requirements("numpy \\\n==\\\n1.19.2\n", ReqStyle::SbomTool);
        // "numpy \" → bare name (resolved later to latest);
        // "==\" → dropped; "1.19.2" → *looks* like a name, kept for registry
        // validation (which will fail, as §VIII describes).
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "numpy");
        assert!(deps[0].req.is_none());
        assert_eq!(deps[1].name.raw(), "1.19.2");
    }

    #[test]
    fn sbom_tool_space_before_extras_drops_line() {
        let deps = parse_requirements("requests [security]>=2.8.1\n", ReqStyle::SbomTool);
        assert!(deps.is_empty());
    }

    #[test]
    fn sbom_tool_attached_extras_ignored() {
        let deps = parse_requirements("requests[security]>=2.8.1\n", ReqStyle::SbomTool);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name.raw(), "requests");
        assert!(deps[0].extras.is_empty());
    }

    #[test]
    fn sbom_tool_marker_ignored_dep_kept() {
        let deps = parse_requirements(
            "pywin32>=1.0; sys_platform == 'win32'\n",
            ReqStyle::SbomTool,
        );
        assert_eq!(deps.len(), 1);
        assert!(deps[0].marker.is_none());
    }

    #[test]
    fn sbom_tool_ranges_kept_for_resolution() {
        let deps = parse_requirements("requests>=2.8.1\n", ReqStyle::SbomTool);
        assert_eq!(deps.len(), 1);
        assert!(deps[0].req.is_some());
        assert!(deps[0].pinned_version().is_none());
    }

    #[test]
    fn sbom_tool_urls_and_options_dropped() {
        let deps = parse_requirements(
            "-r other.txt\n./pkg.whl\nhttps://remote.whl\nu3 @ git+https://x@h\n",
            ReqStyle::SbomTool,
        );
        // "./pkg.whl" fails the name anchor; url contains ':'; "u3 @ ..."
        // has a space-separated '@' that breaks the anchor.
        assert!(deps.is_empty());
    }

    // ---------- GitHub DG dialect ----------

    #[test]
    fn github_reports_ranges_verbatim() {
        let deps = parse_requirements("requests>=2.8.1,<3\n", ReqStyle::GithubDg);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].req_text, ">=2.8.1,<3");
        assert!(deps[0].pinned_version().is_none());
    }

    #[test]
    fn github_table_iv_rows_all_dropped() {
        for sample in [
            "requests [security]>=2.8.1",
            "numpy \\\n==\\\n1.19.2",
            "-r SOME_REQS.txt",
            "./path/to/local_pkg.whl",
            "https://remote_pkg.whl",
            "urlib3 @ git+https://github.com/urllib3/urllib3@abc123",
        ] {
            let deps = parse_requirements(sample, ReqStyle::GithubDg);
            assert!(deps.is_empty(), "sample should be missed: {sample}");
        }
    }

    #[test]
    fn github_attached_extras_ok() {
        let deps = parse_requirements("celery[redis]>=5.0\n", ReqStyle::GithubDg);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].extras, vec!["redis"]);
    }

    #[test]
    fn github_bare_names_reported() {
        let deps = parse_requirements("flask\n", ReqStyle::GithubDg);
        assert_eq!(deps.len(), 1);
        assert!(deps[0].req.is_none());
        assert!(deps[0].req_text.is_empty());
    }

    // ---------- setup.py ----------

    #[test]
    fn setup_py_install_requires() {
        let deps = parse_setup_py(
            r#"
from setuptools import setup
setup(
    name="demo",
    install_requires=[
        "requests>=2.8.1",
        'click==8.0.0',
    ],
    extras_require={
        "dev": ["pytest>=7.0"],
        "docs": ["sphinx"],
    },
    tests_require=["nose"],
)
"#,
        );
        assert_eq!(deps.len(), 5);
        assert_eq!(deps[0].name.raw(), "requests");
        assert_eq!(deps[1].name.raw(), "click");
        assert_eq!(deps[2].scope, DepScope::Dev); // tests_require
        assert_eq!(deps[3].scope, DepScope::Optional);
        assert_eq!(deps[4].name.raw(), "sphinx");
    }

    #[test]
    fn setup_py_without_requires_is_empty() {
        assert!(parse_setup_py("from setuptools import setup\nsetup(name='x')\n").is_empty());
    }

    // ---------- poetry.lock / Pipfile.lock ----------

    #[test]
    fn poetry_lock_entries() {
        let deps = parse_poetry_lock(
            r#"
[[package]]
name = "requests"
version = "2.31.0"
category = "main"

[[package]]
name = "pytest"
version = "7.4.0"
category = "dev"
"#,
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(pinned(&deps[0]).as_deref(), Some("2.31.0"));
        assert_eq!(deps[1].scope, DepScope::Dev);
    }

    #[test]
    fn pipfile_lock_entries() {
        let deps = parse_pipfile_lock(
            r#"{
  "default": {
    "requests": {"version": "==2.31.0"},
    "mylib": {"git": "https://github.com/a/mylib", "ref": "deadbeef"}
  },
  "develop": {
    "pytest": {"version": "==7.4.0"}
  }
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(pinned(&deps[0]).as_deref(), Some("2.31.0"));
        assert!(matches!(deps[1].source, DependencySource::Vcs { .. }));
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn malformed_lockfiles_return_empty() {
        assert!(parse_poetry_lock("not toml [").is_empty());
        assert!(parse_pipfile_lock("{broken").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_pipfile_lock("{broken");
        assert_eq!(p.diags[0].class, DiagClass::MalformedFile);
        let p = parse_pipfile_lock(r#"{"default": "#);
        assert_eq!(p.diags[0].class, DiagClass::TruncatedInput);
        let p = parse_pipfile_lock(r#"{"default": {"a": {}}}"#);
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_poetry_lock("[[package]]\nname = \"a\"\n");
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
        let p = parse_requirements("??invalid??\n", ReqStyle::Pip);
        assert_eq!(p.diags[0].class, DiagClass::InvalidName);
        assert_eq!(p.diags[0].line, Some(1));
    }

    #[test]
    fn dialect_drops_are_classified() {
        // §V-D: Trivy/Syft silently discard unpinned requirements — the
        // emulation now records that as an UnpinnedDropped diagnostic.
        let p = parse_requirements("requests>=2.8.1\n", ReqStyle::TrivySyft);
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::UnpinnedDropped);
        let p = parse_requirements("./pkg.whl\n", ReqStyle::TrivySyft);
        assert_eq!(p.diags[0].class, DiagClass::ExoticSource);
        let p = parse_requirements("numpy \\\n", ReqStyle::GithubDg);
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
        let p = parse_requirements("-r other.txt\n", ReqStyle::SbomTool);
        assert_eq!(p.diags[0].class, DiagClass::UnsupportedSyntax);
        // Option lines the reference parser understands carry no diagnostic.
        let p = parse_requirements("--index-url https://pypi.example\n", ReqStyle::Pip);
        assert!(p.diags.is_empty());
    }
}

/// Parses `pyproject.toml`: PEP 621 `[project]` dependencies and
/// optional-dependencies, plus the `[tool.poetry]` dialect.
///
/// Not in Table II (none of the studied tools read it in the evaluated
/// versions); used by the reference/best-practice layer.
pub fn parse_pyproject_toml(text: &str) -> Parsed {
    let doc = match toml::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("pyproject.toml", &e)),
    };
    let mut out = Parsed::default();
    // PEP 621: [project] dependencies = ["requests>=2.8", ...]
    if let Some(deps) = doc
        .pointer("project/dependencies")
        .and_then(Value::as_array)
    {
        for d in deps {
            match d.as_str().map(parse_line_pip) {
                Some(Some(dep)) => out.deps.push(dep),
                Some(None) => out.push_diag(Diagnostic::new(
                    DiagClass::UnsupportedSyntax,
                    format!(
                        "unparsable project dependency: {}",
                        excerpt(d.as_str().unwrap_or_default())
                    ),
                )),
                None => out.push_diag(Diagnostic::new(
                    DiagClass::MalformedFile,
                    "project dependency entry is not a string",
                )),
            }
        }
    }
    if let Some(groups) = doc
        .pointer("project/optional-dependencies")
        .and_then(Value::as_object)
    {
        for (_group, deps) in groups {
            if let Some(deps) = deps.as_array() {
                for d in deps {
                    if let Some(line) = d.as_str() {
                        if let Some(dep) = parse_line_pip(line) {
                            out.deps.push(dep.with_scope(DepScope::Optional));
                        } else {
                            out.push_diag(Diagnostic::new(
                                DiagClass::UnsupportedSyntax,
                                format!("unparsable optional dependency: {}", excerpt(line)),
                            ));
                        }
                    }
                }
            }
        }
    }
    // Poetry: [tool.poetry.dependencies] requests = "^2.28" / { version = .. }
    for (section, scope) in [
        ("tool/poetry/dependencies", DepScope::Runtime),
        ("tool/poetry/dev-dependencies", DepScope::Dev),
        ("tool/poetry/group/dev/dependencies", DepScope::Dev),
    ] {
        if let Some(table) = doc.pointer(section).and_then(Value::as_object) {
            for (name, spec) in table {
                if name == "python" {
                    continue; // interpreter constraint, not a package
                }
                let spec_text = match spec {
                    Value::Str(s) => s.clone(),
                    other => other
                        .get("version")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                };
                // Poetry uses caret/tilde npm-style constraints.
                let req = if spec_text.is_empty() || spec_text == "*" {
                    None
                } else {
                    VersionReq::parse(&spec_text, ConstraintFlavor::Npm).ok()
                };
                let mut dep =
                    DeclaredDependency::new(Ecosystem::Python, name.clone(), req).with_scope(scope);
                dep.req_text = spec_text;
                out.deps.push(dep);
            }
        }
    }
    out
}

/// Parses `setup.cfg` `[options] install_requires` (INI-style, indented
/// continuation list).
pub fn parse_setup_cfg(text: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut in_options = false;
    let mut in_install_requires = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with(['#', ';']) {
            continue;
        }
        if line.starts_with('[') {
            in_options = line.trim() == "[options]";
            in_install_requires = false;
            continue;
        }
        if !in_options {
            continue;
        }
        if !line.starts_with([' ', '\t']) {
            // new key
            if let Some((key, value)) = line.split_once('=') {
                in_install_requires = key.trim() == "install_requires";
                if in_install_requires && !value.trim().is_empty() {
                    match parse_line_pip(value.trim()) {
                        Some(dep) => out.deps.push(dep),
                        None => out.push_diag(
                            Diagnostic::new(
                                DiagClass::UnsupportedSyntax,
                                format!(
                                    "unparsable install_requires entry: {}",
                                    excerpt(value.trim())
                                ),
                            )
                            .with_line(lineno as u32 + 1),
                        ),
                    }
                }
            } else {
                in_install_requires = false;
            }
            continue;
        }
        if in_install_requires {
            match parse_line_pip(line.trim()) {
                Some(dep) => out.deps.push(dep),
                None => out.push_diag(
                    Diagnostic::new(
                        DiagClass::UnsupportedSyntax,
                        format!(
                            "unparsable install_requires entry: {}",
                            excerpt(line.trim())
                        ),
                    )
                    .with_line(lineno as u32 + 1),
                ),
            }
        }
    }
    out
}

#[cfg(test)]
mod pyproject_tests {
    use super::*;

    #[test]
    fn pep621_dependencies() {
        let deps = parse_pyproject_toml(
            "[project]\nname = \"demo\"\ndependencies = [\n  \"requests>=2.8.1\",\n  \"numpy==1.19.2\",\n]\n\n[project.optional-dependencies]\ndev = [\"pytest>=7\"]\n",
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "requests");
        assert_eq!(deps[1].pinned_version().unwrap().to_string(), "1.19.2");
        assert_eq!(deps[2].scope, DepScope::Optional);
    }

    #[test]
    fn poetry_dependencies() {
        let deps = parse_pyproject_toml(
            "[tool.poetry]\nname = \"demo\"\n\n[tool.poetry.dependencies]\npython = \"^3.11\"\nrequests = \"^2.28\"\nflask = { version = \"~2.3\", extras = [\"async\"] }\n\n[tool.poetry.dev-dependencies]\npytest = \"*\"\n",
        );
        assert_eq!(deps.len(), 3); // python excluded
        assert_eq!(deps[0].name.raw(), "requests");
        assert!(deps[0]
            .req
            .as_ref()
            .unwrap()
            .matches(&sbomdiff_types::Version::parse("2.99.0").unwrap()));
        assert_eq!(deps[1].req_text, "~2.3");
        assert_eq!(deps[2].scope, DepScope::Dev);
        assert!(deps[2].req.is_none());
    }

    #[test]
    fn setup_cfg_install_requires() {
        let deps = parse_setup_cfg(
            "[metadata]\nname = demo\n\n[options]\npackages = find:\ninstall_requires =\n    requests>=2.8.1\n    numpy==1.19.2\n\n[options.extras_require]\ndev = pytest\n",
        );
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].name.raw(), "requests");
        assert_eq!(deps[1].name.raw(), "numpy");
    }

    #[test]
    fn setup_cfg_inline_value() {
        let deps = parse_setup_cfg("[options]\ninstall_requires = requests>=2.0\n");
        assert_eq!(deps.len(), 1);
    }

    #[test]
    fn pyproject_malformed_empty() {
        assert!(parse_pyproject_toml("[[broken").is_empty());
        assert!(parse_setup_cfg("").is_empty());
    }
}

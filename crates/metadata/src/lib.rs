//! Metadata-file parsers for the nine studied ecosystems.
//!
//! Each module parses the metadata formats of one ecosystem into
//! [`DeclaredDependency`](sbomdiff_types::DeclaredDependency) lists. Two
//! kinds of parser live here:
//!
//! * **Reference parsers** — complete, spec-faithful implementations used
//!   for ground truth (§V-H) and the benchmark (§VII). These support the
//!   full syntax: line continuations, includes, extras, markers, URL/VCS
//!   sources.
//! * **Dialect parsers** — parameterized reimplementations of how each
//!   studied SBOM tool actually reads the format, reproducing the
//!   documented limitations (§V-B, §V-D, Table IV). The tool emulators in
//!   `sbomdiff-generators` select a dialect per file type.
//!
//! [`MetadataKind`] classifies file paths into the file types of the
//! paper's Table II.
//!
//! Every parser returns a [`Parsed`] — the extracted declarations plus the
//! structured [`Diagnostic`]s for whatever the parser had to skip or could
//! not understand. A malformed file is never a panic and never a silent
//! empty result: it is an empty declaration list carrying a classified
//! diagnostic (DESIGN.md §13).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dotnet;
pub mod golang;
pub mod java;
pub mod javascript;
pub mod php;
pub mod python;
pub mod repofs;
pub mod ruby;
pub mod rust_lang;
pub mod swift;

use std::sync::Arc;

use sbomdiff_types::{DeclaredDependency, Diagnostic, Ecosystem};

pub use repofs::RepoFs;

/// The result of parsing one metadata file: the declarations that were
/// understood plus diagnostics for everything that was not.
///
/// `Parsed` dereferences to its declaration list, so call sites that only
/// care about the dependencies keep working unchanged (`parsed.len()`,
/// `parsed[0]`, `for dep in &parsed`); diagnostics ride along for the
/// layers that surface them (emulators, reports, the service).
///
/// Diagnostics are `Arc`-shared: a parse result sits behind the shared-scan
/// cache and is read by four profiles at once, so each profile attaching
/// the diagnostics to its SBOM aliases the same allocations instead of
/// deep-copying the `Vec` per profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    /// Successfully extracted declarations, in file order.
    pub deps: Vec<DeclaredDependency>,
    /// Classified diagnostics for skipped or malformed input, in file order.
    pub diags: Vec<Arc<Diagnostic>>,
}

impl Parsed {
    /// A result with declarations and no diagnostics.
    pub fn ok(deps: Vec<DeclaredDependency>) -> Parsed {
        Parsed {
            deps,
            diags: Vec::new(),
        }
    }

    /// An empty result carrying one diagnostic (the malformed-file case).
    pub fn fail(diag: Diagnostic) -> Parsed {
        Parsed {
            deps: Vec::new(),
            diags: vec![Arc::new(diag)],
        }
    }

    /// Records one diagnostic.
    pub fn push_diag(&mut self, diag: Diagnostic) {
        self.diags.push(Arc::new(diag));
    }

    /// Stamps `path` onto every diagnostic that does not already carry one
    /// (parsers see only file content; the caller knows the path).
    /// Copy-on-write: stamping happens before the result is shared, so
    /// `Arc::make_mut` mutates in place without cloning.
    pub fn with_path(mut self, path: &str) -> Parsed {
        for d in &mut self.diags {
            if d.path.is_none() {
                Arc::make_mut(d).path = Some(path.to_string());
            }
        }
        self
    }

    /// Stamps `eco` onto every diagnostic that does not already carry one.
    pub fn with_ecosystem(mut self, eco: Ecosystem) -> Parsed {
        for d in &mut self.diags {
            if d.ecosystem.is_none() {
                Arc::make_mut(d).ecosystem = Some(eco);
            }
        }
        self
    }
}

impl std::ops::Deref for Parsed {
    type Target = Vec<DeclaredDependency>;

    fn deref(&self) -> &Vec<DeclaredDependency> {
        &self.deps
    }
}

impl From<Vec<DeclaredDependency>> for Parsed {
    fn from(deps: Vec<DeclaredDependency>) -> Parsed {
        Parsed::ok(deps)
    }
}

impl IntoIterator for Parsed {
    type Item = DeclaredDependency;
    type IntoIter = std::vec::IntoIter<DeclaredDependency>;

    fn into_iter(self) -> Self::IntoIter {
        self.deps.into_iter()
    }
}

impl<'a> IntoIterator for &'a Parsed {
    type Item = &'a DeclaredDependency;
    type IntoIter = std::slice::Iter<'a, DeclaredDependency>;

    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

/// Classifies a container-format parse failure into a diagnostic:
/// errors about input ending mid-structure become
/// [`TruncatedInput`](sbomdiff_types::DiagClass::TruncatedInput), everything
/// else [`MalformedFile`](sbomdiff_types::DiagClass::MalformedFile).
pub(crate) fn format_error_diag(format: &str, err: &sbomdiff_textformats::TextError) -> Diagnostic {
    let msg = err.message();
    let truncated =
        msg.contains("unterminated") || msg.contains("unexpected end") || msg.contains("truncated");
    let class = if truncated {
        sbomdiff_types::DiagClass::TruncatedInput
    } else {
        sbomdiff_types::DiagClass::MalformedFile
    };
    let mut diag = Diagnostic::new(class, format!("{format}: {err}"));
    if err.line() > 0 {
        diag.line = u32::try_from(err.line()).ok();
    }
    diag
}

/// The metadata file types of Table II (plus the Swift and .NET formats the
/// evaluation's Fig. 1 implies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetadataKind {
    // Go
    /// `go.mod`
    GoMod,
    /// `go.sum`
    GoSum,
    /// Go executable with embedded build info.
    GoBinary,
    // Java
    /// `pom.xml`
    PomXml,
    /// `gradle.lockfile`
    GradleLockfile,
    /// `MANIFEST.MF`
    ManifestMf,
    /// `pom.properties`
    PomProperties,
    // JavaScript
    /// `package.json`
    PackageJson,
    /// `package-lock.json`
    PackageLockJson,
    /// `yarn.lock`
    YarnLock,
    /// `pnpm-lock.yaml`
    PnpmLock,
    // PHP
    /// `composer.json`
    ComposerJson,
    /// `composer.lock`
    ComposerLock,
    // Python
    /// `requirements*.txt`
    RequirementsTxt,
    /// `poetry.lock`
    PoetryLock,
    /// `Pipfile.lock`
    PipfileLock,
    /// `setup.py`
    SetupPy,
    /// `pyproject.toml` (PEP 621 / poetry)
    PyprojectToml,
    /// `setup.cfg`
    SetupCfg,
    // Ruby
    /// `Gemfile`
    Gemfile,
    /// `Gemfile.lock`
    GemfileLock,
    /// `*.gemspec`
    Gemspec,
    // Rust
    /// `Cargo.toml`
    CargoToml,
    /// `Cargo.lock`
    CargoLock,
    /// Rust executable with embedded audit data.
    RustBinary,
    // Swift
    /// `Package.swift`
    PackageSwift,
    /// `Package.resolved`
    PackageResolved,
    /// `Podfile`
    Podfile,
    /// `Podfile.lock`
    PodfileLock,
    // .NET
    /// `*.csproj`
    Csproj,
    /// `packages.config`
    PackagesConfig,
    /// `packages.lock.json`
    PackagesLockJson,
}

impl MetadataKind {
    /// All known kinds, in Table II's ordering (Go, Java, JS, PHP, Python,
    /// Ruby, Rust) followed by the Swift and .NET formats.
    pub const ALL: [MetadataKind; 32] = [
        MetadataKind::GoMod,
        MetadataKind::GoSum,
        MetadataKind::GoBinary,
        MetadataKind::PomXml,
        MetadataKind::GradleLockfile,
        MetadataKind::ManifestMf,
        MetadataKind::PomProperties,
        MetadataKind::PackageJson,
        MetadataKind::PackageLockJson,
        MetadataKind::YarnLock,
        MetadataKind::PnpmLock,
        MetadataKind::ComposerJson,
        MetadataKind::ComposerLock,
        MetadataKind::RequirementsTxt,
        MetadataKind::PoetryLock,
        MetadataKind::PipfileLock,
        MetadataKind::SetupPy,
        MetadataKind::PyprojectToml,
        MetadataKind::SetupCfg,
        MetadataKind::Gemfile,
        MetadataKind::GemfileLock,
        MetadataKind::Gemspec,
        MetadataKind::CargoToml,
        MetadataKind::CargoLock,
        MetadataKind::RustBinary,
        MetadataKind::PackageSwift,
        MetadataKind::PackageResolved,
        MetadataKind::Podfile,
        MetadataKind::PodfileLock,
        MetadataKind::Csproj,
        MetadataKind::PackagesConfig,
        MetadataKind::PackagesLockJson,
    ];

    /// Classifies a file path into a metadata kind.
    pub fn detect(path: &str) -> Option<MetadataKind> {
        let file = path.rsplit('/').next().unwrap_or(path);
        let lower = file.to_ascii_lowercase();
        Some(match lower.as_str() {
            "go.mod" => MetadataKind::GoMod,
            "go.sum" => MetadataKind::GoSum,
            "pom.xml" => MetadataKind::PomXml,
            "gradle.lockfile" => MetadataKind::GradleLockfile,
            "manifest.mf" => MetadataKind::ManifestMf,
            "pom.properties" => MetadataKind::PomProperties,
            "package.json" => MetadataKind::PackageJson,
            "package-lock.json" | "npm-shrinkwrap.json" => MetadataKind::PackageLockJson,
            "yarn.lock" => MetadataKind::YarnLock,
            "pnpm-lock.yaml" => MetadataKind::PnpmLock,
            "composer.json" => MetadataKind::ComposerJson,
            "composer.lock" => MetadataKind::ComposerLock,
            "poetry.lock" => MetadataKind::PoetryLock,
            "pipfile.lock" => MetadataKind::PipfileLock,
            "setup.py" => MetadataKind::SetupPy,
            "pyproject.toml" => MetadataKind::PyprojectToml,
            "setup.cfg" => MetadataKind::SetupCfg,
            "gemfile" => MetadataKind::Gemfile,
            "gemfile.lock" => MetadataKind::GemfileLock,
            "cargo.toml" => MetadataKind::CargoToml,
            "cargo.lock" => MetadataKind::CargoLock,
            "package.swift" => MetadataKind::PackageSwift,
            "package.resolved" => MetadataKind::PackageResolved,
            "podfile" => MetadataKind::Podfile,
            "podfile.lock" => MetadataKind::PodfileLock,
            "packages.config" => MetadataKind::PackagesConfig,
            "packages.lock.json" => MetadataKind::PackagesLockJson,
            _ => {
                if lower.starts_with("requirements") && lower.ends_with(".txt") {
                    MetadataKind::RequirementsTxt
                } else if lower.ends_with(".gemspec") {
                    MetadataKind::Gemspec
                } else if lower.ends_with(".csproj") || lower.ends_with(".vbproj") {
                    MetadataKind::Csproj
                } else if lower.ends_with(".gobin") {
                    MetadataKind::GoBinary
                } else if lower.ends_with(".rustbin") {
                    MetadataKind::RustBinary
                } else {
                    return None;
                }
            }
        })
    }

    /// The ecosystem this file type belongs to.
    pub fn ecosystem(self) -> Ecosystem {
        match self {
            MetadataKind::GoMod | MetadataKind::GoSum | MetadataKind::GoBinary => Ecosystem::Go,
            MetadataKind::PomXml
            | MetadataKind::GradleLockfile
            | MetadataKind::ManifestMf
            | MetadataKind::PomProperties => Ecosystem::Java,
            MetadataKind::PackageJson
            | MetadataKind::PackageLockJson
            | MetadataKind::YarnLock
            | MetadataKind::PnpmLock => Ecosystem::JavaScript,
            MetadataKind::ComposerJson | MetadataKind::ComposerLock => Ecosystem::Php,
            MetadataKind::RequirementsTxt
            | MetadataKind::PoetryLock
            | MetadataKind::PipfileLock
            | MetadataKind::SetupPy
            | MetadataKind::PyprojectToml
            | MetadataKind::SetupCfg => Ecosystem::Python,
            MetadataKind::Gemfile | MetadataKind::GemfileLock | MetadataKind::Gemspec => {
                Ecosystem::Ruby
            }
            MetadataKind::CargoToml | MetadataKind::CargoLock | MetadataKind::RustBinary => {
                Ecosystem::Rust
            }
            MetadataKind::PackageSwift
            | MetadataKind::PackageResolved
            | MetadataKind::Podfile
            | MetadataKind::PodfileLock => Ecosystem::Swift,
            MetadataKind::Csproj
            | MetadataKind::PackagesConfig
            | MetadataKind::PackagesLockJson => Ecosystem::DotNet,
        }
    }

    /// Whether this is a lockfile (pinned, transitive-inclusive) as opposed
    /// to raw metadata (§II-B).
    pub fn is_lockfile(self) -> bool {
        matches!(
            self,
            MetadataKind::GoSum
                | MetadataKind::GradleLockfile
                | MetadataKind::PackageLockJson
                | MetadataKind::YarnLock
                | MetadataKind::PnpmLock
                | MetadataKind::ComposerLock
                | MetadataKind::PoetryLock
                | MetadataKind::PipfileLock
                | MetadataKind::GemfileLock
                | MetadataKind::CargoLock
                | MetadataKind::PackageResolved
                | MetadataKind::PodfileLock
                | MetadataKind::PackagesLockJson
        )
    }

    /// Table II row label.
    pub fn label(self) -> &'static str {
        match self {
            MetadataKind::GoMod => "go.mod",
            MetadataKind::GoSum => "go.sum",
            MetadataKind::GoBinary => "Go executable",
            MetadataKind::PomXml => "pom.xml",
            MetadataKind::GradleLockfile => "gradle.lockfile",
            MetadataKind::ManifestMf => "MANIFEST.MF",
            MetadataKind::PomProperties => "pom.properties",
            MetadataKind::PackageJson => "package.json",
            MetadataKind::PackageLockJson => "package-lock.json",
            MetadataKind::YarnLock => "yarn.lock",
            MetadataKind::PnpmLock => "pnpm-lock.yaml",
            MetadataKind::ComposerJson => "composer.json",
            MetadataKind::ComposerLock => "composer.lock",
            MetadataKind::RequirementsTxt => "requirements.txt",
            MetadataKind::PoetryLock => "poetry.lock",
            MetadataKind::PipfileLock => "pipfile.lock",
            MetadataKind::SetupPy => "setup.py",
            MetadataKind::PyprojectToml => "pyproject.toml",
            MetadataKind::SetupCfg => "setup.cfg",
            MetadataKind::Gemfile => "Gemfile",
            MetadataKind::GemfileLock => "Gemfile.lock",
            MetadataKind::Gemspec => ".gemspec",
            MetadataKind::CargoToml => "Cargo.toml",
            MetadataKind::CargoLock => "Cargo.lock",
            MetadataKind::RustBinary => "Rust executable",
            MetadataKind::PackageSwift => "Package.swift",
            MetadataKind::PackageResolved => "Package.resolved",
            MetadataKind::Podfile => "Podfile",
            MetadataKind::PodfileLock => "Podfile.lock",
            MetadataKind::Csproj => "*.csproj",
            MetadataKind::PackagesConfig => "packages.config",
            MetadataKind::PackagesLockJson => "packages.lock.json",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_basic_names() {
        assert_eq!(MetadataKind::detect("go.mod"), Some(MetadataKind::GoMod));
        assert_eq!(
            MetadataKind::detect("sub/dir/Cargo.lock"),
            Some(MetadataKind::CargoLock)
        );
        assert_eq!(
            MetadataKind::detect("requirements-dev.txt"),
            Some(MetadataKind::RequirementsTxt)
        );
        assert_eq!(
            MetadataKind::detect("mylib.gemspec"),
            Some(MetadataKind::Gemspec)
        );
        assert_eq!(
            MetadataKind::detect("App/App.csproj"),
            Some(MetadataKind::Csproj)
        );
        assert_eq!(MetadataKind::detect("README.md"), None);
        assert_eq!(MetadataKind::detect("main.rs"), None);
    }

    #[test]
    fn detect_is_case_insensitive() {
        assert_eq!(MetadataKind::detect("GEMFILE"), Some(MetadataKind::Gemfile));
        assert_eq!(
            MetadataKind::detect("META-INF/MANIFEST.MF"),
            Some(MetadataKind::ManifestMf)
        );
    }

    #[test]
    fn every_kind_has_ecosystem_and_label() {
        for kind in MetadataKind::ALL {
            assert!(!kind.label().is_empty());
            let _ = kind.ecosystem();
        }
    }

    #[test]
    fn lockfile_classification() {
        assert!(MetadataKind::CargoLock.is_lockfile());
        assert!(MetadataKind::PnpmLock.is_lockfile());
        assert!(!MetadataKind::CargoToml.is_lockfile());
        assert!(!MetadataKind::RequirementsTxt.is_lockfile());
        assert!(!MetadataKind::GoBinary.is_lockfile());
    }

    #[test]
    fn all_kinds_are_unique() {
        let mut v = MetadataKind::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), MetadataKind::ALL.len());
    }
}

//! PHP/Composer metadata parsing: `composer.json` and `composer.lock`.

use sbomdiff_types::{ConstraintFlavor, DeclaredDependency, DepScope, Ecosystem, VersionReq};

use sbomdiff_textformats::{json, Value};

/// Parses `composer.json` `require` / `require-dev` sections. Platform
/// requirements (`php`, `ext-*`, `lib-*`, `composer-*`) are not packages and
/// are skipped, matching Packagist semantics.
pub fn parse_composer_json(text: &str) -> Vec<DeclaredDependency> {
    let Ok(doc) = json::parse(text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (section, scope) in [
        ("require", DepScope::Runtime),
        ("require-dev", DepScope::Dev),
    ] {
        if let Some(entries) = doc.get(section).and_then(Value::as_object) {
            for (name, spec) in entries {
                if is_platform_package(name) {
                    continue;
                }
                let spec_text = spec.as_str().unwrap_or_default().to_string();
                let req = VersionReq::parse(&spec_text, ConstraintFlavor::Composer).ok();
                let mut dep =
                    DeclaredDependency::new(Ecosystem::Php, name.clone(), req).with_scope(scope);
                dep.req_text = spec_text;
                out.push(dep);
            }
        }
    }
    out
}

fn is_platform_package(name: &str) -> bool {
    name == "php"
        || name.starts_with("ext-")
        || name.starts_with("lib-")
        || name.starts_with("composer-")
        || name == "composer"
}

/// Parses `composer.lock` `packages` / `packages-dev` arrays (all pinned,
/// transitive-inclusive).
pub fn parse_composer_lock(text: &str) -> Vec<DeclaredDependency> {
    let Ok(doc) = json::parse(text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (section, scope) in [
        ("packages", DepScope::Runtime),
        ("packages-dev", DepScope::Dev),
    ] {
        if let Some(entries) = doc.get(section).and_then(Value::as_array) {
            for pkg in entries {
                let Some(name) = pkg.get("name").and_then(Value::as_str) else {
                    continue;
                };
                let Some(version) = pkg.get("version").and_then(Value::as_str) else {
                    continue;
                };
                // Composer versions frequently carry a leading 'v'.
                let req = sbomdiff_types::Version::parse(version)
                    .ok()
                    .map(VersionReq::exact);
                let mut dep = DeclaredDependency::new(Ecosystem::Php, name, req).with_scope(scope);
                dep.req_text = version.to_string();
                out.push(dep);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composer_json_sections() {
        let deps = parse_composer_json(
            r#"{
  "name": "acme/app",
  "require": {
    "php": ">=8.0",
    "ext-json": "*",
    "monolog/monolog": "^3.0",
    "guzzlehttp/guzzle": "~7.5"
  },
  "require-dev": {
    "phpunit/phpunit": "^10.0"
  }
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "monolog/monolog");
        assert_eq!(deps[0].req_text, "^3.0");
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn composer_lock_pins() {
        let deps = parse_composer_lock(
            r#"{
  "packages": [
    {"name": "monolog/monolog", "version": "3.4.0"},
    {"name": "psr/log", "version": "v3.0.0"}
  ],
  "packages-dev": [
    {"name": "phpunit/phpunit", "version": "10.2.1"}
  ]
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "3.4.0");
        assert_eq!(deps[1].req_text, "v3.0.0");
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn platform_packages_skipped() {
        assert!(is_platform_package("php"));
        assert!(is_platform_package("ext-mbstring"));
        assert!(!is_platform_package("vendor/php-helper"));
    }

    #[test]
    fn malformed_is_empty() {
        assert!(parse_composer_json("nope").is_empty());
        assert!(parse_composer_lock("[1,2]").is_empty());
    }
}

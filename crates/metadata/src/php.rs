//! PHP/Composer metadata parsing: `composer.json` and `composer.lock`.

use sbomdiff_types::{
    ConstraintFlavor, DeclaredDependency, DepScope, DiagClass, Diagnostic, Ecosystem, VersionReq,
};

use sbomdiff_textformats::{json, Value};

use crate::{format_error_diag, Parsed};

/// Parses `composer.json` `require` / `require-dev` sections. Platform
/// requirements (`php`, `ext-*`, `lib-*`, `composer-*`) are not packages and
/// are skipped, matching Packagist semantics.
pub fn parse_composer_json(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("composer.json", &e)),
    };
    if doc.as_object().is_none() {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            "composer.json: document root is not an object",
        ));
    }
    let mut out = Vec::new();
    let mut diags = Vec::new();
    for (section, scope) in [
        ("require", DepScope::Runtime),
        ("require-dev", DepScope::Dev),
    ] {
        if let Some(entries) = doc.get(section).and_then(Value::as_object) {
            for (name, spec) in entries {
                if is_platform_package(name) {
                    continue;
                }
                let spec_text = spec.as_str().unwrap_or_default().to_string();
                let req = VersionReq::parse(&spec_text, ConstraintFlavor::Composer).ok();
                if req.is_none() && !spec_text.is_empty() {
                    diags.push(std::sync::Arc::new(Diagnostic::new(
                        DiagClass::InvalidVersion,
                        format!("{section}: unparsable constraint for {name}: {spec_text}"),
                    )));
                }
                let mut dep =
                    DeclaredDependency::new(Ecosystem::Php, name.clone(), req).with_scope(scope);
                dep.req_text = spec_text;
                out.push(dep);
            }
        }
    }
    Parsed { deps: out, diags }
}

fn is_platform_package(name: &str) -> bool {
    name == "php"
        || name.starts_with("ext-")
        || name.starts_with("lib-")
        || name.starts_with("composer-")
        || name == "composer"
}

/// Parses `composer.lock` `packages` / `packages-dev` arrays (all pinned,
/// transitive-inclusive).
pub fn parse_composer_lock(text: &str) -> Parsed {
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Parsed::fail(format_error_diag("composer.lock", &e)),
    };
    if doc.as_object().is_none() {
        return Parsed::fail(Diagnostic::new(
            DiagClass::MalformedFile,
            "composer.lock: document root is not an object",
        ));
    }
    let mut out = Vec::new();
    let mut diags = Vec::new();
    for (section, scope) in [
        ("packages", DepScope::Runtime),
        ("packages-dev", DepScope::Dev),
    ] {
        if let Some(entries) = doc.get(section).and_then(Value::as_array) {
            for pkg in entries {
                let Some(name) = pkg.get("name").and_then(Value::as_str) else {
                    diags.push(std::sync::Arc::new(Diagnostic::new(
                        DiagClass::MissingField,
                        format!("{section} entry without a name"),
                    )));
                    continue;
                };
                let Some(version) = pkg.get("version").and_then(Value::as_str) else {
                    diags.push(std::sync::Arc::new(Diagnostic::new(
                        DiagClass::MissingField,
                        format!("{section} entry {name} without a version"),
                    )));
                    continue;
                };
                // Composer versions frequently carry a leading 'v'.
                let req = sbomdiff_types::Version::parse(version)
                    .ok()
                    .map(VersionReq::exact);
                let mut dep = DeclaredDependency::new(Ecosystem::Php, name, req).with_scope(scope);
                dep.req_text = version.to_string();
                out.push(dep);
            }
        }
    }
    Parsed { deps: out, diags }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composer_json_sections() {
        let deps = parse_composer_json(
            r#"{
  "name": "acme/app",
  "require": {
    "php": ">=8.0",
    "ext-json": "*",
    "monolog/monolog": "^3.0",
    "guzzlehttp/guzzle": "~7.5"
  },
  "require-dev": {
    "phpunit/phpunit": "^10.0"
  }
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].name.raw(), "monolog/monolog");
        assert_eq!(deps[0].req_text, "^3.0");
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn composer_lock_pins() {
        let deps = parse_composer_lock(
            r#"{
  "packages": [
    {"name": "monolog/monolog", "version": "3.4.0"},
    {"name": "psr/log", "version": "v3.0.0"}
  ],
  "packages-dev": [
    {"name": "phpunit/phpunit", "version": "10.2.1"}
  ]
}"#,
        );
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].pinned_version().unwrap().to_string(), "3.4.0");
        assert_eq!(deps[1].req_text, "v3.0.0");
        assert_eq!(deps[2].scope, DepScope::Dev);
    }

    #[test]
    fn platform_packages_skipped() {
        assert!(is_platform_package("php"));
        assert!(is_platform_package("ext-mbstring"));
        assert!(!is_platform_package("vendor/php-helper"));
    }

    #[test]
    fn malformed_is_empty() {
        assert!(parse_composer_json("nope").is_empty());
        assert!(parse_composer_lock("[1,2]").is_empty());
    }

    #[test]
    fn malformed_carries_classified_diagnostics() {
        let p = parse_composer_json("nope");
        assert!(p.is_empty());
        assert!(!p.diags.is_empty());
        // Valid JSON with the wrong root shape is still a malformed lock.
        let p = parse_composer_lock("[1,2]");
        assert_eq!(p.diags[0].class, DiagClass::MalformedFile);
        // Lock entries missing structurally-required fields are recorded.
        let p = parse_composer_lock(r#"{"packages": [{"name": "a/b"}]}"#);
        assert!(p.is_empty());
        assert_eq!(p.diags[0].class, DiagClass::MissingField);
    }
}

//! Benchmarks of the serving tier's per-request hot path (DESIGN.md §18):
//! incremental HTTP/1.1 request parsing as the reactor sees it, response
//! serialization, and the preserialized zero-copy cache-hit write.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_service::http::{parse_request, ParseStatus, Response};
use sbomdiff_service::respcache::{CacheEntry, ResponseCache};

fn analyze_request(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/analyze HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn bench_parse_request(c: &mut Criterion) {
    let body = r#"{"files":{"requirements.txt":"numpy==1.19.2\nflask>=2.0\n"},"seed":42}"#;
    let wire = analyze_request(body);
    let mut group = c.benchmark_group("service_http");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse_request_complete", |b| {
        b.iter(|| match parse_request(black_box(&wire)) {
            ParseStatus::Complete { consumed, .. } => consumed,
            _ => unreachable!("complete request must parse"),
        })
    });
    // The reactor re-parses from the partial prefix every fill until the
    // head completes; the incomplete path must stay cheap.
    let head_only = &wire[..wire.len() - body.len() - 2];
    group.bench_function("parse_request_partial", |b| {
        b.iter(|| matches!(parse_request(black_box(head_only)), ParseStatus::Partial(_)))
    });
    group.finish();
}

fn bench_response_paths(c: &mut Criterion) {
    let response = Response::json(200, r#"{"ok":true,"tools":4,"jaccard":0.273}"#.as_bytes());
    let entry = Arc::new(CacheEntry::new(response.clone()));
    let mut group = c.benchmark_group("service_response");
    // Cold path: a miss serializes headers + body into a fresh buffer.
    group.bench_function("serialize_miss", |b| {
        b.iter(|| black_box(&response).serialize(false))
    });
    // Hot path: a keep-alive hit clones the Arc of preserialized bytes.
    group.bench_function("cache_hit_shared", |b| {
        b.iter(|| Arc::clone(black_box(&entry.wire)))
    });
    group.bench_function("cache_key", |b| {
        let body = br#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#;
        b.iter(|| ResponseCache::key(black_box("/v1/analyze"), black_box(body)))
    });
    group.finish();
}

criterion_group!(benches, bench_parse_request, bench_response_paths);
criterion_main!(benches);

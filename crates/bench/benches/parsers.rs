//! Micro-benchmarks of the metadata parsers (the per-file cost every SBOM
//! generator pays).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::{dotnet, golang, java, javascript, php, python, ruby, rust_lang};

fn requirements_input(lines: usize) -> String {
    let mut out = String::new();
    for i in 0..lines {
        match i % 5 {
            0 => out.push_str(&format!("package-{i}==1.{}.{}\n", i % 20, i % 7)),
            1 => out.push_str(&format!("package-{i}>={}.0\n", i % 9)),
            2 => out.push_str(&format!("package-{i}\n")),
            3 => out.push_str(&format!("package-{i}[extra]~=2.{}\n", i % 5)),
            _ => out.push_str(&format!("package-{i}>=1.0,<2.0; python_version >= '3.8'\n")),
        }
    }
    out
}

fn bench_requirements(c: &mut Criterion) {
    let input = requirements_input(200);
    let mut group = c.benchmark_group("requirements_txt");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for (label, style) in [
        ("pip_reference", ReqStyle::Pip),
        ("trivy_syft", ReqStyle::TrivySyft),
        ("sbom_tool", ReqStyle::SbomTool),
        ("github_dg", ReqStyle::GithubDg),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| python::parse_requirements(black_box(&input), style))
        });
    }
    group.finish();
}

fn bench_lockfiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("lockfiles");

    let mut package_lock = String::from("{\"lockfileVersion\": 3, \"packages\": {\"\": {},");
    for i in 0..300 {
        package_lock.push_str(&format!(
            "\"node_modules/pkg-{i}\": {{\"version\": \"1.{}.{}\", \"dev\": {}}},",
            i % 30,
            i % 11,
            i % 3 == 0
        ));
    }
    package_lock.pop();
    package_lock.push_str("}}");
    group.throughput(Throughput::Bytes(package_lock.len() as u64));
    group.bench_function("package_lock_json", |b| {
        b.iter(|| javascript::parse_package_lock(black_box(&package_lock)))
    });

    let mut cargo_lock = String::from("version = 3\n");
    for i in 0..300 {
        cargo_lock.push_str(&format!(
            "\n[[package]]\nname = \"crate-{i}\"\nversion = \"0.{}.{}\"\n",
            i % 40,
            i % 13
        ));
    }
    group.bench_function("cargo_lock", |b| {
        b.iter(|| rust_lang::parse_cargo_lock(black_box(&cargo_lock)))
    });

    let mut gemfile_lock = String::from("GEM\n  remote: https://rubygems.org/\n  specs:\n");
    for i in 0..300 {
        gemfile_lock.push_str(&format!("    gem-{i} (2.{}.{})\n", i % 25, i % 9));
    }
    gemfile_lock.push_str("\nDEPENDENCIES\n  gem-0\n");
    group.bench_function("gemfile_lock", |b| {
        b.iter(|| ruby::parse_gemfile_lock(black_box(&gemfile_lock)))
    });

    let mut go_sum = String::new();
    for i in 0..300 {
        go_sum.push_str(&format!(
            "github.com/org{}/mod-{i} v1.{}.{} h1:hash=\n",
            i % 50,
            i % 20,
            i % 7
        ));
    }
    group.bench_function("go_sum", |b| {
        b.iter(|| golang::parse_go_sum(black_box(&go_sum)))
    });
    group.finish();
}

fn bench_raw_metadata(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw_metadata");

    let mut pom = String::from("<project><groupId>g</groupId><artifactId>a</artifactId><version>1.0</version><dependencies>");
    for i in 0..120 {
        pom.push_str(&format!(
            "<dependency><groupId>org.g{}</groupId><artifactId>art-{i}</artifactId><version>3.{}.{}</version></dependency>",
            i % 15, i % 10, i % 6
        ));
    }
    pom.push_str("</dependencies></project>");
    group.bench_function("pom_xml", |b| {
        b.iter(|| java::parse_pom_xml(black_box(&pom)))
    });

    let mut composer = String::from("{\"require\": {");
    for i in 0..120 {
        composer.push_str(&format!("\"vendor{}/pkg-{i}\": \"^{}.0\",", i % 20, i % 8));
    }
    composer.pop();
    composer.push_str("}}");
    group.bench_function("composer_json", |b| {
        b.iter(|| php::parse_composer_json(black_box(&composer)))
    });

    let mut csproj = String::from("<Project><ItemGroup>");
    for i in 0..120 {
        csproj.push_str(&format!(
            "<PackageReference Include=\"Pkg.Number{i}\" Version=\"4.{}.{}\" />",
            i % 12,
            i % 5
        ));
    }
    csproj.push_str("</ItemGroup></Project>");
    group.bench_function("csproj", |b| {
        b.iter(|| dotnet::parse_csproj(black_box(&csproj)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_requirements,
    bench_lockfiles,
    bench_raw_metadata
);
criterion_main!(benches);

//! Benchmarks of the text-format substrate (JSON/TOML/YAML/XML) and the
//! CycloneDX / SPDX document layer.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_textformats::{json, toml, xml, yaml};
use sbomdiff_types::{Component, Ecosystem, Purl, Sbom};

fn big_json(entries: usize) -> String {
    let mut s = String::from("{\"items\": [");
    for i in 0..entries {
        s.push_str(&format!(
            "{{\"name\": \"pkg-{i}\", \"version\": \"1.{}.{}\", \"dev\": {}, \"deps\": [\"a\", \"b\"]}},",
            i % 30,
            i % 7,
            i % 2 == 0
        ));
    }
    s.pop();
    s.push_str("]}");
    s
}

fn bench_container_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_formats");

    let json_doc = big_json(500);
    group.throughput(Throughput::Bytes(json_doc.len() as u64));
    group.bench_function("json_parse", |b| {
        b.iter(|| json::parse(black_box(&json_doc)).unwrap())
    });
    let parsed = json::parse(&json_doc).unwrap();
    group.bench_function("json_emit_pretty", |b| {
        b.iter(|| json::to_string_pretty(black_box(&parsed)))
    });

    let mut toml_doc = String::from("version = 3\n");
    for i in 0..300 {
        toml_doc.push_str(&format!(
            "\n[[package]]\nname = \"p{i}\"\nversion = \"1.{}.0\"\ndependencies = [\"a\", \"b\"]\n",
            i % 9
        ));
    }
    group.bench_function("toml_parse", |b| {
        b.iter(|| toml::parse(black_box(&toml_doc)).unwrap())
    });

    let mut yaml_doc = String::from("packages:\n\n");
    for i in 0..300 {
        yaml_doc.push_str(&format!(
            "  /pkg-{i}@2.{}.{}:\n    resolution: {{integrity: sha512-x}}\n    dev: false\n\n",
            i % 12,
            i % 5
        ));
    }
    group.bench_function("yaml_parse", |b| {
        b.iter(|| yaml::parse(black_box(&yaml_doc)).unwrap())
    });

    let mut xml_doc = String::from("<root>");
    for i in 0..300 {
        xml_doc.push_str(&format!(
            "<item attr=\"v{i}\"><name>n{i}</name><version>3.{}</version></item>",
            i % 8
        ));
    }
    xml_doc.push_str("</root>");
    group.bench_function("xml_parse", |b| {
        b.iter(|| xml::parse(black_box(&xml_doc)).unwrap())
    });
    group.finish();
}

fn sample_sbom(components: usize) -> Sbom {
    let mut sbom = Sbom::new("bench-tool", "1.0").with_subject("bench-repo");
    for i in 0..components {
        let name = format!("pkg-{i}");
        let version = format!("1.{}.{}", i % 30, i % 7);
        sbom.push(
            Component::new(Ecosystem::Python, &name, Some(version.clone()))
                .with_found_in("requirements.txt")
                .with_purl(Purl::for_package(Ecosystem::Python, &name, Some(&version))),
        );
    }
    sbom
}

fn bench_sbom_documents(c: &mut Criterion) {
    let sbom = sample_sbom(400);
    let mut group = c.benchmark_group("sbom_documents");
    for format in [
        SbomFormat::CycloneDx,
        SbomFormat::Spdx,
        SbomFormat::SpdxTagValue,
    ] {
        let label = match format {
            SbomFormat::CycloneDx => "cyclonedx",
            SbomFormat::Spdx => "spdx",
            SbomFormat::SpdxTagValue => "spdx-tag-value",
        };
        group.bench_function(format!("{label}_serialize"), |b| {
            b.iter(|| format.serialize(black_box(&sbom)))
        });
        let text = format.serialize(&sbom);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(format!("{label}_parse"), |b| {
            b.iter(|| format.parse(black_box(&text)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_container_formats, bench_sbom_documents);
criterion_main!(benches);

//! One benchmark group per paper artifact: measures the cost of
//! regenerating each table/figure pipeline at reduced scale. The artifact
//! *contents* are produced by `cargo run -p sbomdiff-experiments`; these
//! benches track the pipelines' performance.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sbomdiff_attack::evaluate::evaluate_catalog;
use sbomdiff_benchx as benchx;
use sbomdiff_corpus::{Corpus, CorpusConfig, CorpusStats};
use sbomdiff_diff::{duplicate_rate, jaccard, key_set, PrecisionRecall};
use sbomdiff_generators::{studied_tools, SbomGenerator, ToolEmulator};
use sbomdiff_registry::Registries;
use sbomdiff_resolver::{dry_run, Platform};
use sbomdiff_types::{Ecosystem, Sbom};

struct Fixture {
    regs: Registries,
    repos: Vec<sbomdiff_metadata::RepoFs>,
    sboms: Vec<Vec<Sbom>>,
}

fn fixture(eco: Ecosystem, n: usize) -> Fixture {
    let regs = Registries::generate(1001);
    let repos = Corpus::build_language(
        &regs,
        &CorpusConfig {
            repos_per_language: n,
            seed: 77,
        },
        eco,
    );
    let tools = studied_tools(&regs, 0.15);
    let sboms = repos
        .iter()
        .map(|r| tools.iter().map(|t| t.generate(r)).collect())
        .collect();
    Fixture { regs, repos, sboms }
}

/// Fig. 1 pipeline: corpus → 4 tools → per-repo counts.
fn fig1_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::Python, 10);
    c.bench_function("fig1_counts_pipeline", |b| {
        let tools = studied_tools(&f.regs, 0.15);
        b.iter(|| {
            let mut totals = [0usize; 4];
            for repo in &f.repos {
                for (i, t) in tools.iter().enumerate() {
                    totals[i] += t.generate(black_box(repo)).len();
                }
            }
            totals
        })
    });
}

/// Fig. 2 pipeline: pairwise Jaccard over generated SBOMs.
fn fig2_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::JavaScript, 10);
    c.bench_function("fig2_jaccard_pipeline", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for sboms in &f.sboms {
                for a in 0..4 {
                    for bx in (a + 1)..4 {
                        if let Some(j) = jaccard(&key_set(&sboms[a]), &key_set(&sboms[bx])) {
                            sum += j;
                        }
                    }
                }
            }
            sum
        })
    });
}

/// Table I pipeline: duplicate rates.
fn table1_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::Java, 10);
    c.bench_function("table1_duplicates_pipeline", |b| {
        b.iter(|| {
            (0..4)
                .map(|i| duplicate_rate(f.sboms.iter().map(|s| &s[i])))
                .collect::<Vec<f64>>()
        })
    });
}

/// Table III pipeline: pip dry run + precision/recall scoring.
fn table3_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::Python, 10);
    let platform = Platform::default();
    c.bench_function("table3_accuracy_pipeline", |b| {
        let registry = f.regs.for_ecosystem(Ecosystem::Python);
        b.iter(|| {
            let mut total = PrecisionRecall::default();
            for (repo, sboms) in f.repos.iter().zip(&f.sboms) {
                let truth: std::collections::BTreeSet<(String, String)> =
                    dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                        .keys()
                        .collect();
                let reported: std::collections::BTreeSet<(String, String)> = sboms[0]
                    .components()
                    .iter()
                    .map(|c| {
                        (
                            c.name.to_string(),
                            c.version.as_deref().unwrap_or_default().to_string(),
                        )
                    })
                    .collect();
                total.merge(PrecisionRecall::score(&reported, &truth));
            }
            total
        })
    });
}

/// Table IV pipeline: the full attack catalog evaluation.
fn table4_pipeline(c: &mut Criterion) {
    let regs = Registries::generate(1001);
    c.bench_function("table4_attack_pipeline", |b| {
        b.iter(|| evaluate_catalog(black_box(&regs), true))
    });
}

/// §V stats pipeline: corpus introspection.
fn stats_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::Python, 10);
    c.bench_function("stats_pipeline", |b| {
        b.iter(|| CorpusStats::compute(Ecosystem::Python, black_box(&f.repos)))
    });
}

/// §VII benchmark pipeline: grade one tool on all crafted cases.
fn benchscore_pipeline(c: &mut Criterion) {
    let cases = benchx::cases::all_cases();
    c.bench_function("benchscore_pipeline", |b| {
        let tool = ToolEmulator::github_dg();
        b.iter(|| benchx::score_generator(&tool, black_box(&cases)))
    });
}

/// Vulnerability-impact pipeline: advisory DB + SBOM scan vs ground truth.
fn vulnimpact_pipeline(c: &mut Criterion) {
    let f = fixture(Ecosystem::Python, 10);
    let db = sbomdiff_vuln::AdvisoryDb::generate(&f.regs, 1, 0.25);
    let platform = Platform::default();
    c.bench_function("vulnimpact_pipeline", |b| {
        let registry = f.regs.for_ecosystem(Ecosystem::Python);
        b.iter(|| {
            let mut missed = 0usize;
            for (repo, sboms) in f.repos.iter().zip(&f.sboms) {
                let truth = dry_run(registry, &repo.text_files(), "requirements.txt", &platform);
                for sbom in sboms {
                    missed += sbomdiff_vuln::assess(&db, sbom, &truth.installed)
                        .missed
                        .len();
                }
            }
            missed
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets =
    fig1_pipeline,
    fig2_pipeline,
    table1_pipeline,
    table3_pipeline,
    table4_pipeline,
    stats_pipeline,
    benchscore_pipeline,
    vulnimpact_pipeline
);
criterion_main!(benches);

//! Tiered-matcher benchmarks: the LSH-gated tier-3 candidate path against
//! the brute-force same-ecosystem cross product, on the synthetic
//! divergent-spelling corpus from `sbomdiff_bench::matching_corpus`.
//!
//! The default run stays at 1k components per side so `cargo bench` and the
//! CI `--test` smoke stay fast; set `MATCHING_BENCH_FULL=1` to add the 10k
//! and (LSH-only) 100k sizes. The committed medians and the headline
//! LSH-vs-brute ratio live in `BENCH_matching.json`, emitted by
//! `cargo run -p sbomdiff-bench --bin matching_bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_bench::matching_corpus::sbom_pair;
use sbomdiff_matching::{match_sboms, MatchConfig};

fn bench_matching(c: &mut Criterion) {
    let full = std::env::var_os("MATCHING_BENCH_FULL").is_some();
    let mut group = c.benchmark_group("matching_lsh");
    let sizes: &[usize] = if full { &[1_000, 10_000] } else { &[1_000] };
    for &n in sizes {
        let (a, b) = sbom_pair(n, 77);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("lsh_{n}"), |bench| {
            bench.iter(|| match_sboms(black_box(&a), black_box(&b), &MatchConfig::default()))
        });
        group.bench_function(format!("brute_{n}"), |bench| {
            let cfg = MatchConfig {
                brute_force: true,
                ..MatchConfig::default()
            };
            bench.iter(|| match_sboms(black_box(&a), black_box(&b), &cfg))
        });
    }
    if full {
        // Brute force at 100k would enumerate ~2e9 candidate pairs; only
        // the LSH path is tractable at this size.
        let (a, b) = sbom_pair(100_000, 77);
        group.throughput(Throughput::Elements(100_000));
        group.bench_function("lsh_100000", |bench| {
            bench.iter(|| match_sboms(black_box(&a), black_box(&b), &MatchConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);

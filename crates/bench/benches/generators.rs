//! End-to-end SBOM generation benchmarks: one repository per ecosystem,
//! scanned by each emulated tool and by the best-practice generator.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_generators::{BestPracticeGenerator, SbomGenerator, ToolEmulator};
use sbomdiff_registry::Registries;
use sbomdiff_types::Ecosystem;

fn bench_tools_per_language(c: &mut Criterion) {
    let regs = Registries::generate(33);
    let config = CorpusConfig {
        repos_per_language: 1,
        seed: 8,
    };
    let mut group = c.benchmark_group("generate_sbom");
    for eco in [
        Ecosystem::Python,
        Ecosystem::JavaScript,
        Ecosystem::Go,
        Ecosystem::Rust,
    ] {
        let repos = Corpus::build_language(&regs, &config, eco);
        let repo = &repos[0];
        let label = eco.label().to_lowercase();
        group.bench_function(format!("trivy_{label}"), |b| {
            let tool = ToolEmulator::trivy();
            b.iter(|| tool.generate(black_box(repo)))
        });
        group.bench_function(format!("syft_{label}"), |b| {
            let tool = ToolEmulator::syft();
            b.iter(|| tool.generate(black_box(repo)))
        });
        group.bench_function(format!("sbom_tool_{label}"), |b| {
            let tool = ToolEmulator::sbom_tool(&regs, 0.15);
            b.iter(|| tool.generate(black_box(repo)))
        });
        group.bench_function(format!("github_dg_{label}"), |b| {
            let tool = ToolEmulator::github_dg();
            b.iter(|| tool.generate(black_box(repo)))
        });
    }
    group.finish();
}

fn bench_best_practice(c: &mut Criterion) {
    let regs = Registries::generate(33);
    let repos = Corpus::build_language(
        &regs,
        &CorpusConfig {
            repos_per_language: 1,
            seed: 8,
        },
        Ecosystem::Python,
    );
    let repo = &repos[0];
    c.bench_function("best_practice_python", |b| {
        let generator = BestPracticeGenerator::new(&regs);
        b.iter(|| generator.generate(black_box(repo)))
    });
}

fn bench_corpus_generation(c: &mut Criterion) {
    let regs = Registries::generate(33);
    c.bench_function("corpus_python_10_repos", |b| {
        b.iter(|| {
            Corpus::build_language(
                &regs,
                &CorpusConfig {
                    repos_per_language: 10,
                    seed: 3,
                },
                Ecosystem::Python,
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets =
    bench_tools_per_language,
    bench_best_practice,
    bench_corpus_generation
);
criterion_main!(benches);

//! Shared-scan pipeline benchmarks: parse, emulate and diff, on small /
//! medium / large synthetic repo sets, comparing the isolated per-profile
//! path (`scan_isolated`, the pre-sharing behavior) against the shared
//! [`ScanContext`] path.
//!
//! These track the *ratio*; the committed before/after medians live in
//! `BENCH_pipeline.json`, emitted by `cargo run -p sbomdiff-bench`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_diff::{jaccard, key_set};
use sbomdiff_generators::{studied_tools, ParseCache, ScanContext};
use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_types::{Ecosystem, Sbom};

const SIZES: [(&str, usize); 3] = [("small", 1), ("medium", 4), ("large", 12)];

fn corpus(regs: &Registries, repos_per_language: usize) -> Vec<RepoFs> {
    let mut repos = Vec::new();
    for eco in [
        Ecosystem::Python,
        Ecosystem::JavaScript,
        Ecosystem::Go,
        Ecosystem::Rust,
    ] {
        repos.extend(Corpus::build_language(
            regs,
            &CorpusConfig {
                repos_per_language,
                seed: 99,
            },
            eco,
        ));
    }
    repos
}

/// Raw parse cost: every metadata file of a repo set, cold cache vs the
/// same files served out of a warmed cache.
fn bench_parse(c: &mut Criterion) {
    let regs = Registries::generate(99);
    let mut group = c.benchmark_group("pipeline_parse");
    for (label, n) in SIZES {
        let repos = corpus(&regs, n);
        let files: usize = repos.iter().map(|r| r.metadata_files().len()).sum();
        group.throughput(Throughput::Elements(files as u64));
        group.bench_function(format!("cold_{label}"), |b| {
            b.iter(|| {
                let cache = ParseCache::new();
                let mut deps = 0usize;
                for repo in &repos {
                    for (path, kind) in repo.metadata_files() {
                        deps += cache
                            .parse(black_box(repo), path, kind, ReqStyle::TrivySyft)
                            .len();
                    }
                }
                deps
            })
        });
        let warmed = ParseCache::new();
        for repo in &repos {
            for (path, kind) in repo.metadata_files() {
                warmed.parse(repo, path, kind, ReqStyle::TrivySyft);
            }
        }
        group.bench_function(format!("warm_{label}"), |b| {
            b.iter(|| {
                let mut deps = 0usize;
                for repo in &repos {
                    for (path, kind) in repo.metadata_files() {
                        deps += warmed
                            .parse(black_box(repo), path, kind, ReqStyle::TrivySyft)
                            .len();
                    }
                }
                deps
            })
        });
    }
    group.finish();
}

/// The 4-profile corpus scan: isolated per-profile parses vs one shared
/// scan per repository.
fn bench_emulate(c: &mut Criterion) {
    let regs = Registries::generate(99);
    let tools = studied_tools(&regs, 0.15);
    let mut group = c.benchmark_group("pipeline_emulate");
    for (label, n) in SIZES {
        let repos = corpus(&regs, n);
        group.throughput(Throughput::Elements(repos.len() as u64 * 4));
        group.bench_function(format!("isolated_{label}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for repo in &repos {
                    for tool in &tools {
                        total += tool.scan_isolated(black_box(repo)).len();
                    }
                }
                total
            })
        });
        group.bench_function(format!("shared_{label}"), |b| {
            b.iter(|| {
                let cache = ParseCache::new();
                let mut total = 0usize;
                for repo in &repos {
                    let scan = ScanContext::new(black_box(repo), &cache);
                    for tool in &tools {
                        total += tool.generate_with_scan(&scan).len();
                    }
                }
                total
            })
        });
    }
    group.finish();
}

/// Pairwise differential metrics over the 4 profiles' SBOMs (the diff
/// stage consumes interned components; key-set extraction is the hot op).
fn bench_diff(c: &mut Criterion) {
    let regs = Registries::generate(99);
    let tools = studied_tools(&regs, 0.15);
    let mut group = c.benchmark_group("pipeline_diff");
    for (label, n) in SIZES {
        let repos = corpus(&regs, n);
        let cache = ParseCache::new();
        let sboms: Vec<[Sbom; 4]> = repos
            .iter()
            .map(|repo| {
                let scan = ScanContext::new(repo, &cache);
                [
                    tools[0].generate_with_scan(&scan),
                    tools[1].generate_with_scan(&scan),
                    tools[2].generate_with_scan(&scan),
                    tools[3].generate_with_scan(&scan),
                ]
            })
            .collect();
        group.throughput(Throughput::Elements(sboms.len() as u64 * 6));
        group.bench_function(format!("pairwise_{label}"), |b| {
            b.iter(|| {
                let mut sum = 0.0;
                for cells in &sboms {
                    let keys: Vec<_> = cells.iter().map(key_set).collect();
                    for a in 0..4 {
                        for z in (a + 1)..4 {
                            if let Some(j) = jaccard(&keys[a], &keys[z]) {
                                sum += j;
                            }
                        }
                    }
                }
                sum
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets =
    bench_parse,
    bench_emulate,
    bench_diff
);
criterion_main!(benches);

//! Benchmarks of the registry substrate and dependency resolution,
//! including the pip dry-run ground-truth engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbomdiff_registry::{PackageUniverse, Registries, UniverseConfig};
use sbomdiff_resolver::{
    dry_run,
    engine::{resolve, DedupPolicy, RootDep},
    Platform,
};
use sbomdiff_types::Ecosystem;

fn bench_universe_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_generation");
    for count in [100usize, 400, 800] {
        group.bench_with_input(BenchmarkId::new("python", count), &count, |b, &count| {
            b.iter(|| {
                PackageUniverse::generate(&UniverseConfig {
                    package_count: count,
                    ..UniverseConfig::for_ecosystem(Ecosystem::Python, 9)
                })
            })
        });
    }
    group.finish();
}

fn bench_resolution(c: &mut Criterion) {
    let uni = PackageUniverse::generate(&UniverseConfig::for_ecosystem(Ecosystem::JavaScript, 7));
    let names: Vec<String> = uni.package_names().map(str::to_string).collect();
    let roots: Vec<RootDep> = names
        .iter()
        .rev()
        .take(20)
        .map(|n| RootDep::new(n.clone(), None))
        .collect();
    let mut group = c.benchmark_group("resolution");
    for policy in [
        DedupPolicy::HighestWins,
        DedupPolicy::FirstWins,
        DedupPolicy::PerMajor,
    ] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| resolve(black_box(&uni), black_box(&roots), policy, true))
        });
    }
    group.finish();
}

fn bench_dry_run(c: &mut Criterion) {
    let regs = Registries::generate(5);
    let uni = regs.for_ecosystem(Ecosystem::Python);
    let names: Vec<String> = uni.package_names().map(str::to_string).collect();
    let mut requirements = String::new();
    for (i, n) in names.iter().rev().take(25).enumerate() {
        match i % 3 {
            0 => requirements.push_str(&format!("{n}\n")),
            1 => requirements.push_str(&format!("{n}>=0.1\n")),
            _ => requirements.push_str(&format!("{n}; python_version >= '3.8'\n")),
        }
    }
    let files: std::collections::BTreeMap<String, String> =
        [("requirements.txt".to_string(), requirements)].into();
    let platform = Platform::default();
    c.bench_function("pip_dry_run_ground_truth", |b| {
        b.iter(|| dry_run(uni, black_box(&files), "requirements.txt", &platform))
    });
}

criterion_group!(
    benches,
    bench_universe_generation,
    bench_resolution,
    bench_dry_run
);
criterion_main!(benches);

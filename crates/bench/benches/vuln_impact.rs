//! Benchmarks of the vulnerability-impact enrichment path (DESIGN.md
//! §19): OSV range evaluation, indexed advisory matching, the TTL'd
//! enrichment cache on its warm path, and OSV feed (de)serialization —
//! the pieces `POST /v1/impact` and `experiments vuln` sit on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_registry::Registries;
use sbomdiff_types::{Component, Ecosystem, ResolvedPackage, Sbom, Version};
use sbomdiff_vuln::{assess_cached, db_to_osv_json, ingest_osv, AdvisoryDb, EnrichCache};

fn world() -> (Registries, AdvisoryDb) {
    let registries = Registries::generate(8);
    let db = AdvisoryDb::generate(&registries, 77, 0.3);
    (registries, db)
}

/// A scan pair over every vulnerable Python package: the SBOM names each
/// package at its oldest published version, the truth installs the same
/// set — enough lookups to exercise matching and the cache realistically.
fn scan_pair(registries: &Registries, db: &AdvisoryDb) -> (Sbom, Vec<ResolvedPackage>) {
    let mut sbom = Sbom::new("bench-tool", "1.0").with_subject("bench-repo");
    let mut truth = Vec::new();
    for (eco, universe) in registries.iter() {
        if eco != Ecosystem::Python {
            continue;
        }
        for (name, published) in universe.entries() {
            let canonical = sbomdiff_types::name::normalize(eco, name);
            if db.for_package(eco, &canonical).is_empty() || published.is_empty() {
                continue;
            }
            let version = published[0].version.clone();
            sbom.push(Component::new(eco, name, Some(version.to_unprefixed())));
            truth.push(ResolvedPackage::direct(canonical, version));
        }
    }
    assert!(truth.len() > 10, "bench scan too small: {}", truth.len());
    (sbom, truth)
}

fn bench_matching(c: &mut Criterion) {
    let (registries, db) = world();
    let (_, truth) = scan_pair(&registries, &db);
    let mut group = c.benchmark_group("vuln_matching");
    // The per-component hot loop: indexed lookup plus the sorted event
    // walk of every range of every advisory on the package.
    group.throughput(Throughput::Elements(truth.len() as u64));
    group.bench_function("matching_indexed", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for pkg in &truth {
                hits += db
                    .matching(Ecosystem::Python, black_box(&pkg.name), &pkg.version)
                    .len();
            }
            hits
        })
    });
    let probe = Version::parse("1.4.2").unwrap();
    group.bench_function("range_walk_single", |b| {
        let advisory = &db.advisories()[0];
        b.iter(|| advisory.affects(black_box(&probe)))
    });
    group.finish();
}

fn bench_enrichment(c: &mut Criterion) {
    let (registries, db) = world();
    let (sbom, truth) = scan_pair(&registries, &db);
    let mut group = c.benchmark_group("vuln_enrichment");
    group.throughput(Throughput::Elements(truth.len() as u64));
    // Warm path: every `(ecosystem, package)` already cached — this is
    // what repeated /v1/impact batches over one advisory universe see.
    group.bench_function("assess_cached_warm", |b| {
        let cache = EnrichCache::new();
        assess_cached(&cache, &db, Ecosystem::Python, &sbom, &truth).expect("no faults installed");
        b.iter(|| {
            assess_cached(&cache, &db, Ecosystem::Python, black_box(&sbom), &truth)
                .expect("no faults installed")
        })
    });
    // Cold path: a fresh cache per iteration pays every fill.
    group.bench_function("assess_cached_cold", |b| {
        b.iter(|| {
            let cache = EnrichCache::new();
            assess_cached(&cache, &db, Ecosystem::Python, black_box(&sbom), &truth)
                .expect("no faults installed")
        })
    });
    group.finish();
}

fn bench_osv_roundtrip(c: &mut Criterion) {
    let (_, db) = world();
    let json = db_to_osv_json(&db);
    let mut group = c.benchmark_group("vuln_osv");
    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function("serialize_feed", |b| {
        b.iter(|| db_to_osv_json(black_box(&db)))
    });
    group.bench_function("ingest_feed", |b| {
        b.iter(|| {
            let (back, diagnostics) =
                ingest_osv(black_box(json.as_bytes())).expect("clean feed ingests");
            assert!(diagnostics.is_empty());
            back.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_enrichment,
    bench_osv_roundtrip
);
criterion_main!(benches);

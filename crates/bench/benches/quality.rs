//! Benchmarks of the NTIA-minimum quality scorer (DESIGN.md §20) over the
//! synthetic corpus: per-document `evaluate` on emulator output (sparse
//! fields, fast failure paths) and on best-practice output (every check
//! passes, the full-walk worst case), plus the checklist over a single
//! large document.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_generators::{BestPracticeGenerator, SbomGenerator, ToolEmulator};
use sbomdiff_quality::evaluate;
use sbomdiff_registry::Registries;
use sbomdiff_types::{Component, Ecosystem, Sbom};

/// Emulator and best-practice documents for every repo of a small
/// multi-language corpus — the same population `experiments quality`
/// scores.
fn corpus_documents() -> (Vec<Sbom>, Vec<Sbom>) {
    let regs = Registries::generate(99);
    let config = CorpusConfig {
        repos_per_language: 4,
        seed: 99,
    };
    let syft = ToolEmulator::syft();
    let best = BestPracticeGenerator::new(&regs);
    let mut sparse = Vec::new();
    let mut full = Vec::new();
    for eco in [
        Ecosystem::Python,
        Ecosystem::JavaScript,
        Ecosystem::Go,
        Ecosystem::Rust,
    ] {
        for repo in Corpus::build_language(&regs, &config, eco) {
            sparse.push(syft.generate(&repo));
            full.push(best.generate(&repo));
        }
    }
    (sparse, full)
}

fn bench_corpus(c: &mut Criterion) {
    let (sparse, full) = corpus_documents();
    let components: u64 = full.iter().map(|s| s.len() as u64).sum();
    let mut group = c.benchmark_group("quality_corpus");
    group.throughput(Throughput::Elements(components));
    group.bench_function("evaluate_emulator_docs", |b| {
        b.iter(|| {
            sparse
                .iter()
                .map(|s| evaluate(black_box(s)).score())
                .sum::<f64>()
        })
    });
    group.bench_function("evaluate_best_practice_docs", |b| {
        b.iter(|| {
            full.iter()
                .map(|s| evaluate(black_box(s)).score())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_large_document(c: &mut Criterion) {
    // One wide document: the per-component loop dominates, so this is the
    // /v1/analyze marginal cost of `"quality": true` on a big scan.
    const N: usize = 10_000;
    let mut sbom = Sbom::new("bench-tool", "1.0")
        .with_subject("bench-repo")
        .with_timestamp("2024-06-24T00:00:00Z");
    for i in 0..N {
        let mut comp = Component::new(Ecosystem::Python, format!("pkg-{i}"), Some("1.0.0".into()));
        comp.supplier = Some(format!("pypi:pkg-{i}").into());
        sbom.push(comp);
    }
    let mut group = c.benchmark_group("quality_large_doc");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("evaluate_10k_components", |b| {
        b.iter(|| evaluate(black_box(&sbom)).score())
    });
    group.finish();
}

criterion_group!(benches, bench_corpus, bench_large_document);
criterion_main!(benches);

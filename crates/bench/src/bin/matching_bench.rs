//! Emits `BENCH_matching.json`: wall-clock medians for the tiered matcher
//! at 1k / 10k / 100k components per side, comparing the LSH-gated tier-3
//! candidate path against the brute-force same-ecosystem cross product.
//!
//! Brute force is *measured* at 1k and 10k. At 100k the cross product is
//! ~2×10⁹ candidate pairs — materializing it is exactly the cost the LSH
//! index exists to avoid — so the brute figure is extrapolated
//! quadratically from the measured 10k median and labeled
//! `"brute_mode": "extrapolated-quadratic"` in the artifact. The LSH path
//! is measured end-to-end at every size, and the run asserts that both
//! paths produce the same number of matched pairs where brute is measured.
//!
//! ```text
//! cargo run --release -p sbomdiff-bench --bin matching_bench \
//!     [--iters K] [--max-size N] [--out PATH]
//! ```

use std::time::Instant;

use sbomdiff_bench::matching_corpus::sbom_pair;
use sbomdiff_matching::{match_sboms, MatchConfig};
use sbomdiff_textformats::{json, Value};

const SEED: u64 = 77;
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Brute force is only measured up to this size; beyond it the quadratic
/// candidate set stops fitting in time and memory budgets.
const BRUTE_MEASURED_MAX: usize = 10_000;

struct Args {
    iters: usize,
    max_size: usize,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: matching_bench [--iters K] [--max-size N] [--out PATH]\n\
         \n\
         --iters K     timed iterations per scenario, median reported (default 3)\n\
         --max-size N  skip scenario sizes above N (default 100000)\n\
         --out PATH    output path (default BENCH_matching.json)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 3,
        max_size: 100_000,
        out: "BENCH_matching.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--iters" => args.iters = value(i).parse().unwrap_or_else(|_| usage()),
            "--max-size" => args.max_size = value(i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value(i),
            _ => usage(),
        }
        i += 2;
    }
    if args.iters == 0 || args.max_size == 0 {
        usage();
    }
    args
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn stats(samples: &[f64]) -> Value {
    let mut v = Value::object();
    v.set("median", Value::from(median(samples.to_vec())));
    v.set(
        "min",
        Value::from(samples.iter().cloned().fold(f64::INFINITY, f64::min)),
    );
    v.set(
        "max",
        Value::from(samples.iter().cloned().fold(0.0f64, f64::max)),
    );
    v.set(
        "samples",
        Value::Array(samples.iter().map(|s| Value::from(*s)).collect()),
    );
    v
}

fn main() {
    let args = parse_args();
    let mut scenarios = Vec::new();
    for n in SIZES {
        if n > args.max_size {
            eprintln!("skipping size {n} (--max-size {})", args.max_size);
            continue;
        }
        let (a, b) = sbom_pair(n, SEED);
        let lsh_cfg = MatchConfig::default();
        let brute_cfg = MatchConfig {
            brute_force: true,
            ..MatchConfig::default()
        };

        // Warm-up pass (interner fill, page faults), then timed medians.
        let lsh_matched = match_sboms(&a, &b, &lsh_cfg).matched();
        let mut lsh_samples = Vec::with_capacity(args.iters);
        for _ in 0..args.iters {
            let start = Instant::now();
            let report = match_sboms(&a, &b, &lsh_cfg);
            lsh_samples.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(report.matched(), lsh_matched, "nondeterministic LSH pass");
        }
        let lsh_median = median(lsh_samples.clone());

        let brute_measured = n <= BRUTE_MEASURED_MAX;
        let (brute_samples, brute_median, brute_mode) = if brute_measured {
            let brute_matched = match_sboms(&a, &b, &brute_cfg).matched();
            // LSH gating may only lose candidates, never invent them.
            assert!(
                lsh_matched <= brute_matched,
                "LSH found {lsh_matched} pairs, brute {brute_matched}"
            );
            let mut samples = Vec::with_capacity(args.iters);
            for _ in 0..args.iters {
                let start = Instant::now();
                let report = match_sboms(&a, &b, &brute_cfg);
                samples.push(start.elapsed().as_secs_f64() * 1e3);
                assert_eq!(
                    report.matched(),
                    brute_matched,
                    "nondeterministic brute pass"
                );
            }
            let m = median(samples.clone());
            (samples, m, "measured")
        } else {
            // Quadratic candidate volume: scale the largest measured brute
            // median by (n / BRUTE_MEASURED_MAX)².
            let base = scenarios
                .iter()
                .rev()
                .find_map(|s: &Value| {
                    (s.pointer("brute_mode").and_then(Value::as_str) == Some("measured")).then(
                        || {
                            (
                                s.pointer("components").and_then(Value::as_i64).unwrap_or(1),
                                s.pointer("brute_ms/median")
                                    .and_then(Value::as_f64)
                                    .unwrap_or(0.0),
                            )
                        },
                    )
                })
                .unwrap_or((1, 0.0));
            let factor = (n as f64 / base.0 as f64).powi(2);
            (Vec::new(), base.1 * factor, "extrapolated-quadratic")
        };

        let speedup = if lsh_median > 0.0 {
            brute_median / lsh_median
        } else {
            0.0
        };
        println!(
            "{n:7} components  lsh {lsh_median:10.2} ms  brute {brute_median:12.2} ms ({brute_mode})  speedup {speedup:.1}x  matched {lsh_matched}"
        );

        let mut row = Value::object();
        row.set("name", Value::from(format!("match_{n}")));
        row.set("components", Value::from(n as i64));
        row.set("matched_pairs", Value::from(lsh_matched as i64));
        row.set("lsh_ms", stats(&lsh_samples));
        let mut brute = Value::object();
        brute.set("median", Value::from(brute_median));
        if !brute_samples.is_empty() {
            brute = stats(&brute_samples);
        }
        row.set("brute_ms", brute);
        row.set("brute_mode", Value::from(brute_mode));
        row.set("speedup", Value::from(speedup));
        scenarios.push(row);
    }

    let mut doc = Value::object();
    doc.set("bench", Value::from("matching"));
    doc.set(
        "description",
        Value::from(
            "tiered component matching, full pipeline (exact through fuzzy): \
             MinHash-LSH candidate index vs brute-force same-ecosystem cross \
             product; brute at 100k is extrapolated quadratically from the \
             measured 10k median (the 2e9-pair cross product is the cost the \
             index removes)",
        ),
    );
    let mut config = Value::object();
    config.set("seed", Value::from(SEED as i64));
    config.set("iters", Value::from(args.iters as i64));
    config.set("brute_measured_max", Value::from(BRUTE_MEASURED_MAX as i64));
    doc.set("config", config);
    doc.set("scenarios", Value::Array(scenarios));

    let mut body = json::to_string(&doc);
    body.push('\n');
    std::fs::write(&args.out, body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("wrote {}", args.out);
}

//! Criterion benchmark harness crate. Measurement content lives in
//! `benches/`: `parsers`, `formats`, `resolver`, `generators`,
//! `experiments` (one group per paper table/figure pipeline), and
//! `matching_lsh` (LSH-gated vs brute-force tier-3 matching). The library
//! part carries only the synthetic corpora shared between the benches and
//! the `BENCH_*.json` emitter binaries.

pub mod matching_corpus;

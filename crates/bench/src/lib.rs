//! Criterion benchmark harness crate. All content lives in `benches/`:
//! `parsers`, `formats`, `resolver`, `generators`, and `experiments` (one
//! group per paper table/figure pipeline).

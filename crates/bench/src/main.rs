//! Emits `BENCH_pipeline.json`: before/after wall-clock medians for the
//! shared-scan pipeline on the 4-profile corpus experiment.
//!
//! * **before** — the pre-sharing behavior: every profile walks the
//!   repository and parses every metadata file itself
//!   (`ToolEmulator::scan_isolated`, which is also the differential
//!   property-test oracle).
//! * **after (cold)** — the shared-scan pipeline starting from an empty
//!   `ParseCache`: one `ScanContext` per repository, every profile
//!   deriving its SBOM from the shared parses, all parses paid once.
//! * **after (steady)** — the shared-scan pipeline with a *persistent*
//!   `ParseCache`, measured after a warm-up pass. This is the deployed
//!   configuration: `sbomdiff-serve` and the corpus experiment driver
//!   keep one cache across requests/runs, so re-analysis of unchanged
//!   manifests is the common case. The content-hash key guarantees a
//!   stale parse can never be served (see `crates/generators/src/cache.rs`),
//!   and `warm_cache_preserves_outputs` in the property suite pins warm
//!   output ≡ cold output byte-for-byte.
//!
//! All paths produce byte-identical SBOMs (enforced by
//! `crates/generators/tests/shared_scan_props.rs`), so the ratios are pure
//! pipeline overhead. The headline `speedup` is the steady-state ratio;
//! `speedup_cold` is reported alongside. Usage:
//!
//! ```text
//! cargo run --release -p sbomdiff-bench -- [--repos N] [--iters K] [--out PATH]
//! ```

use std::time::Instant;

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_diff::{jaccard, key_set};
use sbomdiff_generators::{studied_tools, ParseCache, ScanContext, ToolEmulator};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_textformats::{json, Value};
use sbomdiff_types::{Ecosystem, Sbom};

const SEED: u64 = 99;
const SIZES: [(&str, usize); 3] = [("small", 1), ("medium", 4), ("large", 12)];

fn usage() -> ! {
    eprintln!(
        "usage: sbomdiff-bench [--repos N] [--iters K] [--out PATH]\n\
         \n\
         --repos N   repos per language for the `large` tier (default 12);\n\
         \x20           `small`/`medium` stay at 1/4\n\
         --iters K   timed iterations per scenario, median reported (default 5)\n\
         --out PATH  output path (default BENCH_pipeline.json)"
    );
    std::process::exit(2);
}

struct Args {
    large_repos: usize,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        large_repos: 12,
        iters: 5,
        out: "BENCH_pipeline.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--repos" => args.large_repos = value(i).parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value(i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value(i),
            _ => usage(),
        }
        i += 2;
    }
    if args.iters == 0 || args.large_repos == 0 {
        usage();
    }
    args
}

fn corpus(regs: &Registries, repos_per_language: usize) -> Vec<RepoFs> {
    let mut repos = Vec::new();
    for eco in [
        Ecosystem::Python,
        Ecosystem::JavaScript,
        Ecosystem::Go,
        Ecosystem::Rust,
    ] {
        repos.extend(Corpus::build_language(
            regs,
            &CorpusConfig {
                repos_per_language,
                seed: SEED,
            },
            eco,
        ));
    }
    repos
}

/// One isolated-path corpus pass: every profile re-walks and re-parses.
fn run_isolated(tools: &[ToolEmulator<'_>], repos: &[RepoFs]) -> (usize, f64) {
    let mut components = 0usize;
    let mut jaccard_sum = 0.0;
    for repo in repos {
        let cells: Vec<Sbom> = tools.iter().map(|t| t.scan_isolated(repo)).collect();
        components += cells.iter().map(Sbom::len).sum::<usize>();
        jaccard_sum += pairwise(&cells);
    }
    (components, jaccard_sum)
}

/// One shared-path corpus pass from an empty cache (cold).
fn run_shared_cold(tools: &[ToolEmulator<'_>], repos: &[RepoFs]) -> (usize, f64) {
    run_shared(tools, repos, &ParseCache::new())
}

/// One shared-path corpus pass over a caller-owned cache: one walk +
/// shared parses per repository, parses reused across passes when the
/// cache persists (the steady-state / service configuration).
fn run_shared(tools: &[ToolEmulator<'_>], repos: &[RepoFs], cache: &ParseCache) -> (usize, f64) {
    let mut components = 0usize;
    let mut jaccard_sum = 0.0;
    for repo in repos {
        let scan = ScanContext::new(repo, cache);
        let cells: Vec<Sbom> = tools.iter().map(|t| t.generate_with_scan(&scan)).collect();
        components += cells.iter().map(Sbom::len).sum::<usize>();
        jaccard_sum += pairwise(&cells);
    }
    (components, jaccard_sum)
}

fn pairwise(cells: &[Sbom]) -> f64 {
    let keys: Vec<_> = cells.iter().map(key_set).collect();
    let mut sum = 0.0;
    for a in 0..keys.len() {
        for b in (a + 1)..keys.len() {
            if let Some(j) = jaccard(&keys[a], &keys[b]) {
                sum += j;
            }
        }
    }
    sum
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn time_ms(mut f: impl FnMut() -> (usize, f64), iters: usize) -> (Vec<f64>, usize) {
    // One untimed warm-up pass so lazy one-time work (registry memos,
    // global interner fill) does not land in the first sample.
    let (components, _) = f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let (got, _) = f();
        assert_eq!(got, components, "nondeterministic corpus pass");
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (samples, components)
}

fn stats(samples: &[f64]) -> Value {
    let mut v = Value::object();
    v.set("median", Value::from(median(samples.to_vec())));
    v.set(
        "min",
        Value::from(samples.iter().cloned().fold(f64::INFINITY, f64::min)),
    );
    v.set(
        "max",
        Value::from(samples.iter().cloned().fold(0.0f64, f64::max)),
    );
    v.set(
        "samples",
        Value::Array(samples.iter().map(|s| Value::from(*s)).collect()),
    );
    v
}

fn main() {
    let args = parse_args();
    let regs = Registries::generate(SEED);
    let tools = studied_tools(&regs, 0.15);

    let mut scenarios = Vec::new();
    for (label, per_language) in SIZES {
        let per_language = if label == "large" {
            args.large_repos
        } else {
            per_language
        };
        let repos = corpus(&regs, per_language);
        let files: usize = repos.iter().map(|r| r.metadata_files().len()).sum();

        let (before, components) = time_ms(|| run_isolated(&tools, &repos), args.iters);
        let (after_cold, cold_components) = time_ms(|| run_shared_cold(&tools, &repos), args.iters);
        // Steady state: the cache outlives the passes, so the untimed
        // warm-up inside time_ms fills it and the timed passes measure the
        // persistent-cache configuration sbomdiff-serve runs in.
        let persistent = ParseCache::new();
        let (after_warm, warm_components) =
            time_ms(|| run_shared(&tools, &repos, &persistent), args.iters);
        assert_eq!(
            components, cold_components,
            "shared scan changed the corpus output"
        );
        assert_eq!(
            components, warm_components,
            "warm cache changed the corpus output"
        );

        let before_median = median(before.clone());
        let cold_median = median(after_cold.clone());
        let warm_median = median(after_warm.clone());
        let speedup_cold = before_median / cold_median;
        let speedup = before_median / warm_median;
        println!(
            "{label:8} {:3} repos {files:5} files  before {before_median:8.2} ms  \
             cold {cold_median:8.2} ms ({speedup_cold:.2}x)  \
             steady {warm_median:8.2} ms ({speedup:.2}x)",
            repos.len()
        );

        let mut row = Value::object();
        row.set("name", Value::from(format!("corpus_4profile_{label}")));
        row.set("repos", Value::from(repos.len() as i64));
        row.set("metadata_files", Value::from(files as i64));
        row.set("components", Value::from(components as i64));
        row.set("before_ms", stats(&before));
        row.set("after_cold_ms", stats(&after_cold));
        row.set("after_ms", stats(&after_warm));
        row.set("speedup_cold", Value::from(speedup_cold));
        row.set("speedup", Value::from(speedup));
        scenarios.push(row);
    }

    let mut doc = Value::object();
    doc.set("bench", Value::from("pipeline"));
    doc.set(
        "description",
        Value::from(
            "4-profile corpus experiment (emulate + pairwise diff): isolated \
             per-profile parses (before) vs shared ScanContext over a fresh \
             cache (after_cold) and over a persistent warmed cache \
             (after, the deployed steady-state configuration)",
        ),
    );
    let mut config = Value::object();
    config.set("seed", Value::from(SEED as i64));
    config.set("iters", Value::from(args.iters as i64));
    config.set(
        "large_repos_per_language",
        Value::from(args.large_repos as i64),
    );
    config.set("profiles", Value::from(4i64));
    doc.set("config", config);
    doc.set("scenarios", Value::Array(scenarios));

    let mut body = json::to_string(&doc);
    body.push('\n');
    std::fs::write(&args.out, body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("wrote {}", args.out);
}

//! Deterministic synthetic SBOM pairs for the matching benchmarks.
//!
//! Two sides naming mostly the same packages with the cosmetic §V-E
//! divergences the tiered matcher targets: PEP 503 spelling flips, `v`
//! version prefixes, single-character typos, and a slice of genuinely
//! unmatched components. Everything derives from `splitmix64`, so both the
//! criterion bench and the `BENCH_matching.json` emitter see byte-identical
//! corpora at every size.

use sbomdiff_types::{Component, Ecosystem, Sbom};

const ECOSYSTEMS: [Ecosystem; 5] = [
    Ecosystem::Python,
    Ecosystem::JavaScript,
    Ecosystem::Java,
    Ecosystem::Go,
    Ecosystem::Rust,
];

const SYLLABLES: [&str; 16] = [
    "flask", "net", "data", "pack", "core", "util", "rado", "mist", "quer", "lin", "graph", "tok",
    "ser", "vex", "plum", "byte",
];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn base_name(i: usize, rng: &mut u64) -> String {
    let mut name = String::new();
    for s in 0..(2 + (splitmix64(rng) % 3) as usize) {
        if s > 0 {
            name.push('-');
        }
        name.push_str(SYLLABLES[(splitmix64(rng) % SYLLABLES.len() as u64) as usize]);
    }
    // A numeric suffix keeps names distinct at 100k without destroying the
    // trigram overlap the typo variants rely on.
    name.push_str(&format!("-{i}"));
    name
}

/// Flips `name` into a PEP-503-divergent spelling: underscores for dashes
/// plus an upper-cased first syllable.
fn respell(name: &str) -> String {
    let mut out = name.replace('-', "_");
    if let Some(first) = out.get(..1) {
        let upper = first.to_uppercase();
        out.replace_range(..1, &upper);
    }
    out
}

/// Introduces one character-level typo (doubles the character at a
/// position derived from `rng`).
fn typo(name: &str, rng: &mut u64) -> String {
    let chars: Vec<char> = name.chars().collect();
    let at = (splitmix64(rng) % chars.len() as u64) as usize;
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in chars.iter().enumerate() {
        out.push(*c);
        if i == at {
            out.push(*c);
        }
    }
    out
}

/// A pair of `n`-component SBOMs with ~60% exact agreement, ~25% cosmetic
/// divergence (PEP 503 spelling / `v` prefix), ~10% typos and ~5%
/// one-sided components.
pub fn sbom_pair(n: usize, seed: u64) -> (Sbom, Sbom) {
    let mut rng = seed;
    let mut a = Sbom::new("bench-a", "1");
    let mut b = Sbom::new("bench-b", "1");
    for i in 0..n {
        let eco = ECOSYSTEMS[(splitmix64(&mut rng) % ECOSYSTEMS.len() as u64) as usize];
        let name = base_name(i, &mut rng);
        let version = format!("{}.{}.{}", 1 + i % 4, i % 40, i % 7);
        a.push(Component::new(eco, &name, Some(version.clone())));
        match splitmix64(&mut rng) % 100 {
            0..=59 => b.push(Component::new(eco, &name, Some(version))),
            60..=74 => b.push(Component::new(eco, respell(&name), Some(version))),
            75..=84 => b.push(Component::new(eco, &name, Some(format!("v{version}")))),
            85..=94 => b.push(Component::new(eco, typo(&name, &mut rng), Some(version))),
            _ => b.push(Component::new(eco, format!("only-b-{i}"), Some(version))),
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let (a1, b1) = sbom_pair(500, 7);
        let (a2, b2) = sbom_pair(500, 7);
        assert_eq!(a1.len(), 500);
        assert_eq!(b1.len(), 500);
        let keys = |s: &Sbom| -> Vec<String> {
            s.components().iter().map(|c| c.key().to_string()).collect()
        };
        assert_eq!(keys(&a1), keys(&a2));
        assert_eq!(keys(&b1), keys(&b2));
        // Different seeds shuffle the divergences.
        let (_, b3) = sbom_pair(500, 8);
        assert_ne!(keys(&b1), keys(&b3));
    }

    #[test]
    fn corpus_mixes_exact_and_divergent_spellings() {
        let (a, b) = sbom_pair(1000, 42);
        let a_names: std::collections::BTreeSet<&str> =
            a.components().iter().map(|c| c.name.as_ref()).collect();
        let shared = b
            .components()
            .iter()
            .filter(|c| a_names.contains(c.name.as_ref()))
            .count();
        // Exact-name agreement (identical or v-prefix rows) sits around
        // 70%; the rest diverges in spelling.
        assert!((500..900).contains(&shared), "{shared}");
    }
}

//! Property tests for registry query invariants.

use proptest::prelude::*;

use sbomdiff_registry::{FlakyRegistry, PackageUniverse, RegistryClient, UniverseConfig};
use sbomdiff_types::{ConstraintFlavor, Ecosystem, VersionReq};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Versions are published ascending; `latest` is a published, non-
    /// prerelease maximum; `latest_matching` respects its requirement.
    #[test]
    fn universe_query_invariants(seed in 0u64..40, eco_idx in 0usize..9) {
        let eco = Ecosystem::ALL[eco_idx];
        let uni = PackageUniverse::generate(&UniverseConfig {
            package_count: 60,
            ..UniverseConfig::for_ecosystem(eco, seed)
        });
        for name in uni.package_names().take(30) {
            let versions = uni.versions(name);
            prop_assert!(!versions.is_empty());
            for w in versions.windows(2) {
                prop_assert!(w[0] <= w[1], "{name}: {} > {}", w[0], w[1]);
            }
            if let Some(latest) = uni.latest(name) {
                prop_assert!(versions.contains(&latest));
                prop_assert!(!latest.is_prerelease());
            }
            let req = VersionReq::parse(">=0", ConstraintFlavor::Pep440).unwrap();
            if let Some(m) = uni.latest_matching(name, &req) {
                prop_assert!(req.matches(m));
                prop_assert!(versions.contains(&m));
            }
        }
    }

    /// The flaky wrapper never fabricates data: every successful answer
    /// equals the underlying universe's answer.
    #[test]
    fn flaky_registry_is_truthful(seed in 0u64..40, rate in 0.0f64..1.0) {
        let uni = PackageUniverse::generate(&UniverseConfig {
            package_count: 40,
            ..UniverseConfig::for_ecosystem(Ecosystem::Python, seed)
        });
        let flaky = FlakyRegistry::new(&uni, rate, seed);
        for name in uni.package_names().take(20) {
            if let Some(latest) = RegistryClient::latest(&flaky, name) {
                prop_assert_eq!(Some(latest), RegistryClient::latest(&uni, name));
            }
            if let Some(versions) = RegistryClient::versions(&flaky, name) {
                prop_assert_eq!(Some(versions), RegistryClient::versions(&uni, name));
            }
        }
        // Unknown names fail regardless of flakiness.
        prop_assert!(RegistryClient::latest(&flaky, "no-such-package-xyz").is_none());
    }

    /// Lookup is closed under the ecosystem's name normalization.
    #[test]
    fn lookup_normalization_closed(seed in 0u64..40) {
        let uni = PackageUniverse::generate(&UniverseConfig {
            package_count: 50,
            ..UniverseConfig::for_ecosystem(Ecosystem::Python, seed)
        });
        for name in uni.package_names().take(30) {
            let upper = name.to_uppercase();
            let swapped = name.replace('-', "_");
            prop_assert!(uni.lookup(&upper).is_some(), "{upper}");
            prop_assert!(uni.lookup(&swapped).is_some(), "{swapped}");
        }
    }
}

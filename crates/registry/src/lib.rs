//! A deterministic synthetic package registry.
//!
//! Substitutes for PyPI / npm / crates.io / Maven Central / NuGet / RubyGems
//! / Packagist / CocoaPods trunk / the Go module proxy in the paper's
//! pipeline (see DESIGN.md substitutions). Provides everything the studied
//! behaviors need:
//!
//! * version lists per package (for "pin latest in range", §V-D);
//! * per-version dependency metadata with extras and platform markers (for
//!   transitive resolution and pip dry-run ground truth, §V-C, §V-H);
//! * name validation (sbom-tool "reaches out to package managers to
//!   validate package names", §VIII);
//! * seeded curated packages so the paper's concrete examples reproduce
//!   cell-exact (e.g. `numpy` with latest `1.25.2`, Table IV).
//!
//! Generation is fully seeded: the same [`UniverseConfig`] always yields the
//! same universe.

pub mod client;
pub mod generate;
pub mod universe;

pub use client::{FlakyRegistry, RegistryClient};
pub use generate::UniverseConfig;
pub use universe::{PackageEntry, PackageUniverse, RegistryDep, VersionEntry};

use std::collections::BTreeMap;

use sbomdiff_types::Ecosystem;

/// All nine ecosystems' registries, generated from one master seed.
#[derive(Debug, Clone)]
pub struct Registries {
    map: BTreeMap<Ecosystem, PackageUniverse>,
}

impl Registries {
    /// Generates a registry per ecosystem using per-ecosystem default
    /// configurations derived from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut map = BTreeMap::new();
        for (i, eco) in Ecosystem::ALL.into_iter().enumerate() {
            let config = UniverseConfig::for_ecosystem(eco, seed.wrapping_add(i as u64 * 7919));
            map.insert(eco, PackageUniverse::generate(&config));
        }
        Registries { map }
    }

    /// Builds a registry set from explicit universes (tests, custom
    /// worlds). Ecosystems not present fall back to empty universes.
    pub fn from_parts(universes: Vec<PackageUniverse>) -> Self {
        let mut map = BTreeMap::new();
        for eco in Ecosystem::ALL {
            map.insert(eco, PackageUniverse::new(eco));
        }
        for uni in universes {
            map.insert(uni.ecosystem(), uni);
        }
        Registries { map }
    }

    /// The registry for one ecosystem.
    ///
    /// # Panics
    ///
    /// Panics if the ecosystem was not generated (cannot happen for
    /// [`Registries::generate`], which covers all nine).
    pub fn for_ecosystem(&self, eco: Ecosystem) -> &PackageUniverse {
        self.map
            .get(&eco)
            .expect("registry generated for every ecosystem")
    }

    /// Iterates over all (ecosystem, universe) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Ecosystem, &PackageUniverse)> {
        self.map.iter().map(|(e, u)| (*e, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_ecosystems() {
        let regs = Registries::generate(42);
        assert_eq!(regs.iter().count(), 9);
        for (eco, uni) in regs.iter() {
            assert!(
                uni.package_count() > 50,
                "{eco} universe too small: {}",
                uni.package_count()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Registries::generate(7);
        let b = Registries::generate(7);
        for (eco, uni) in a.iter() {
            let other = b.for_ecosystem(eco);
            assert_eq!(uni.package_count(), other.package_count());
            let names_a: Vec<&str> = uni.package_names().take(20).collect();
            let names_b: Vec<&str> = other.package_names().take(20).collect();
            assert_eq!(names_a, names_b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Registries::generate(1);
        let b = Registries::generate(2);
        let uni_a = a.for_ecosystem(Ecosystem::Python);
        let uni_b = b.for_ecosystem(Ecosystem::Python);
        let names_a: Vec<&str> = uni_a.package_names().collect();
        let names_b: Vec<&str> = uni_b.package_names().collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn table_iv_anchor_numpy_latest() {
        let regs = Registries::generate(123);
        let py = regs.for_ecosystem(Ecosystem::Python);
        let latest = py.latest("numpy").expect("numpy is curated");
        assert_eq!(latest.to_string(), "1.25.2");
    }
}

//! Seeded universe generation: curated anchor packages (so the paper's
//! concrete examples reproduce exactly) plus a bulk synthetic package DAG
//! with realistic name, version and constraint-style distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbomdiff_types::{ConstraintFlavor, Ecosystem, Version, VersionReq};

use crate::universe::{PackageEntry, PackageUniverse, RegistryDep, VersionEntry};

/// Configuration for synthetic universe generation.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Target ecosystem.
    pub ecosystem: Ecosystem,
    /// Number of synthetic packages (curated anchors are added on top).
    pub package_count: usize,
    /// Maximum published versions per package.
    pub max_versions: usize,
    /// Maximum dependency edges per package.
    pub max_deps: usize,
    /// Probability that a dependency edge is gated behind an extra
    /// (Python only).
    pub extras_prob: f64,
    /// Probability that an edge carries a platform marker excluding it on
    /// the evaluation platform.
    pub platform_excluded_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UniverseConfig {
    /// Ecosystem-appropriate defaults derived from one seed.
    ///
    /// Dependency-graph density matches the ecosystem's character: npm
    /// graphs fan out hard (lockfiles routinely hold hundreds of
    /// transitives), while PyPI/crates.io graphs are much shallower.
    pub fn for_ecosystem(ecosystem: Ecosystem, seed: u64) -> Self {
        let max_deps = match ecosystem {
            Ecosystem::JavaScript => 12,
            Ecosystem::Go => 4,
            Ecosystem::Python => 2,
            _ => 3,
        };
        UniverseConfig {
            ecosystem,
            package_count: 600,
            max_versions: 8,
            max_deps,
            extras_prob: if ecosystem == Ecosystem::Python {
                0.15
            } else {
                0.0
            },
            platform_excluded_prob: 0.06,
            seed,
        }
    }
}

/// Generates a universe per the configuration.
pub fn generate(config: &UniverseConfig) -> PackageUniverse {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5b0a_d1f0_0000_0000);
    let mut uni = PackageUniverse::new(config.ecosystem);

    curated(config.ecosystem, &mut uni);

    // Synthetic DAG: package i may only depend on packages j < i.
    let mut names: Vec<String> = Vec::with_capacity(config.package_count);
    let mut seen = std::collections::BTreeSet::new();
    while names.len() < config.package_count {
        let name = gen_name(config.ecosystem, &mut rng);
        let key = sbomdiff_types::name::normalize(config.ecosystem, &name);
        if seen.insert(key) && uni.lookup(&name).is_none() {
            names.push(name);
        }
    }

    for i in 0..names.len() {
        let version_count = 1 + rng.gen_range(0..config.max_versions);
        let versions = gen_versions(version_count, &mut rng);
        // Candidate dependency targets: earlier synthetic packages.
        let dep_count = if i == 0 {
            0
        } else {
            rng.gen_range(0..=config.max_deps.min(i))
        };
        let mut dep_targets = Vec::new();
        for _ in 0..dep_count {
            let j = rng.gen_range(0..i);
            if !dep_targets.contains(&j) {
                dep_targets.push(j);
            }
        }
        let mut ventries = Vec::with_capacity(versions.len());
        for (vi, version) in versions.iter().enumerate() {
            let mut deps = Vec::new();
            for &j in &dep_targets {
                // Later versions may gain edges; early ones have a subset.
                if vi * 2 < versions.len() && rng.gen_bool(0.3) {
                    continue;
                }
                let target = &names[j];
                let target_versions = uni.versions(target);
                let anchor = target_versions
                    .get(
                        rng.gen_range(0..target_versions.len().max(1))
                            .min(target_versions.len().saturating_sub(1)),
                    )
                    .copied()
                    .cloned()
                    .unwrap_or_else(|| Version::new(1, 0, 0));
                let req = gen_requirement(config.ecosystem, &anchor, &mut rng);
                let extra = if rng.gen_bool(config.extras_prob) {
                    Some(EXTRA_NAMES[rng.gen_range(0..EXTRA_NAMES.len())].to_string())
                } else {
                    None
                };
                let platform_excluded = rng.gen_bool(config.platform_excluded_prob);
                deps.push(RegistryDep {
                    name: target.clone(),
                    req,
                    extra,
                    platform_excluded,
                });
            }
            ventries.push(VersionEntry {
                version: version.clone(),
                deps,
                yanked: rng.gen_bool(0.02),
            });
        }
        // The newest version must usually be available.
        if let Some(last) = ventries.last_mut() {
            last.yanked = false;
        }
        uni.insert(PackageEntry {
            name: names[i].clone(),
            versions: ventries,
        });
    }
    uni
}

const EXTRA_NAMES: [&str; 6] = ["security", "socks", "dev", "test", "docs", "async"];

const SYLLABLES: [&str; 24] = [
    "ar", "bel", "cor", "dex", "fen", "gal", "hex", "ion", "jet", "kal", "lum", "mar", "nex",
    "ori", "pix", "qua", "rum", "sol", "tor", "umb", "vex", "wiz", "yar", "zen",
];

const WORDS: [&str; 20] = [
    "data", "net", "http", "json", "auth", "cache", "log", "test", "async", "core", "util",
    "parse", "crypt", "time", "file", "task", "mesh", "grid", "flow", "sync",
];

fn syllable_word(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..4);
    (0..n)
        .map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())])
        .collect()
}

fn base_name(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        format!(
            "{}{}",
            WORDS[rng.gen_range(0..WORDS.len())],
            syllable_word(rng)
        )
    } else {
        syllable_word(rng)
    }
}

fn gen_name(eco: Ecosystem, rng: &mut StdRng) -> String {
    match eco {
        Ecosystem::Python => {
            let base = base_name(rng);
            match rng.gen_range(0..4) {
                0 => format!("{}-{}", base, WORDS[rng.gen_range(0..WORDS.len())]),
                1 => format!("{}_{}", base, WORDS[rng.gen_range(0..WORDS.len())]),
                _ => base,
            }
        }
        Ecosystem::JavaScript => {
            let base = base_name(rng);
            if rng.gen_bool(0.2) {
                format!("@{}/{}", syllable_word(rng), base)
            } else {
                base
            }
        }
        Ecosystem::Ruby => {
            let base = base_name(rng);
            if rng.gen_bool(0.3) {
                format!("{}-{}", base, WORDS[rng.gen_range(0..WORDS.len())])
            } else {
                base
            }
        }
        Ecosystem::Php => format!("{}/{}", syllable_word(rng), base_name(rng)),
        Ecosystem::Java => format!(
            "org.{}.{}:{}",
            syllable_word(rng),
            syllable_word(rng),
            base_name(rng)
        ),
        Ecosystem::Go => {
            if rng.gen_bool(0.15) {
                format!("golang.org/x/{}", base_name(rng))
            } else {
                format!("github.com/{}/{}", syllable_word(rng), base_name(rng))
            }
        }
        Ecosystem::Rust => {
            let base = base_name(rng);
            if rng.gen_bool(0.3) {
                format!("{}-{}", base, WORDS[rng.gen_range(0..WORDS.len())])
            } else {
                base
            }
        }
        Ecosystem::Swift => {
            // CamelCase pod names.
            let mut s = base_name(rng);
            if let Some(c) = s.get_mut(0..1) {
                let upper = c.to_uppercase();
                s.replace_range(0..1, &upper);
            }
            format!("{}Kit", s)
        }
        Ecosystem::DotNet => {
            let mut parts = Vec::new();
            for _ in 0..rng.gen_range(2..4) {
                let mut w = syllable_word(rng);
                if let Some(c) = w.get(0..1) {
                    let upper = c.to_uppercase();
                    w.replace_range(0..1, &upper);
                }
                parts.push(w);
            }
            parts.join(".")
        }
    }
}

fn gen_versions(count: usize, rng: &mut StdRng) -> Vec<Version> {
    let mut v = if rng.gen_bool(0.4) {
        Version::new(0, rng.gen_range(1..5), 0)
    } else {
        Version::new(rng.gen_range(1..4), 0, 0)
    };
    let mut out = vec![v.clone()];
    for _ in 1..count {
        v = match rng.gen_range(0..10) {
            0 => v.bump_major(),
            1..=3 => v.bump_minor(),
            _ => v.bump_patch(),
        };
        out.push(v.clone());
    }
    out
}

/// Generates a constraint in the ecosystem's dominant styles, anchored on a
/// real published version of the target.
fn gen_requirement(eco: Ecosystem, anchor: &Version, rng: &mut StdRng) -> VersionReq {
    let flavor = eco.constraint_flavor();
    let text = match flavor {
        ConstraintFlavor::Pep440 => match rng.gen_range(0..10) {
            0..=3 => format!(">={anchor}"),
            4..=5 => format!(">={},<{}", anchor, anchor.bump_major()),
            6 => format!("=={anchor}"),
            7 => format!("~={}.{}", anchor.segment(0), anchor.segment(1)),
            _ => String::new(),
        },
        ConstraintFlavor::Npm => match rng.gen_range(0..10) {
            0..=5 => format!("^{anchor}"),
            6..=7 => format!("~{anchor}"),
            8 => format!(">={anchor}"),
            _ => "*".to_string(),
        },
        ConstraintFlavor::Cargo => match rng.gen_range(0..10) {
            0..=6 => anchor.to_string(),
            7 => format!("={anchor}"),
            _ => format!(">={anchor}"),
        },
        ConstraintFlavor::RubyGems => match rng.gen_range(0..10) {
            0..=5 => format!("~> {}.{}", anchor.segment(0), anchor.segment(1)),
            6..=7 => format!(">= {anchor}"),
            _ => String::new(),
        },
        ConstraintFlavor::Composer => match rng.gen_range(0..10) {
            0..=5 => format!("^{anchor}"),
            6 => format!("~{anchor}"),
            _ => format!(">={anchor}"),
        },
        ConstraintFlavor::Maven => match rng.gen_range(0..10) {
            0..=6 => anchor.to_string(),
            _ => format!("[{},{})", anchor, anchor.bump_major()),
        },
        ConstraintFlavor::Go => anchor.to_v_prefixed(),
    };
    if text.is_empty() {
        VersionReq::any()
    } else {
        VersionReq::parse(&text, flavor).unwrap_or_else(|_| VersionReq::any())
    }
}

/// Curated anchor packages with fixed versions, so the paper's concrete
/// examples (Table IV `numpy` → `1.25.2`; `requests[security]`, `urllib3`)
/// reproduce exactly regardless of seed.
fn curated(eco: Ecosystem, uni: &mut PackageUniverse) {
    let flavor = eco.constraint_flavor();
    let req = |s: &str| VersionReq::parse(s, flavor).unwrap_or_else(|_| VersionReq::any());
    let entry = |name: &str, versions: &[(&str, Vec<RegistryDep>)]| PackageEntry {
        name: name.to_string(),
        versions: versions
            .iter()
            .map(|(v, deps)| VersionEntry {
                version: Version::parse(v).expect("curated version is valid"),
                deps: deps.clone(),
                yanked: false,
            })
            .collect(),
    };
    match eco {
        Ecosystem::Python => {
            uni.insert(entry(
                "certifi",
                &[("2022.12.7", vec![]), ("2023.7.22", vec![])],
            ));
            uni.insert(entry("idna", &[("2.10", vec![]), ("3.4", vec![])]));
            uni.insert(entry(
                "charset-normalizer",
                &[("2.1.1", vec![]), ("3.2.0", vec![])],
            ));
            uni.insert(entry(
                "pyopenssl",
                &[("22.1.0", vec![]), ("23.2.0", vec![])],
            ));
            uni.insert(entry("pysocks", &[("1.7.0", vec![]), ("1.7.1", vec![])]));
            uni.insert(entry("urllib3", &[("1.26.15", vec![]), ("2.0.4", vec![])]));
            uni.insert(entry(
                "requests",
                &[
                    ("2.8.1", vec![RegistryDep::new("urllib3", req(">=1.21"))]),
                    (
                        "2.31.0",
                        vec![
                            RegistryDep::new("urllib3", req(">=1.21.1,<3")),
                            RegistryDep::new("idna", req(">=2.5,<4")),
                            RegistryDep::new("charset-normalizer", req(">=2,<4")),
                            RegistryDep::new("certifi", req(">=2017.4.17")),
                            RegistryDep {
                                name: "pyopenssl".into(),
                                req: req(">=0.14"),
                                extra: Some("security".into()),
                                platform_excluded: false,
                            },
                            RegistryDep {
                                name: "pysocks".into(),
                                req: req(">=1.5.6"),
                                extra: Some("socks".into()),
                                platform_excluded: false,
                            },
                        ],
                    ),
                ],
            ));
            uni.insert(entry(
                "numpy",
                &[
                    ("1.19.2", vec![]),
                    ("1.21.0", vec![]),
                    ("1.24.3", vec![]),
                    ("1.25.2", vec![]),
                ],
            ));
            uni.insert(entry("markupsafe", &[("2.0.1", vec![]), ("2.1.3", vec![])]));
            uni.insert(entry(
                "jinja2",
                &[
                    (
                        "2.11.3",
                        vec![RegistryDep::new("markupsafe", req(">=0.23"))],
                    ),
                    ("3.1.2", vec![RegistryDep::new("markupsafe", req(">=2.0"))]),
                ],
            ));
            uni.insert(entry(
                "werkzeug",
                &[
                    ("2.0.0", vec![RegistryDep::new("markupsafe", req(">=2.0"))]),
                    (
                        "2.3.6",
                        vec![RegistryDep::new("markupsafe", req(">=2.1.1"))],
                    ),
                ],
            ));
            uni.insert(entry("click", &[("7.1.2", vec![]), ("8.1.6", vec![])]));
            uni.insert(entry(
                "itsdangerous",
                &[("1.1.0", vec![]), ("2.1.2", vec![])],
            ));
            uni.insert(entry(
                "flask",
                &[
                    (
                        "1.1.4",
                        vec![
                            RegistryDep::new("werkzeug", req(">=2.0")),
                            RegistryDep::new("jinja2", req(">=2.11")),
                            RegistryDep::new("click", req(">=5.1")),
                            RegistryDep::new("itsdangerous", req(">=1.1")),
                        ],
                    ),
                    (
                        "2.3.2",
                        vec![
                            RegistryDep::new("werkzeug", req(">=2.3.3")),
                            RegistryDep::new("jinja2", req(">=3.1.2")),
                            RegistryDep::new("click", req(">=8.1.3")),
                            RegistryDep::new("itsdangerous", req(">=2.1.2")),
                        ],
                    ),
                ],
            ));
            uni.insert(entry("pytest", &[("7.0.0", vec![]), ("7.4.0", vec![])]));
            uni.insert(entry("pywin32", &[("305", vec![]), ("306", vec![])]));
        }
        Ecosystem::JavaScript => {
            uni.insert(entry("lodash", &[("4.17.20", vec![]), ("4.17.21", vec![])]));
            uni.insert(entry(
                "ms",
                &[("2.0.0", vec![]), ("2.1.2", vec![]), ("2.1.3", vec![])],
            ));
            uni.insert(entry(
                "debug",
                &[
                    ("4.3.0", vec![RegistryDep::new("ms", req("^2.1.1"))]),
                    ("4.3.4", vec![RegistryDep::new("ms", req("2.1.2"))]),
                ],
            ));
            uni.insert(entry(
                "express",
                &[("4.18.2", vec![RegistryDep::new("debug", req("^4.3.4"))])],
            ));
            uni.insert(entry("jest", &[("29.6.2", vec![])]));
            uni.insert(entry("@babel/core", &[("7.22.9", vec![])]));
        }
        Ecosystem::Ruby => {
            uni.insert(entry("rake", &[("13.0.6", vec![])]));
            uni.insert(entry(
                "rails",
                &[
                    ("6.1.7", vec![]),
                    ("7.0.4", vec![RegistryDep::new("rake", req(">= 12.2"))]),
                ],
            ));
            uni.insert(entry("rspec", &[("3.12.0", vec![])]));
        }
        Ecosystem::Php => {
            uni.insert(entry("psr/log", &[("2.0.0", vec![]), ("3.0.0", vec![])]));
            uni.insert(entry(
                "monolog/monolog",
                &[(
                    "3.4.0",
                    vec![RegistryDep::new("psr/log", req("^2.0 || ^3.0"))],
                )],
            ));
            uni.insert(entry("phpunit/phpunit", &[("10.2.1", vec![])]));
        }
        Ecosystem::Java => {
            uni.insert(entry(
                "org.slf4j:slf4j-api",
                &[("1.7.36", vec![]), ("2.0.7", vec![])],
            ));
            uni.insert(entry(
                "com.google.guava:guava",
                &[("31.1", vec![]), ("32.1.2", vec![])],
            ));
            uni.insert(entry(
                "org.junit.jupiter:junit-jupiter",
                &[("5.9.2", vec![])],
            ));
        }
        Ecosystem::Go => {
            uni.insert(entry(
                "github.com/stretchr/testify",
                &[("v1.8.0", vec![]), ("v1.8.4", vec![])],
            ));
            uni.insert(entry("golang.org/x/sync", &[("v0.3.0", vec![])]));
            uni.insert(entry("github.com/pkg/errors", &[("v0.9.1", vec![])]));
        }
        Ecosystem::Rust => {
            uni.insert(entry("serde", &[("1.0.160", vec![]), ("1.0.188", vec![])]));
            uni.insert(entry("rand", &[("0.8.5", vec![])]));
            uni.insert(entry("proptest", &[("1.2.0", vec![])]));
        }
        Ecosystem::Swift => {
            uni.insert(entry("FirebaseAuth", &[("10.12.0", vec![])]));
            uni.insert(entry(
                "Firebase",
                &[(
                    "10.12.0",
                    vec![RegistryDep::new("FirebaseAuth", req("~> 10.12"))],
                )],
            ));
            uni.insert(entry("SnapKit", &[("5.6.0", vec![])]));
            uni.insert(entry("GoogleUtilities", &[("7.11.0", vec![])]));
        }
        Ecosystem::DotNet => {
            uni.insert(entry(
                "Newtonsoft.Json",
                &[("12.0.3", vec![]), ("13.0.3", vec![])],
            ));
            uni.insert(entry("System.Memory", &[("4.5.5", vec![])]));
            uni.insert(entry("Serilog", &[("3.0.1", vec![])]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_ecosystem_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert!(gen_name(Ecosystem::Php, &mut rng).contains('/'));
            assert!(gen_name(Ecosystem::Java, &mut rng).contains(':'));
            assert!(gen_name(Ecosystem::Go, &mut rng).contains('/'));
            let swift = gen_name(Ecosystem::Swift, &mut rng);
            assert!(
                swift.starts_with(|c: char| c.is_ascii_uppercase()),
                "{swift}"
            );
            assert!(gen_name(Ecosystem::DotNet, &mut rng).contains('.'));
        }
    }

    #[test]
    fn versions_ascend() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let vs = gen_versions(6, &mut rng);
            for w in vs.windows(2) {
                assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn requirements_match_their_anchor() {
        let mut rng = StdRng::seed_from_u64(11);
        for eco in Ecosystem::ALL {
            for _ in 0..30 {
                let anchor = Version::new(2, 3, 4);
                let req = gen_requirement(eco, &anchor, &mut rng);
                assert!(
                    req.matches(&anchor),
                    "{eco}: {req} should match its anchor {anchor}"
                );
            }
        }
    }

    #[test]
    fn curated_requests_extras() {
        let config = UniverseConfig::for_ecosystem(Ecosystem::Python, 5);
        let uni = generate(&config);
        let v = Version::parse("2.31.0").unwrap();
        let with_security = uni.deps_of("requests", &v, &["security".into()], true);
        let plain = uni.deps_of("requests", &v, &[], true);
        assert_eq!(with_security.len(), plain.len() + 1);
    }

    #[test]
    fn dag_property_no_cycles() {
        // Transitive closure terminates for every package (cycle-free).
        let config = UniverseConfig {
            package_count: 120,
            ..UniverseConfig::for_ecosystem(Ecosystem::Python, 21)
        };
        let uni = generate(&config);
        for name in uni.package_names() {
            let mut visited = std::collections::BTreeSet::new();
            let mut stack = vec![name.to_string()];
            let mut steps = 0;
            while let Some(n) = stack.pop() {
                steps += 1;
                assert!(steps < 100_000, "dependency closure too large — cycle?");
                if !visited.insert(n.clone()) {
                    continue;
                }
                if let Some(latest) = uni.latest(&n).cloned() {
                    for d in uni.deps_of(&n, &latest, &[], true) {
                        stack.push(d.name.clone());
                    }
                }
            }
        }
    }
}

//! Registry client abstraction with failure injection.
//!
//! §V-C: the Microsoft SBOM Tool "attempts to resolve transitive
//! dependencies by querying package managers ... but this functionality is
//! not well-implemented and often fails". [`FlakyRegistry`] models that
//! unreliability deterministically so experiments are reproducible.

use std::cell::Cell;
use std::time::Duration;

use sbomdiff_faultline as fault;
use sbomdiff_types::{Version, VersionReq};

use crate::universe::{PackageUniverse, RegistryDep};

/// Retry policy for registry queries under fault injection: two retries
/// with linear backoff inside a deterministic per-query budget. Inert
/// (zero-cost single call) when no fault plan is installed.
const REGISTRY_RETRY: fault::RetryPolicy =
    fault::RetryPolicy::new(2, Duration::from_millis(2), Duration::from_millis(250));

/// Run `f` under the registry fault point `site`, keyed by package name.
/// An exhausted retry budget behaves exactly like a registry failure: the
/// query answers `None` and the caller surfaces its usual diagnostic.
fn guarded<T>(site: &'static str, name: &str, f: impl FnMut() -> Option<T>) -> Option<T> {
    fault::with_retry(site, name, &REGISTRY_RETRY, f).unwrap_or_default()
}

/// Read-only registry operations used by resolvers and tool emulators.
pub trait RegistryClient {
    /// All published versions of a package (ascending), or `None` when the
    /// package is unknown *or the query failed*.
    fn versions(&self, name: &str) -> Option<Vec<Version>>;

    /// The newest non-yanked version.
    fn latest(&self, name: &str) -> Option<Version>;

    /// The newest version matching a requirement.
    fn latest_matching(&self, name: &str, req: &VersionReq) -> Option<Version>;

    /// Dependency edges of a concrete version. `honor_markers` controls
    /// whether platform-excluded edges are filtered.
    fn deps_of(
        &self,
        name: &str,
        version: &Version,
        extras: &[String],
        honor_markers: bool,
    ) -> Option<Vec<RegistryDep>>;
}

impl RegistryClient for PackageUniverse {
    fn versions(&self, name: &str) -> Option<Vec<Version>> {
        self.lookup(name)
            .map(|p| p.versions.iter().map(|v| v.version.clone()).collect())
    }

    fn latest(&self, name: &str) -> Option<Version> {
        PackageUniverse::latest(self, name).cloned()
    }

    fn latest_matching(&self, name: &str, req: &VersionReq) -> Option<Version> {
        PackageUniverse::latest_matching(self, name, req).cloned()
    }

    fn deps_of(
        &self,
        name: &str,
        version: &Version,
        extras: &[String],
        honor_markers: bool,
    ) -> Option<Vec<RegistryDep>> {
        self.lookup(name)?;
        Some(
            PackageUniverse::deps_of(self, name, version, extras, honor_markers)
                .into_iter()
                .cloned()
                .collect(),
        )
    }
}

impl FlakyRegistry<'_> {
    /// Existence check with the same failure behavior (and failure
    /// *sequence* — one counter tick per call) as
    /// [`RegistryClient::versions`], minus the version-list clone. This is
    /// what name validation on the emulator hot path uses: it only needs
    /// to know whether the registry answered.
    pub fn validate(&self, name: &str) -> Option<()> {
        guarded(fault::sites::REGISTRY_VERSIONS, name, || {
            if self.fails(name) {
                return None;
            }
            self.inner.lookup(name).map(|_| ())
        })
    }

    /// [`RegistryClient::latest`] returning a borrowed version — same
    /// failure sequence, no clone of the version's backing strings.
    pub fn latest_ref(&self, name: &str) -> Option<&Version> {
        guarded(fault::sites::REGISTRY_LATEST, name, || {
            if self.fails(name) {
                return None;
            }
            self.inner.latest(name)
        })
    }

    /// [`RegistryClient::latest_matching`] returning a borrowed version —
    /// the resolve-latest profile calls this once per ranged declaration
    /// and once per transitive edge.
    pub fn latest_matching_ref(&self, name: &str, req: &VersionReq) -> Option<&Version> {
        guarded(fault::sites::REGISTRY_LATEST_MATCHING, name, || {
            if self.fails(name) {
                return None;
            }
            self.inner.latest_matching(name, req)
        })
    }

    /// [`RegistryClient::deps_of`] returning borrowed edges — the
    /// transitive-expansion BFS visits every edge of every resolved
    /// package, and cloning each `RegistryDep` (name + constraint vector)
    /// per visit dominates that walk.
    pub fn deps_of_ref(
        &self,
        name: &str,
        version: &Version,
        extras: &[String],
        honor_markers: bool,
    ) -> Option<Vec<&RegistryDep>> {
        guarded(fault::sites::REGISTRY_DEPS_OF, name, || {
            if self.fails(name) {
                return None;
            }
            self.inner.lookup(name)?;
            Some(self.inner.deps_of(name, version, extras, honor_markers))
        })
    }
}

/// A registry wrapper that deterministically fails a fraction of queries.
///
/// Failures are a pure function of the query name and an internal counter,
/// so a given run is reproducible while still spreading failures across
/// different queries.
#[derive(Debug)]
pub struct FlakyRegistry<'a> {
    inner: &'a PackageUniverse,
    /// Failure probability in [0, 1].
    failure_rate: f64,
    seed: u64,
    counter: Cell<u64>,
}

impl<'a> FlakyRegistry<'a> {
    /// Wraps a universe with the given failure rate.
    pub fn new(inner: &'a PackageUniverse, failure_rate: f64, seed: u64) -> Self {
        FlakyRegistry {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            seed,
            counter: Cell::new(0),
        }
    }

    /// A reliable (never-failing) wrapper.
    pub fn reliable(inner: &'a PackageUniverse) -> Self {
        FlakyRegistry::new(inner, 0.0, 0)
    }

    fn fails(&self, name: &str) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        let c = self.counter.get();
        self.counter.set(c.wrapping_add(1));
        let mut h = self.seed ^ c.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in name.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3) ^ b as u64;
        }
        // Map to [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.failure_rate
    }
}

impl RegistryClient for FlakyRegistry<'_> {
    fn versions(&self, name: &str) -> Option<Vec<Version>> {
        guarded(fault::sites::REGISTRY_VERSIONS, name, || {
            if self.fails(name) {
                return None;
            }
            RegistryClient::versions(self.inner, name)
        })
    }

    fn latest(&self, name: &str) -> Option<Version> {
        guarded(fault::sites::REGISTRY_LATEST, name, || {
            if self.fails(name) {
                return None;
            }
            RegistryClient::latest(self.inner, name)
        })
    }

    fn latest_matching(&self, name: &str, req: &VersionReq) -> Option<Version> {
        guarded(fault::sites::REGISTRY_LATEST_MATCHING, name, || {
            if self.fails(name) {
                return None;
            }
            RegistryClient::latest_matching(self.inner, name, req)
        })
    }

    fn deps_of(
        &self,
        name: &str,
        version: &Version,
        extras: &[String],
        honor_markers: bool,
    ) -> Option<Vec<RegistryDep>> {
        guarded(fault::sites::REGISTRY_DEPS_OF, name, || {
            if self.fails(name) {
                return None;
            }
            RegistryClient::deps_of(self.inner, name, version, extras, honor_markers)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseConfig;
    use sbomdiff_types::Ecosystem;

    fn uni() -> PackageUniverse {
        PackageUniverse::generate(&UniverseConfig {
            package_count: 50,
            ..UniverseConfig::for_ecosystem(Ecosystem::Python, 77)
        })
    }

    #[test]
    fn universe_implements_client() {
        let uni = uni();
        let versions = RegistryClient::versions(&uni, "numpy").unwrap();
        assert!(!versions.is_empty());
        assert!(RegistryClient::versions(&uni, "definitely-not-a-package").is_none());
    }

    #[test]
    fn reliable_never_fails() {
        let uni = uni();
        let client = FlakyRegistry::reliable(&uni);
        for _ in 0..100 {
            assert!(client.latest("numpy").is_some());
        }
    }

    #[test]
    fn flaky_fails_roughly_at_rate() {
        let uni = uni();
        let client = FlakyRegistry::new(&uni, 0.3, 9);
        let mut failures = 0;
        let total = 1000;
        for i in 0..total {
            let name = if i % 2 == 0 { "numpy" } else { "requests" };
            if client.latest(name).is_none() {
                failures += 1;
            }
        }
        let rate = failures as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "observed failure rate {rate}");
    }

    #[test]
    fn flaky_is_deterministic_per_run() {
        let uni = uni();
        let a = FlakyRegistry::new(&uni, 0.5, 42);
        let b = FlakyRegistry::new(&uni, 0.5, 42);
        let seq_a: Vec<bool> = (0..50).map(|_| a.latest("numpy").is_some()).collect();
        let seq_b: Vec<bool> = (0..50).map(|_| b.latest("numpy").is_some()).collect();
        assert_eq!(seq_a, seq_b);
    }
}

//! The package universe data model and query API.

use std::collections::BTreeMap;

use sbomdiff_types::{Ecosystem, Version, VersionReq};

/// A dependency edge in registry metadata.
#[derive(Debug, Clone)]
pub struct RegistryDep {
    /// Target package name (registry display form).
    pub name: String,
    /// Version requirement on the target.
    pub req: VersionReq,
    /// The extra that activates this edge (`None` = unconditional).
    pub extra: Option<String>,
    /// True when an environment marker excludes this edge on the evaluation
    /// platform. The ground-truth resolver skips such edges; sbom-tool's
    /// transitive resolution ignores markers and follows them (§V-H).
    pub platform_excluded: bool,
}

impl RegistryDep {
    /// Creates an unconditional, platform-independent edge.
    pub fn new(name: impl Into<String>, req: VersionReq) -> Self {
        RegistryDep {
            name: name.into(),
            req,
            extra: None,
            platform_excluded: false,
        }
    }
}

/// One published version of a package.
#[derive(Debug, Clone)]
pub struct VersionEntry {
    /// The concrete version.
    pub version: Version,
    /// Dependency edges (unconditional, extra-gated and platform-gated).
    pub deps: Vec<RegistryDep>,
    /// Whether the version was yanked (excluded from "latest" queries).
    pub yanked: bool,
}

/// A package with its published versions, oldest first.
#[derive(Debug, Clone)]
pub struct PackageEntry {
    /// Registry display name.
    pub name: String,
    /// Published versions in ascending order.
    pub versions: Vec<VersionEntry>,
}

impl PackageEntry {
    /// The newest non-yanked version.
    pub fn latest(&self) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| !v.yanked && !v.version.is_prerelease())
            .map(|v| &v.version)
    }
}

/// A complete synthetic registry for one ecosystem.
#[derive(Debug, Clone)]
pub struct PackageUniverse {
    ecosystem: Ecosystem,
    packages: BTreeMap<String, PackageEntry>,
}

impl PackageUniverse {
    /// Creates an empty universe (packages are added by the generator or by
    /// tests).
    pub fn new(ecosystem: Ecosystem) -> Self {
        PackageUniverse {
            ecosystem,
            packages: BTreeMap::new(),
        }
    }

    /// Generates a universe from a configuration (see
    /// [`UniverseConfig`](crate::UniverseConfig)).
    pub fn generate(config: &crate::UniverseConfig) -> Self {
        crate::generate::generate(config)
    }

    /// The ecosystem this universe serves.
    pub fn ecosystem(&self) -> Ecosystem {
        self.ecosystem
    }

    /// Number of packages.
    pub fn package_count(&self) -> usize {
        self.packages.len()
    }

    /// Iterates over package display names (sorted by canonical name).
    pub fn package_names(&self) -> impl Iterator<Item = &str> {
        self.packages.values().map(|p| p.name.as_str())
    }

    /// Iterates over `(display name, published versions ascending)` pairs
    /// in canonical-name order — one pass for consumers that visit every
    /// package (advisory generation), instead of a `package_names` walk
    /// with a normalized re-`lookup` per name.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[VersionEntry])> {
        self.packages
            .values()
            .map(|p| (p.name.as_str(), p.versions.as_slice()))
    }

    /// Inserts (or replaces) a package entry.
    pub fn insert(&mut self, entry: PackageEntry) {
        let key = sbomdiff_types::name::normalize(self.ecosystem, &entry.name);
        self.packages.insert(key, entry);
    }

    /// Looks a package up by name (ecosystem normalization applied — PyPI
    /// treats `Flask_Login` and `flask-login` as the same package).
    pub fn lookup(&self, name: &str) -> Option<&PackageEntry> {
        // Borrowed-key fast path: corpus and resolver names are usually
        // already canonical, and this lookup is the hottest registry op.
        let key = sbomdiff_types::name::normalized(self.ecosystem, name);
        self.packages.get(key.as_ref())
    }

    /// All versions of a package, ascending.
    pub fn versions(&self, name: &str) -> Vec<&Version> {
        self.lookup(name)
            .map(|p| p.versions.iter().map(|v| &v.version).collect())
            .unwrap_or_default()
    }

    /// The newest non-yanked release of a package.
    pub fn latest(&self, name: &str) -> Option<&Version> {
        self.lookup(name).and_then(PackageEntry::latest)
    }

    /// The newest version satisfying `req` — the sbom-tool pinning strategy
    /// (§V-D).
    pub fn latest_matching(&self, name: &str, req: &VersionReq) -> Option<&Version> {
        let entry = self.lookup(name)?;
        entry
            .versions
            .iter()
            .filter(|v| !v.yanked && req.matches(&v.version))
            .map(|v| &v.version)
            .max()
    }

    /// Dependency edges of a concrete version, filtered by requested extras
    /// and (optionally) the evaluation platform.
    ///
    /// `honor_markers` is what distinguishes the ground-truth dry run
    /// (true: platform-excluded edges are skipped, as pip does) from
    /// sbom-tool's marker-blind resolution (false).
    pub fn deps_of(
        &self,
        name: &str,
        version: &Version,
        extras: &[String],
        honor_markers: bool,
    ) -> Vec<&RegistryDep> {
        let Some(entry) = self.lookup(name) else {
            return Vec::new();
        };
        let Some(ventry) = entry.versions.iter().find(|v| &v.version == version) else {
            return Vec::new();
        };
        ventry
            .deps
            .iter()
            .filter(|d| match &d.extra {
                None => true,
                Some(e) => extras.iter().any(|x| x.eq_ignore_ascii_case(e)),
            })
            .filter(|d| !(honor_markers && d.platform_excluded))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::ConstraintFlavor;

    fn req(s: &str) -> VersionReq {
        VersionReq::parse(s, ConstraintFlavor::Pep440).unwrap()
    }

    fn sample_universe() -> PackageUniverse {
        let mut uni = PackageUniverse::new(Ecosystem::Python);
        uni.insert(PackageEntry {
            name: "Demo_Pkg".into(),
            versions: vec![
                VersionEntry {
                    version: Version::new(1, 0, 0),
                    deps: vec![RegistryDep::new("base", req(">=1.0"))],
                    yanked: false,
                },
                VersionEntry {
                    version: Version::new(1, 5, 0),
                    deps: vec![
                        RegistryDep::new("base", req(">=1.2")),
                        RegistryDep {
                            name: "sec".into(),
                            req: req(">=2.0"),
                            extra: Some("security".into()),
                            platform_excluded: false,
                        },
                        RegistryDep {
                            name: "winonly".into(),
                            req: req(">=0.1"),
                            extra: None,
                            platform_excluded: true,
                        },
                    ],
                    yanked: false,
                },
                VersionEntry {
                    version: Version::new(2, 0, 0),
                    deps: vec![],
                    yanked: true,
                },
            ],
        });
        uni
    }

    #[test]
    fn lookup_is_normalized() {
        let uni = sample_universe();
        assert!(uni.lookup("demo-pkg").is_some());
        assert!(uni.lookup("DEMO_PKG").is_some());
        assert!(uni.lookup("other").is_none());
    }

    #[test]
    fn latest_skips_yanked() {
        let uni = sample_universe();
        assert_eq!(uni.latest("demo-pkg"), Some(&Version::new(1, 5, 0)));
    }

    #[test]
    fn latest_matching_respects_req() {
        let uni = sample_universe();
        assert_eq!(
            uni.latest_matching("demo_pkg", &req(">=1.0, <1.4")),
            Some(&Version::new(1, 0, 0))
        );
        assert_eq!(uni.latest_matching("demo_pkg", &req(">=3.0")), None);
    }

    #[test]
    fn deps_of_extras_and_markers() {
        let uni = sample_universe();
        let v = Version::new(1, 5, 0);
        let plain = uni.deps_of("demo-pkg", &v, &[], true);
        assert_eq!(plain.len(), 1); // base only: extra inactive, marker honored
        let with_extra = uni.deps_of("demo-pkg", &v, &["security".into()], true);
        assert_eq!(with_extra.len(), 2);
        let marker_blind = uni.deps_of("demo-pkg", &v, &[], false);
        assert_eq!(marker_blind.len(), 2); // winonly included
    }

    #[test]
    fn deps_of_unknown_is_empty() {
        let uni = sample_universe();
        assert!(uni
            .deps_of("nope", &Version::new(1, 0, 0), &[], true)
            .is_empty());
        assert!(uni
            .deps_of("demo-pkg", &Version::new(9, 9, 9), &[], true)
            .is_empty());
    }
}

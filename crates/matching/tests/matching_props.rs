//! Property tests for the tiered matcher's three contractual guarantees:
//!
//! 1. **Symmetry** — `match_sboms(a, b)` equals `match_sboms(b, a)` with
//!    the side labels swapped, pair for pair, tier for tier.
//! 2. **Determinism across jobs** — the report is byte-identical for any
//!    `jobs` value (the acceptance criterion behind the service's
//!    jobs=1-vs-jobs=N guarantee).
//! 3. **Tier monotonicity** — raising `max_tier` never loses or reclassifies
//!    a match an earlier tier made; it can only add later-tier pairs.
//!
//! SBOM pairs are synthesized from a seeded RNG: a shared package pool with
//! per-side cosmetic mutations (PEP 503 respellings, `v` prefixes, Maven
//! form changes, typos, drops) — the §V-E divergence classes the matcher
//! exists to absorb.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sbomdiff_matching::{match_sboms, MatchConfig, MatchReport, MatchTier};
use sbomdiff_types::{Component, Ecosystem, Sbom};

const ECOSYSTEMS: [Ecosystem; 5] = [
    Ecosystem::Python,
    Ecosystem::Java,
    Ecosystem::Go,
    Ecosystem::JavaScript,
    Ecosystem::Swift,
];

/// One side's cosmetic respelling of pool package `i`.
fn spell(rng: &mut StdRng, eco: Ecosystem, i: usize) -> (String, Option<String>) {
    let version = format!("{}.{}.{}", i % 7, i % 11, i % 5);
    let (name, version) = match eco {
        Ecosystem::Python => {
            let base = format!("pkg-{i:03}-lib");
            let name = match rng.gen_range(0..4) {
                0 => base,
                1 => base.replace('-', "_"),
                2 => base.replace('-', "."),
                _ => base.to_uppercase(),
            };
            (name, version)
        }
        Ecosystem::Java => {
            let group = format!("org.example.g{}", i % 13);
            let artifact = format!("artifact-{i:03}");
            let name = match rng.gen_range(0..3) {
                0 => format!("{group}:{artifact}"),
                1 => format!("{group}.{artifact}"),
                _ => artifact,
            };
            (name, version)
        }
        Ecosystem::Go => {
            let name = format!("github.com/org{}/mod-{i:03}", i % 17);
            let version = if rng.gen_bool(0.5) {
                format!("v{version}")
            } else {
                version
            };
            (name, version)
        }
        Ecosystem::JavaScript => {
            let name = if rng.gen_bool(0.3) {
                format!("@scope{}/dep-{i:03}", i % 5)
            } else {
                format!("dep-{i:03}")
            };
            (name, version)
        }
        _ => {
            let name = if rng.gen_bool(0.4) {
                format!("PodKit{i:03}/Sub")
            } else {
                format!("PodKit{i:03}")
            };
            (name, version)
        }
    };
    // Occasional typo (drop one inner char) and occasional missing version.
    let name = if rng.gen_bool(0.1) && name.len() > 8 {
        let cut = 4 + (i % (name.len() - 6));
        format!("{}{}", &name[..cut], &name[cut + 1..])
    } else {
        name
    };
    let version = if rng.gen_bool(0.05) {
        None
    } else {
        Some(version)
    };
    (name, version)
}

/// A seeded cross-tool SBOM pair over a shared pool.
fn sbom_pair(seed: u64) -> (Sbom, Sbom) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = rng.gen_range(5..40usize);
    let mut a = Sbom::new("tool-a", "1");
    let mut b = Sbom::new("tool-b", "1");
    for i in 0..pool {
        let eco = ECOSYSTEMS[rng.gen_range(0..ECOSYSTEMS.len())];
        for (side, keep) in [(&mut a, rng.gen_bool(0.9)), (&mut b, rng.gen_bool(0.9))] {
            if keep {
                let (name, version) = spell(&mut rng, eco, i);
                side.push(Component::new(eco, name, version));
            }
        }
    }
    (a, b)
}

/// Projects a report into a comparable, side-agnostic form.
fn pair_set(r: &MatchReport) -> Vec<(MatchTier, String, String)> {
    let mut v: Vec<_> = r
        .pairs
        .iter()
        .map(|p| {
            let (x, y) = (p.a.to_string(), p.b.to_string());
            (p.tier, x, y)
        })
        .collect();
    v.sort();
    v
}

#[test]
fn matching_is_symmetric_modulo_side_labels() {
    for seed in 0..40u64 {
        let (a, b) = sbom_pair(seed);
        let cfg = MatchConfig::default();
        let ab = match_sboms(&a, &b, &cfg);
        let ba = match_sboms(&b, &a, &cfg);
        let mut ba_swapped: Vec<_> = ba
            .pairs
            .iter()
            .map(|p| (p.tier, p.b.to_string(), p.a.to_string()))
            .collect();
        ba_swapped.sort();
        assert_eq!(pair_set(&ab), ba_swapped, "seed {seed}");
        assert_eq!(ab.only_a, ba.only_b, "seed {seed}");
        assert_eq!(ab.only_b, ba.only_a, "seed {seed}");
        assert_eq!(ab.jaccard_matched(), ba.jaccard_matched(), "seed {seed}");
    }
}

#[test]
fn matching_is_deterministic_across_jobs_counts() {
    for seed in 0..25u64 {
        let (a, b) = sbom_pair(seed);
        let baseline = match_sboms(
            &a,
            &b,
            &MatchConfig {
                jobs: 1,
                ..MatchConfig::default()
            },
        );
        for jobs in [2usize, 4, 8] {
            let r = match_sboms(
                &a,
                &b,
                &MatchConfig {
                    jobs,
                    ..MatchConfig::default()
                },
            );
            assert_eq!(baseline, r, "seed {seed} jobs {jobs}");
            assert_eq!(baseline.explain(), r.explain(), "seed {seed} jobs {jobs}");
        }
    }
}

#[test]
fn tiers_are_monotone() {
    for seed in 0..25u64 {
        let (a, b) = sbom_pair(seed);
        let mut prev: Option<MatchReport> = None;
        for max_tier in MatchTier::ALL {
            let cfg = MatchConfig {
                max_tier,
                ..MatchConfig::default()
            };
            let r = match_sboms(&a, &b, &cfg);
            if let Some(p) = &prev {
                // Every pair matched with tiers ≤ k must persist unchanged
                // when tier k+1 is enabled.
                let now = pair_set(&r);
                for entry in pair_set(p) {
                    assert!(
                        now.contains(&entry),
                        "seed {seed}: pair {entry:?} lost when enabling {max_tier}"
                    );
                }
                assert!(r.matched() >= p.matched(), "seed {seed}");
            }
            prev = Some(r);
        }
    }
}

#[test]
fn jaccard_matched_dominates_exact_and_stays_in_range() {
    for seed in 0..40u64 {
        let (a, b) = sbom_pair(seed);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        match (r.jaccard_exact(), r.jaccard_matched()) {
            (Some(je), Some(jm)) => {
                assert!(jm >= je, "seed {seed}: {jm} < {je}");
                assert!((0.0..=1.0).contains(&je) && (0.0..=1.0).contains(&jm));
            }
            (None, None) => {}
            other => panic!("seed {seed}: inconsistent jaccards {other:?}"),
        }
        // Accounting: matched + leftovers reconstruct both sides.
        assert_eq!(r.matched() + r.only_a.len(), r.a_distinct, "seed {seed}");
        assert_eq!(r.matched() + r.only_b.len(), r.b_distinct, "seed {seed}");
    }
}

#[test]
fn lsh_loses_no_match_brute_force_finds_on_typo_corpora() {
    // The LSH index is an *optimization* of the brute-force candidate
    // enumeration: on corpora of single-typo divergences (trigram
    // similarity well above the banding knee) both paths must converge to
    // the same match count.
    for seed in 100..115u64 {
        let (a, b) = sbom_pair(seed);
        let lsh = match_sboms(&a, &b, &MatchConfig::default());
        let brute = match_sboms(
            &a,
            &b,
            &MatchConfig {
                brute_force: true,
                ..MatchConfig::default()
            },
        );
        assert_eq!(
            pair_set(&lsh),
            pair_set(&brute),
            "seed {seed}: LSH and brute-force disagree"
        );
    }
}

//! Tier-2 ecosystem-specific normalization keys.
//!
//! Each key folds one class of purely-cosmetic cross-tool divergence the
//! paper's §V-E catalogs (and our four emulator profiles reproduce):
//!
//! * **Python**: PEP 503 — `Foo_Bar` ≡ `foo-bar` ≡ `foo.bar`.
//! * **Java**: Trivy/GitHub emit `group:artifact`, sbom-tool
//!   `group.artifact` — the colon folds to a dot, case-insensitively.
//!   Syft emits the bare `artifact`, recovered by the secondary
//!   [`base_name`] key.
//! * **JavaScript**: the npm scope marker (`@scope/name` vs `scope/name`)
//!   folds away; npm names are already lowercase-only.
//! * **Go**: the `/vN` major-version module suffix folds away; the `v`
//!   version prefix is handled by [`normalize_version`].
//! * **Swift/CocoaPods**: Syft/Trivy report the `Pod/Subspec`, sbom-tool
//!   the main pod — recovered by the secondary [`base_name`] key.
//! * **.NET / PHP**: registry names are case-insensitive — lowercased.

use sbomdiff_types::Ecosystem;

/// The primary tier-2 name key.
pub fn normalize_name(eco: Ecosystem, raw: &str) -> String {
    match eco {
        Ecosystem::Python | Ecosystem::DotNet | Ecosystem::Php => {
            sbomdiff_types::name::normalize(eco, raw)
        }
        Ecosystem::Java => raw.replace(':', ".").to_ascii_lowercase(),
        Ecosystem::JavaScript => raw.strip_prefix('@').unwrap_or(raw).to_ascii_lowercase(),
        Ecosystem::Go => strip_go_major_suffix(raw).to_string(),
        _ => raw.to_string(),
    }
}

/// The secondary tier-2 name key, for ecosystems where one tool drops the
/// namespace entirely: the Maven artifact without its group, the CocoaPods
/// main pod without the subspec. `None` when the ecosystem has no such
/// convention or the secondary key adds nothing over the primary.
pub fn base_name(eco: Ecosystem, raw: &str) -> Option<String> {
    match eco {
        Ecosystem::Java => {
            // `group:artifact` splits exactly; a dotted-only spelling can
            // only fall back to the final segment heuristically.
            let artifact = match raw.split_once(':') {
                Some((_, a)) => a,
                None => raw.rsplit('.').next().unwrap_or(raw),
            };
            Some(artifact.to_ascii_lowercase())
        }
        Ecosystem::Swift => Some(raw.split('/').next().unwrap_or(raw).to_string()),
        _ => None,
    }
}

/// Normalized version: a leading `v`/`V` immediately followed by a digit is
/// stripped (Go modules keep it, Trivy/GitHub strip it — §V-E); everything
/// else, including GitHub DG's verbatim ranges, passes through.
pub fn normalize_version(raw: &str) -> String {
    raw.strip_prefix(['v', 'V'])
        .filter(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
        .unwrap_or(raw)
        .to_string()
}

/// Strips a Go module `/vN` (N ≥ 2) major-version suffix:
/// `github.com/a/b/v2` and `github.com/a/b` are the same module line.
fn strip_go_major_suffix(path: &str) -> &str {
    if let Some((head, tail)) = path.rsplit_once('/') {
        if let Some(digits) = tail.strip_prefix('v') {
            if !digits.is_empty()
                && digits.bytes().all(|b| b.is_ascii_digit())
                && digits != "0"
                && digits != "1"
            {
                return head;
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn python_folds_pep503() {
        for spelling in ["Flask_Login", "flask-login", "flask.login", "FLASK__LOGIN"] {
            assert_eq!(
                normalize_name(Ecosystem::Python, spelling),
                "flask-login",
                "{spelling}"
            );
        }
    }

    #[test]
    fn java_colon_folds_to_dot() {
        assert_eq!(
            normalize_name(Ecosystem::Java, "com.google.guava:guava"),
            "com.google.guava.guava"
        );
        assert_eq!(
            normalize_name(Ecosystem::Java, "com.google.guava.guava"),
            "com.google.guava.guava"
        );
    }

    #[test]
    fn java_base_name_recovers_artifact() {
        assert_eq!(
            base_name(Ecosystem::Java, "org.apache.commons:commons-lang3"),
            Some("commons-lang3".to_string())
        );
        assert_eq!(
            base_name(Ecosystem::Java, "org.apache.commons.commons-lang3"),
            Some("commons-lang3".to_string())
        );
        assert_eq!(
            base_name(Ecosystem::Java, "commons-lang3"),
            Some("commons-lang3".to_string())
        );
    }

    #[test]
    fn npm_scope_marker_folds() {
        assert_eq!(
            normalize_name(Ecosystem::JavaScript, "@babel/core"),
            "babel/core"
        );
        assert_eq!(
            normalize_name(Ecosystem::JavaScript, "babel/core"),
            "babel/core"
        );
        assert_eq!(normalize_name(Ecosystem::JavaScript, "lodash"), "lodash");
        assert_eq!(base_name(Ecosystem::JavaScript, "@babel/core"), None);
    }

    #[test]
    fn go_major_suffix_folds() {
        assert_eq!(
            normalize_name(Ecosystem::Go, "github.com/a/b/v2"),
            "github.com/a/b"
        );
        assert_eq!(
            normalize_name(Ecosystem::Go, "github.com/a/b"),
            "github.com/a/b"
        );
        // v0/v1 are never written as suffixes; a literal `/v1` path element
        // is part of the module path, not a major marker.
        assert_eq!(
            normalize_name(Ecosystem::Go, "github.com/a/v1"),
            "github.com/a/v1"
        );
        assert_eq!(normalize_name(Ecosystem::Go, "v2"), "v2");
    }

    #[test]
    fn swift_base_name_is_main_pod() {
        assert_eq!(
            base_name(Ecosystem::Swift, "Firebase/Auth"),
            Some("Firebase".to_string())
        );
        assert_eq!(
            base_name(Ecosystem::Swift, "Firebase"),
            Some("Firebase".to_string())
        );
    }

    #[test]
    fn version_v_prefix_strips_only_before_digits() {
        assert_eq!(normalize_version("v1.2.3"), "1.2.3");
        assert_eq!(normalize_version("V1.2.3"), "1.2.3");
        assert_eq!(normalize_version("1.2.3"), "1.2.3");
        assert_eq!(normalize_version("vendored"), "vendored");
        assert_eq!(normalize_version(""), "");
        assert_eq!(normalize_version(">= 1.0, < 2.0"), ">= 1.0, < 2.0");
    }

    #[test]
    fn case_sensitive_ecosystems_pass_through() {
        assert_eq!(normalize_name(Ecosystem::Rust, "serde_json"), "serde_json");
        assert_eq!(normalize_name(Ecosystem::Ruby, "Rails"), "Rails");
        assert_eq!(
            normalize_name(Ecosystem::DotNet, "Newtonsoft.Json"),
            "newtonsoft.json"
        );
    }
}

//! MinHash-over-trigrams LSH candidate index for tier 3.
//!
//! Brute-force fuzzy matching scores every same-ecosystem `A×B` pair —
//! O(n²), minutes at 100k components. The LSH index instead buckets both
//! sides by banded MinHash signatures of their name trigram sets: names
//! with high trigram-Jaccard overlap collide in at least one band with
//! high probability, and only colliding pairs are scored.
//!
//! Parameters (see DESIGN.md §17 for the tuning rationale): 16 hash
//! functions split into 8 bands × 2 rows. With trigram similarity `s`, the
//! collision probability is `1 − (1 − s²)⁸` — ≈ 99.9% at s = 0.8 (the
//! regime of single-typo names), ≈ 3% at s = 0.2 (unrelated names), which
//! is what makes the index both safe and sub-quadratic.
//!
//! Everything here is deterministic (fixed seeds, FNV-1a string hashing —
//! never `std`'s randomized hasher) and symmetric in the two sides, so the
//! engine's reproducibility and side-swap guarantees carry through.

use std::collections::{BTreeSet, HashMap};

use sbomdiff_types::Ecosystem;

/// Tuning knobs for the candidate index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LshParams {
    /// MinHash functions per signature. Must be a multiple of `bands`.
    pub num_hashes: usize,
    /// Bands the signature is split into (rows = num_hashes / bands).
    pub bands: usize,
    /// Seed for the hash family (fixed: reports must be reproducible).
    pub seed: u64,
    /// Buckets whose `|A| · |B|` cross product exceeds this are skipped:
    /// a degenerate bucket (e.g. thousands of identical short names)
    /// would otherwise reintroduce the quadratic blow-up. Symmetric in
    /// the sides, so skipping cannot break side-swap symmetry.
    pub max_bucket_product: usize,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams {
            num_hashes: 16,
            bands: 8,
            seed: 0x5B0D_D1FF_0000_0001,
            max_bucket_product: 4096,
        }
    }
}

/// SplitMix64 — the workspace's standard seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: deterministic across runs and platforms, unlike
/// `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The banded MinHash signature of a name: one bucket hash per band.
pub fn band_keys(name: &str, eco: Ecosystem, p: &LshParams) -> Vec<u64> {
    let rows = (p.num_hashes / p.bands).max(1);
    let bytes = name.as_bytes();
    let mut sig = vec![u64::MAX; p.num_hashes];
    let mut feed = |token: &[u8]| {
        let h0 = fnv1a(token);
        for (i, slot) in sig.iter_mut().enumerate() {
            let h = splitmix64(h0 ^ splitmix64(p.seed ^ i as u64));
            if h < *slot {
                *slot = h;
            }
        }
    };
    if bytes.len() < 3 {
        feed(bytes);
    } else {
        for w in bytes.windows(3) {
            feed(w);
        }
    }
    (0..p.bands)
        .map(|b| {
            let mut acc = splitmix64(p.seed ^ 0xBA2D ^ ((b as u64) << 8) ^ eco as u64);
            for r in 0..rows {
                acc = splitmix64(acc ^ sig[b * rows + r]);
            }
            acc
        })
        .collect()
}

/// Candidate `(a_index, b_index)` pairs via LSH banding: every pair whose
/// names collide in at least one band, deduplicated and sorted. Only
/// same-ecosystem pairs are produced (the ecosystem participates in the
/// band hash *and* is re-checked, so hash collisions cannot leak pairs
/// across ecosystems).
pub fn lsh_candidates(
    a: &[(Ecosystem, &str)],
    b: &[(Ecosystem, &str)],
    p: &LshParams,
) -> Vec<(usize, usize)> {
    let mut buckets: HashMap<u64, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, (eco, name)) in a.iter().enumerate() {
        for key in band_keys(name, *eco, p) {
            buckets.entry(key).or_default().0.push(i);
        }
    }
    for (j, (eco, name)) in b.iter().enumerate() {
        for key in band_keys(name, *eco, p) {
            buckets.entry(key).or_default().1.push(j);
        }
    }
    let mut pairs = BTreeSet::new();
    for (va, vb) in buckets.values() {
        if va.is_empty() || vb.is_empty() || va.len() * vb.len() > p.max_bucket_product {
            continue;
        }
        for &i in va {
            for &j in vb {
                if a[i].0 == b[j].0 {
                    pairs.insert((i, j));
                }
            }
        }
    }
    pairs.into_iter().collect()
}

/// The O(n²) reference: every same-ecosystem pair. Exists so the bench can
/// quantify the LSH speedup and tests can verify the index loses no
/// above-threshold match the brute-force path would have found.
pub fn brute_candidates(a: &[(Ecosystem, &str)], b: &[(Ecosystem, &str)]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (i, (eco_a, _)) in a.iter().enumerate() {
        for (j, (eco_b, _)) in b.iter().enumerate() {
            if eco_a == eco_b {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(names: &[&'static str]) -> Vec<(Ecosystem, &'static str)> {
        names.iter().map(|n| (Ecosystem::Python, *n)).collect()
    }

    #[test]
    fn near_duplicates_collide() {
        let p = LshParams::default();
        let a = side(&["urllib3", "requests", "flask"]);
        let b = side(&["urlib3", "reqests", "django"]);
        let cands = lsh_candidates(&a, &b, &p);
        assert!(cands.contains(&(0, 0)), "urllib3/urlib3 must collide");
        assert!(cands.contains(&(1, 1)), "requests/reqests must collide");
    }

    #[test]
    fn identical_names_always_collide() {
        let p = LshParams::default();
        let a = side(&["some-package-name"]);
        let b = side(&["some-package-name"]);
        assert_eq!(lsh_candidates(&a, &b, &p), vec![(0, 0)]);
    }

    #[test]
    fn cross_ecosystem_pairs_never_emitted() {
        let p = LshParams::default();
        let a = vec![(Ecosystem::Python, "lodash")];
        let b = vec![(Ecosystem::JavaScript, "lodash")];
        assert!(lsh_candidates(&a, &b, &p).is_empty());
    }

    #[test]
    fn candidates_are_sorted_and_deduped() {
        let p = LshParams::default();
        let a = side(&["pkg-aa", "pkg-ab"]);
        let b = side(&["pkg-aa", "pkg-ab"]);
        let cands = lsh_candidates(&a, &b, &p);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cands, sorted);
    }

    #[test]
    fn symmetry_under_side_swap() {
        let p = LshParams::default();
        let a = side(&["urllib3", "flask", "numpy"]);
        let b = side(&["urlib3", "numpyy"]);
        let ab = lsh_candidates(&a, &b, &p);
        let mut ba: Vec<(usize, usize)> = lsh_candidates(&b, &a, &p)
            .into_iter()
            .map(|(j, i)| (i, j))
            .collect();
        ba.sort_unstable();
        assert_eq!(ab, ba);
    }

    #[test]
    fn candidate_volume_is_subquadratic_on_distinct_names() {
        let p = LshParams::default();
        let names_a: Vec<String> = (0..400).map(|i| format!("alpha-package-{i:03}")).collect();
        let names_b: Vec<String> = (0..400).map(|i| format!("omega-library-{i:03}")).collect();
        let a: Vec<(Ecosystem, &str)> = names_a
            .iter()
            .map(|n| (Ecosystem::Python, n.as_str()))
            .collect();
        let b: Vec<(Ecosystem, &str)> = names_b
            .iter()
            .map(|n| (Ecosystem::Python, n.as_str()))
            .collect();
        let cands = lsh_candidates(&a, &b, &p);
        let brute = brute_candidates(&a, &b);
        assert_eq!(brute.len(), 160_000);
        assert!(
            cands.len() < brute.len() / 10,
            "LSH examined {} of {} pairs",
            cands.len(),
            brute.len()
        );
    }

    #[test]
    fn brute_candidates_cover_everything_same_eco() {
        let a = vec![(Ecosystem::Python, "x"), (Ecosystem::Go, "y")];
        let b = vec![(Ecosystem::Python, "z"), (Ecosystem::Go, "w")];
        assert_eq!(brute_candidates(&a, &b), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn band_keys_are_stable_for_fixed_seed() {
        let p = LshParams::default();
        let k1 = band_keys("requests", Ecosystem::Python, &p);
        let k2 = band_keys("requests", Ecosystem::Python, &p);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), p.bands);
        // Different seed → different family.
        let p2 = LshParams {
            seed: 42,
            ..p.clone()
        };
        assert_ne!(k1, band_keys("requests", Ecosystem::Python, &p2));
    }
}

//! Tier-1 curated alias table.
//!
//! Some cross-tool name divergences are not mechanical: a Python import
//! name differs from its PyPI distribution name (`bs4` vs
//! `beautifulsoup4`), a package migrated hosts (`github.com/golang/protobuf`
//! vs `google.golang.org/protobuf`), an npm package predates scoping
//! (`babel-core` vs `@babel/core`). No normalization rule recovers these —
//! the Python SBOM-tool study (arXiv 2409.01214) catalogs exactly this
//! class of gap — so they live in a curated table.
//!
//! # Format
//!
//! The table is a set of *alias groups*: per ecosystem, a list of name
//! spellings that denote the same package. Lookup normalizes the query with
//! the tier-2 rules first (so `@babel/core` and `Babel-Core` both hit their
//! groups regardless of spelling) and returns the group id. Two components
//! match at tier 1 when their names land in the same group *and* their
//! normalized versions agree — an alias never forgives a version
//! disagreement.

use std::collections::HashMap;

use sbomdiff_types::Ecosystem;

use crate::normalize::normalize_name;

/// Curated equivalence classes of package-name spellings.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    map: HashMap<(Ecosystem, String), u32>,
    groups: u32,
}

impl AliasTable {
    /// An empty table (tier 1 becomes a no-op).
    pub fn new() -> Self {
        AliasTable::default()
    }

    /// The built-in table, seeded with the divergences our four emulator
    /// profiles and the ingested real-tool documents actually produce:
    /// import-vs-distribution Python names, pre-scoping npm names,
    /// well-known Maven coordinates whose bare artifact is unambiguous,
    /// and Go modules that changed import paths.
    pub fn builtin() -> Self {
        let mut t = AliasTable::new();
        // Python: import name != distribution name (arXiv 2409.01214).
        t.add_group(Ecosystem::Python, &["beautifulsoup4", "bs4"]);
        t.add_group(Ecosystem::Python, &["pillow", "pil"]);
        t.add_group(Ecosystem::Python, &["pyyaml", "yaml"]);
        t.add_group(Ecosystem::Python, &["scikit-learn", "sklearn"]);
        t.add_group(Ecosystem::Python, &["opencv-python", "cv2"]);
        t.add_group(Ecosystem::Python, &["python-dateutil", "dateutil"]);
        t.add_group(Ecosystem::Python, &["msgpack", "msgpack-python"]);
        t.add_group(Ecosystem::Python, &["attrs", "attr"]);
        // JavaScript: packages that moved into a scope.
        t.add_group(Ecosystem::JavaScript, &["babel-core", "@babel/core"]);
        t.add_group(Ecosystem::JavaScript, &["babel-cli", "@babel/cli"]);
        // Java: coordinates whose bare artifact is globally unambiguous
        // (Syft's ArtifactOnly naming vs the group-qualified forms).
        t.add_group(Ecosystem::Java, &["junit:junit", "junit"]);
        t.add_group(Ecosystem::Java, &["com.google.guava:guava", "guava"]);
        // Go: import-path migrations.
        t.add_group(
            Ecosystem::Go,
            &["github.com/golang/protobuf", "google.golang.org/protobuf"],
        );
        t
    }

    /// Adds one group of equivalent spellings. Spellings are stored under
    /// their tier-2 normalized form; re-adding a known spelling joins the
    /// new group to the existing one's id (last add wins for that
    /// spelling), so groups should be disjoint.
    pub fn add_group(&mut self, eco: Ecosystem, spellings: &[&str]) {
        let id = self.groups;
        self.groups += 1;
        for s in spellings {
            self.map.insert((eco, normalize_name(eco, s)), id);
        }
    }

    /// The alias group containing `name`, if any. `name` may be in any
    /// spelling the tier-2 normalizer folds.
    pub fn group_of(&self, eco: Ecosystem, name: &str) -> Option<u32> {
        self.map.get(&(eco, normalize_name(eco, name))).copied()
    }

    /// Number of spellings in the table.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no groups were added.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_groups_resolve_in_any_spelling() {
        let t = AliasTable::builtin();
        let a = t.group_of(Ecosystem::Python, "beautifulsoup4");
        let b = t.group_of(Ecosystem::Python, "bs4");
        assert!(a.is_some());
        assert_eq!(a, b);
        // PEP 503 spelling variants hit the same group.
        assert_eq!(a, t.group_of(Ecosystem::Python, "BeautifulSoup4"));
        // Scoped and unscoped npm spellings agree.
        assert_eq!(
            t.group_of(Ecosystem::JavaScript, "babel-core"),
            t.group_of(Ecosystem::JavaScript, "@babel/core")
        );
        // Colon and artifact-only Maven spellings agree.
        assert_eq!(
            t.group_of(Ecosystem::Java, "junit:junit"),
            t.group_of(Ecosystem::Java, "junit")
        );
    }

    #[test]
    fn groups_are_ecosystem_scoped() {
        let t = AliasTable::builtin();
        assert!(t.group_of(Ecosystem::Python, "bs4").is_some());
        assert!(t.group_of(Ecosystem::Ruby, "bs4").is_none());
    }

    #[test]
    fn distinct_groups_have_distinct_ids() {
        let t = AliasTable::builtin();
        assert_ne!(
            t.group_of(Ecosystem::Python, "bs4"),
            t.group_of(Ecosystem::Python, "pillow")
        );
    }

    #[test]
    fn empty_table_matches_nothing() {
        let t = AliasTable::new();
        assert!(t.is_empty());
        assert_eq!(t.group_of(Ecosystem::Python, "bs4"), None);
        let b = AliasTable::builtin();
        assert!(!b.is_empty());
        assert!(b.len() >= 20);
    }
}

//! Multi-tier component matching for cross-tool SBOM diffs.
//!
//! The paper's §V-E shows that *naming conventions* are exactly where
//! metadata-based SBOM generation diverges across tools: the same Maven
//! package appears as `artifact`, `group:artifact` or `group.artifact`, Go
//! versions carry or drop the `v` prefix, PyPI names vary in PEP 503
//! spelling, CocoaPods subspecs collapse to the main pod. Exact
//! `(name, version)` identity therefore *over-reports* drift on cross-tool
//! pairs. This crate recovers the cosmetically-divergent matches with a
//! tiered matcher, reported *alongside* the exact diff so both numbers stay
//! visible (`jaccard_exact` vs `jaccard_matched`).
//!
//! # Tiers
//!
//! Components that survive the baseline exact-key stage are matched by a
//! cascade of increasingly permissive, increasingly evidence-weak tiers:
//!
//! | tier | name | evidence |
//! |------|------|----------|
//! | — | `exact` | identical `(name, version)` key (the baseline diff) |
//! | 0 | `purl` | identical canonical Package URL |
//! | 1 | `alias` | curated alias table ([`AliasTable`]) |
//! | 2 | `normalized` | ecosystem-specific name/version normalization |
//! | 3 | `fuzzy` | bounded Jaro-Winkler/Levenshtein over an LSH index |
//!
//! Matching is *staged greedy*: each tier only sees components no earlier
//! tier claimed, so enabling a later tier can never lose a match an earlier
//! tier made (tier monotonicity), and the per-tier breakdown in
//! [`MatchReport::tier_counts`] is stable under configuration changes.
//!
//! # Guarantees
//!
//! * **Symmetric** — `match_sboms(a, b)` and `match_sboms(b, a)` produce
//!   the same pairs with sides swapped. Every stage key and score is
//!   side-agnostic, and ties are broken on the *unordered* key pair.
//! * **Deterministic** — byte-identical reports for any
//!   [`MatchConfig::jobs`] value: candidate scoring fans out through
//!   `sbomdiff_parallel::par_map` (ordered results), and all collections
//!   iterate in `BTreeMap` key order.
//! * **Near-linear** — tier 3 never enumerates the O(n²) cross product by
//!   default; candidate pairs come from a MinHash-over-trigrams LSH index
//!   ([`lsh`]), keeping 100k-component documents tractable
//!   (`BENCH_matching.json` tracks the LSH-vs-brute-force ratio).
//!
//! # Example
//!
//! ```
//! use sbomdiff_types::{Component, Ecosystem, Sbom};
//! use sbomdiff_matching::{match_sboms, MatchConfig, MatchTier};
//!
//! let mut a = Sbom::new("syft", "1");
//! a.push(Component::new(Ecosystem::Python, "Flask_Login", Some("0.6.2".into())));
//! let mut b = Sbom::new("trivy", "1");
//! b.push(Component::new(Ecosystem::Python, "flask-login", Some("0.6.2".into())));
//!
//! let report = match_sboms(&a, &b, &MatchConfig::default());
//! assert_eq!(report.jaccard_exact(), Some(0.0));
//! assert_eq!(report.jaccard_matched(), Some(1.0));
//! assert_eq!(report.pairs[0].tier, MatchTier::Normalized);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alias;
pub mod engine;
pub mod fuzzy;
pub mod lsh;
pub mod normalize;

use std::fmt;

pub use alias::AliasTable;
pub use engine::match_sboms;
pub use lsh::LshParams;

/// The tier at which a component pair was matched.
///
/// Order matters: earlier tiers carry stronger evidence and always win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchTier {
    /// Identical exact `(name, version)` key — the baseline diff identity.
    Exact,
    /// Tier 0: identical canonical Package URL.
    Purl,
    /// Tier 1: both names in the same curated alias group, same version.
    Alias,
    /// Tier 2: identical after ecosystem-specific normalization (PEP 503,
    /// Maven `group:artifact` folding, Go `v`-prefix/`/vN` suffix, npm
    /// scope folding, CocoaPods main-pod folding).
    Normalized,
    /// Tier 3: bounded Jaro-Winkler/Levenshtein similarity above the
    /// per-ecosystem adaptive threshold, via the LSH candidate index.
    Fuzzy,
}

impl MatchTier {
    /// All tiers, strongest evidence first.
    pub const ALL: [MatchTier; 5] = [
        MatchTier::Exact,
        MatchTier::Purl,
        MatchTier::Alias,
        MatchTier::Normalized,
        MatchTier::Fuzzy,
    ];

    /// Number of tiers (the width of [`MatchReport::tier_counts`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase label (metrics label values, CSV columns, CLI).
    pub fn label(self) -> &'static str {
        match self {
            MatchTier::Exact => "exact",
            MatchTier::Purl => "purl",
            MatchTier::Alias => "alias",
            MatchTier::Normalized => "normalized",
            MatchTier::Fuzzy => "fuzzy",
        }
    }

    /// Position in [`MatchTier::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for MatchTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for [`match_sboms`].
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Highest tier to run (inclusive). [`MatchTier::Exact`] alone
    /// reproduces the baseline exact diff.
    pub max_tier: MatchTier,
    /// Worker threads for tier-3 candidate scoring. Output is
    /// byte-identical for every value.
    pub jobs: usize,
    /// LSH candidate-index parameters for tier 3.
    pub lsh: LshParams,
    /// Enumerate the full same-ecosystem cross product instead of LSH
    /// candidates (the O(n²) reference path the bench compares against).
    pub brute_force: bool,
    /// Alias table for tier 1.
    pub aliases: AliasTable,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            max_tier: MatchTier::Fuzzy,
            jobs: 1,
            lsh: LshParams::default(),
            brute_force: false,
            aliases: AliasTable::builtin(),
        }
    }
}

impl MatchConfig {
    /// True when `tier` participates under this configuration.
    pub fn tier_enabled(&self, tier: MatchTier) -> bool {
        tier.index() <= self.max_tier.index()
    }
}

/// One matched component pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedPair {
    /// Exact key of the component on side A.
    pub a: sbomdiff_types::ComponentKey,
    /// Exact key of the component on side B.
    pub b: sbomdiff_types::ComponentKey,
    /// Tier that claimed the pair.
    pub tier: MatchTier,
    /// Match confidence in `[0, 1]` (1.0 for deterministic tiers,
    /// the similarity score for tier 3; quantized to 1e-4).
    pub score: f64,
}

/// The result of matching two SBOMs: pairs, leftovers, and the similarity
/// metrics derived from them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchReport {
    /// Matched pairs, sorted by `(tier, a)`.
    pub pairs: Vec<MatchedPair>,
    /// Distinct A-side keys no tier matched, sorted.
    pub only_a: Vec<sbomdiff_types::ComponentKey>,
    /// Distinct B-side keys no tier matched, sorted.
    pub only_b: Vec<sbomdiff_types::ComponentKey>,
    /// Distinct exact keys on side A.
    pub a_distinct: usize,
    /// Distinct exact keys on side B.
    pub b_distinct: usize,
}

impl MatchReport {
    /// Matches per tier, indexed by [`MatchTier::index`].
    pub fn tier_counts(&self) -> [usize; MatchTier::COUNT] {
        let mut counts = [0usize; MatchTier::COUNT];
        for p in &self.pairs {
            counts[p.tier.index()] += 1;
        }
        counts
    }

    /// Total matched pairs across all tiers.
    pub fn matched(&self) -> usize {
        self.pairs.len()
    }

    /// Pairs matched by exact `(name, version)` identity alone.
    pub fn exact_matched(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.tier == MatchTier::Exact)
            .count()
    }

    /// Jaccard over exact keys — identical to the baseline
    /// `diff::jaccard(key_set(a), key_set(b))`. `None` when both sides are
    /// empty (the paper excludes such repositories).
    pub fn jaccard_exact(&self) -> Option<f64> {
        self.jaccard_of(self.exact_matched())
    }

    /// Jaccard counting every matched pair as an intersection element:
    /// `matched / (|A| + |B| − matched)`. Always ≥ [`Self::jaccard_exact`]
    /// because the matched pairs are a superset of the exact ones.
    pub fn jaccard_matched(&self) -> Option<f64> {
        self.jaccard_of(self.matched())
    }

    fn jaccard_of(&self, matched: usize) -> Option<f64> {
        if self.a_distinct == 0 && self.b_distinct == 0 {
            return None;
        }
        let union = self.a_distinct + self.b_distinct - matched;
        Some(matched as f64 / union as f64)
    }

    /// Stable plain-text report: totals, per-tier breakdown, every
    /// non-exact match with its tier and score, and the leftovers. This is
    /// what `sbomdiff diff --match=tiered --explain` prints and what the
    /// matching golden fixtures pin.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "a_distinct: {}", self.a_distinct);
        let _ = writeln!(s, "b_distinct: {}", self.b_distinct);
        let counts = self.tier_counts();
        let breakdown = MatchTier::ALL
            .iter()
            .map(|t| format!("{}={}", t.label(), counts[t.index()]))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(s, "matched: {} ({breakdown})", self.matched());
        let fmt_j = |j: Option<f64>| j.map_or("-".to_string(), |j| format!("{j:.3}"));
        let _ = writeln!(s, "jaccard_exact: {}", fmt_j(self.jaccard_exact()));
        let _ = writeln!(s, "jaccard_matched: {}", fmt_j(self.jaccard_matched()));
        let non_exact: Vec<_> = self
            .pairs
            .iter()
            .filter(|p| p.tier != MatchTier::Exact)
            .collect();
        let _ = writeln!(s, "non-exact matches: {}", non_exact.len());
        for p in non_exact {
            let _ = writeln!(
                s,
                "  {:<10} {:.3}  {} ~ {}",
                p.tier.label(),
                p.score,
                p.a,
                p.b
            );
        }
        for (label, keys) in [("only_a", &self.only_a), ("only_b", &self.only_b)] {
            let _ = writeln!(s, "{label}: {}", keys.len());
            for k in keys {
                let _ = writeln!(s, "  {k}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::{Component, ComponentKey, Ecosystem};

    fn key(name: &str, version: &str) -> ComponentKey {
        Component::new(Ecosystem::Python, name, Some(version.to_string())).key()
    }

    #[test]
    fn tier_labels_and_indices_are_stable() {
        for (i, t) in MatchTier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        let labels: Vec<_> = MatchTier::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, ["exact", "purl", "alias", "normalized", "fuzzy"]);
        assert_eq!(MatchTier::Fuzzy.to_string(), "fuzzy");
    }

    #[test]
    fn config_tier_enabled_is_inclusive() {
        let cfg = MatchConfig {
            max_tier: MatchTier::Alias,
            ..MatchConfig::default()
        };
        assert!(cfg.tier_enabled(MatchTier::Exact));
        assert!(cfg.tier_enabled(MatchTier::Alias));
        assert!(!cfg.tier_enabled(MatchTier::Normalized));
        assert!(!cfg.tier_enabled(MatchTier::Fuzzy));
    }

    #[test]
    fn report_jaccards_and_counts() {
        let report = MatchReport {
            pairs: vec![
                MatchedPair {
                    a: key("x", "1"),
                    b: key("x", "1"),
                    tier: MatchTier::Exact,
                    score: 1.0,
                },
                MatchedPair {
                    a: key("Y", "1"),
                    b: key("y", "1"),
                    tier: MatchTier::Normalized,
                    score: 1.0,
                },
            ],
            only_a: vec![key("z", "9")],
            only_b: vec![],
            a_distinct: 3,
            b_distinct: 2,
        };
        // exact: 1 / (3 + 2 - 1) = 0.25; matched: 2 / (3 + 2 - 2) = 2/3.
        assert_eq!(report.jaccard_exact(), Some(0.25));
        let jm = report.jaccard_matched().unwrap();
        assert!((jm - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.tier_counts(), [1, 0, 0, 1, 0]);
        let text = report.explain();
        assert!(text.contains("matched: 2 (exact=1 purl=0 alias=0 normalized=1 fuzzy=0)"));
        assert!(text.contains("normalized 1.000  Y@1 ~ y@1"));
        assert!(text.contains("only_a: 1"));
    }

    #[test]
    fn empty_report_jaccard_is_none() {
        let report = MatchReport::default();
        assert_eq!(report.jaccard_exact(), None);
        assert_eq!(report.jaccard_matched(), None);
    }
}

//! Tier-3 string similarity: Jaro-Winkler plus bounded Levenshtein, with
//! per-ecosystem adaptive acceptance thresholds.
//!
//! Both metrics are symmetric, so the matcher's side-swap symmetry
//! guarantee holds through this module. Scores combine as
//! `max(jaro_winkler, 1 − levenshtein/len)` — Jaro-Winkler rewards shared
//! prefixes (typo'd package names usually agree on the front), while the
//! bounded Levenshtein catches single-edit divergences deep in long names
//! that Jaro-Winkler underrates.

use sbomdiff_types::Ecosystem;

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches: Vec<char> = Vec::new();
    let mut a_matched = vec![false; a.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                a_matched[i] = true;
                matches.push(ca);
                break;
            }
        }
    }
    let m = matches.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched sequences in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_taken.iter())
        .filter(|(_, taken)| **taken)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler: Jaro boosted by up to 4 chars of common prefix.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Levenshtein distance, abandoned once it provably exceeds `bound`
/// (returns `None`). The band restriction makes it O(bound · min_len):
/// cheap enough to run on every LSH candidate.
pub fn bounded_levenshtein(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let inf = bound + 1;
    let mut prev: Vec<usize> = (0..=m).map(|j| j.min(inf)).collect();
    let mut cur = vec![inf; m + 1];
    for i in 1..=n {
        cur[0] = i.min(inf);
        let lo = i.saturating_sub(bound).max(1);
        let hi = (i + bound).min(m);
        if lo > 1 {
            cur[lo - 1] = inf;
        }
        let mut row_min = cur[0];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = prev[j - 1] + cost;
            if prev[j] + 1 < best {
                best = prev[j] + 1;
            }
            if cur[j - 1] + 1 < best {
                best = cur[j - 1] + 1;
            }
            cur[j] = best.min(inf);
            row_min = row_min.min(cur[j]);
        }
        if hi < m {
            cur[hi + 1..].fill(inf);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= bound).then_some(prev[m])
}

/// Maximum edit distance tier 3 ever forgives.
pub const LEVENSHTEIN_BOUND: usize = 2;

/// Combined similarity in `[0, 1]`.
pub fn similarity(a: &str, b: &str) -> f64 {
    let jw = jaro_winkler(a, b);
    let max_len = a.chars().count().max(b.chars().count());
    match bounded_levenshtein(a, b, LEVENSHTEIN_BOUND) {
        Some(d) if max_len > 0 => jw.max(1.0 - d as f64 / max_len as f64),
        _ => jw,
    }
}

/// The tier-3 acceptance threshold for a candidate pair.
///
/// Adaptive on two axes (documented in DESIGN.md §17):
///
/// * **Ecosystem** — Go module paths and Maven coordinates share long
///   hosting/group prefixes (`github.com/...`, `org.apache....`) that
///   inflate Jaro-Winkler between unrelated packages, so their bases are
///   stricter.
/// * **Length** — for short names a single edit is a large semantic jump
///   (`tqdm`/`tqde` are likely different packages), so names of ≤ 4 chars
///   require near-identity and ≤ 7 chars get a small bump.
///
/// `len` is the longer of the two compared (normalized) names.
pub fn threshold(eco: Ecosystem, len: usize) -> f64 {
    let base: f64 = match eco {
        Ecosystem::Go => 0.95,
        Ecosystem::Java => 0.93,
        _ => 0.90,
    };
    if len <= 4 {
        base.max(0.97)
    } else if len <= 7 {
        (base + 0.02).min(0.99)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaro_identities() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_textbook_values() {
        // Classic reference pair: JW("MARTHA", "MARHTA") = 0.961.
        assert!((jaro_winkler("martha", "marhta") - 0.961).abs() < 1e-3);
        assert!((jaro_winkler("dwayne", "duane") - 0.84).abs() < 0.01);
    }

    #[test]
    fn similarity_is_symmetric() {
        for (a, b) in [
            ("urllib3", "urlib3"),
            ("requests", "request"),
            ("left-pad", "leftpad"),
            ("", "x"),
        ] {
            assert_eq!(similarity(a, b), similarity(b, a), "{a} vs {b}");
        }
    }

    #[test]
    fn bounded_levenshtein_agrees_with_exact_small_cases() {
        assert_eq!(bounded_levenshtein("kitten", "sitten", 2), Some(1));
        assert_eq!(bounded_levenshtein("kitten", "sitting", 2), None); // d = 3
        assert_eq!(bounded_levenshtein("abc", "abc", 2), Some(0));
        assert_eq!(bounded_levenshtein("abc", "ab", 2), Some(1));
        assert_eq!(bounded_levenshtein("", "ab", 2), Some(2));
        assert_eq!(bounded_levenshtein("", "abc", 2), None);
        assert_eq!(bounded_levenshtein("abcdefgh", "abcdefgh", 0), Some(0));
        assert_eq!(bounded_levenshtein("abcdefgh", "abcdefgx", 0), None);
    }

    #[test]
    fn single_edit_in_long_name_scores_high() {
        // One dropped char out of 7: the Levenshtein arm guarantees ≥ 6/7.
        let s = similarity("urllib3", "urlib3");
        assert!(s >= 1.0 - 1.0 / 7.0, "got {s}");
        assert!(s >= threshold(Ecosystem::Python, 7), "must clear threshold");
    }

    #[test]
    fn thresholds_are_adaptive() {
        // Short names demand near-identity.
        assert!(threshold(Ecosystem::Python, 4) > threshold(Ecosystem::Python, 12));
        // Go is stricter than Python at every length.
        for len in [4usize, 6, 10, 30] {
            assert!(threshold(Ecosystem::Go, len) >= threshold(Ecosystem::Python, len));
        }
        // All thresholds stay inside (0, 1).
        for eco in Ecosystem::ALL {
            for len in [1usize, 5, 8, 100] {
                let t = threshold(eco, len);
                assert!(t > 0.5 && t < 1.0, "{eco} len={len} → {t}");
            }
        }
    }

    #[test]
    fn unrelated_names_stay_below_threshold() {
        for (a, b) in [("flask", "django"), ("lodash", "react"), ("serde", "tokio")] {
            let s = similarity(a, b);
            let len = a.len().max(b.len());
            assert!(
                s < threshold(Ecosystem::Python, len),
                "{a} vs {b} scored {s}"
            );
        }
    }
}

//! The staged greedy matcher.
//!
//! Each tier runs over the components no earlier tier claimed. Tiers 0–2
//! are *key tiers*: both sides bucket by a stage key (canonical PURL,
//! alias group + version, normalized name + version), and buckets pair
//! greedily in sorted-key order. Tier 3 scores LSH candidates and assigns
//! greedily by `(score desc, unordered key pair)`.
//!
//! Why this is symmetric and deterministic: every stage key and score is
//! computed from one component alone or symmetrically from both; every
//! iteration walks `BTreeMap`/`BTreeSet` order; the only cross-side
//! ordering (tier-3 tie-breaks) compares the *unordered* pair. Swapping
//! the input sides therefore produces the mirrored report, and no step
//! depends on thread scheduling — candidate scoring uses the ordered
//! `par_map`, so any jobs count yields identical bytes.

use std::collections::{BTreeMap, BTreeSet};

use sbomdiff_types::{Component, ComponentKey, Ecosystem, Sbom};

use crate::fuzzy;
use crate::lsh;
use crate::normalize::{base_name, normalize_name, normalize_version};
use crate::{MatchConfig, MatchReport, MatchTier, MatchedPair};

/// Per-component matching state, computed once.
struct Entry {
    key: ComponentKey,
    eco: Ecosystem,
    purl: Option<String>,
    norm_name: String,
    norm_version: String,
    base: Option<String>,
}

impl Entry {
    fn new(c: &Component) -> Entry {
        Entry {
            key: c.key(),
            eco: c.ecosystem,
            purl: c.purl.as_ref().map(|p| p.to_string()),
            norm_name: normalize_name(c.ecosystem, &c.name),
            norm_version: normalize_version(c.version.as_deref().unwrap_or("")),
            base: base_name(c.ecosystem, &c.name),
        }
    }
}

/// Distinct entries per side, first occurrence wins (duplicate exact keys
/// collapse, matching how `diff::key_set` treats the document).
fn entries(sbom: &Sbom) -> BTreeMap<ComponentKey, Entry> {
    let mut map = BTreeMap::new();
    for c in sbom.components() {
        map.entry(c.key()).or_insert_with(|| Entry::new(c));
    }
    map
}

/// Separator for composite stage keys; never appears in package names.
const SEP: char = '\u{1}';

/// A key-derivation stage: maps an entry to its tier-specific join key.
type KeyFn<'a> = Box<dyn Fn(&Entry) -> Option<String> + 'a>;

/// Matches two SBOMs under `cfg`. See the crate docs for the guarantees.
pub fn match_sboms(a: &Sbom, b: &Sbom, cfg: &MatchConfig) -> MatchReport {
    let ea = entries(a);
    let eb = entries(b);
    let mut used_a: BTreeSet<ComponentKey> = BTreeSet::new();
    let mut used_b: BTreeSet<ComponentKey> = BTreeSet::new();
    let mut pairs: Vec<MatchedPair> = Vec::new();

    // Baseline: identical exact keys.
    for k in ea.keys().filter(|k| eb.contains_key(*k)) {
        pairs.push(MatchedPair {
            a: k.clone(),
            b: k.clone(),
            tier: MatchTier::Exact,
            score: 1.0,
        });
        used_a.insert(k.clone());
        used_b.insert(k.clone());
    }

    // Key tiers 0–2.
    let key_stages: [(MatchTier, KeyFn); 4] = [
        (
            MatchTier::Purl,
            Box::new(|e: &Entry| e.purl.clone()) as KeyFn,
        ),
        (
            MatchTier::Alias,
            Box::new(|e: &Entry| {
                cfg.aliases
                    .group_of(e.eco, e.key.name.as_str())
                    .map(|g| format!("{g}{SEP}{}", e.norm_version))
            }),
        ),
        (
            MatchTier::Normalized,
            Box::new(|e: &Entry| {
                Some(format!(
                    "{}{SEP}{}{SEP}{}",
                    e.eco.label(),
                    e.norm_name,
                    e.norm_version
                ))
            }),
        ),
        // Second normalization pass: namespace-dropping conventions
        // (Maven artifact-only, CocoaPods main pod).
        (
            MatchTier::Normalized,
            Box::new(|e: &Entry| {
                e.base
                    .as_ref()
                    .map(|b| format!("{}{SEP}{b}{SEP}{}", e.eco.label(), e.norm_version))
            }),
        ),
    ];
    for (tier, stage_key) in &key_stages {
        if !cfg.tier_enabled(*tier) {
            continue;
        }
        run_key_stage(
            *tier,
            &ea,
            &eb,
            &mut used_a,
            &mut used_b,
            &mut pairs,
            stage_key,
        );
    }

    if cfg.tier_enabled(MatchTier::Fuzzy) {
        run_fuzzy_stage(cfg, &ea, &eb, &mut used_a, &mut used_b, &mut pairs);
    }

    pairs.sort_by(|x, y| (x.tier, &x.a).cmp(&(y.tier, &y.a)));
    MatchReport {
        only_a: ea
            .keys()
            .filter(|k| !used_a.contains(*k))
            .cloned()
            .collect(),
        only_b: eb
            .keys()
            .filter(|k| !used_b.contains(*k))
            .cloned()
            .collect(),
        a_distinct: ea.len(),
        b_distinct: eb.len(),
        pairs,
    }
}

/// Buckets both sides' unmatched entries by `stage_key` and pairs bucket
/// members positionally. Both member lists are built in `BTreeMap` key
/// order, so pairing is deterministic and swaps cleanly with the sides.
fn run_key_stage(
    tier: MatchTier,
    ea: &BTreeMap<ComponentKey, Entry>,
    eb: &BTreeMap<ComponentKey, Entry>,
    used_a: &mut BTreeSet<ComponentKey>,
    used_b: &mut BTreeSet<ComponentKey>,
    pairs: &mut Vec<MatchedPair>,
    stage_key: &dyn Fn(&Entry) -> Option<String>,
) {
    let mut buckets: BTreeMap<String, (Vec<&ComponentKey>, Vec<&ComponentKey>)> = BTreeMap::new();
    for (k, e) in ea.iter().filter(|(k, _)| !used_a.contains(*k)) {
        if let Some(s) = stage_key(e) {
            buckets.entry(s).or_default().0.push(k);
        }
    }
    for (k, e) in eb.iter().filter(|(k, _)| !used_b.contains(*k)) {
        if let Some(s) = stage_key(e) {
            buckets.entry(s).or_default().1.push(k);
        }
    }
    for (va, vb) in buckets.values() {
        for (ka, kb) in va.iter().zip(vb.iter()) {
            pairs.push(MatchedPair {
                a: (*ka).clone(),
                b: (*kb).clone(),
                tier,
                score: 1.0,
            });
            used_a.insert((*ka).clone());
            used_b.insert((*kb).clone());
        }
    }
}

/// Tier 3: score candidate pairs (LSH or brute-force) in parallel, then
/// assign greedily best-first.
fn run_fuzzy_stage(
    cfg: &MatchConfig,
    ea: &BTreeMap<ComponentKey, Entry>,
    eb: &BTreeMap<ComponentKey, Entry>,
    used_a: &mut BTreeSet<ComponentKey>,
    used_b: &mut BTreeSet<ComponentKey>,
    pairs: &mut Vec<MatchedPair>,
) {
    let ra: Vec<&Entry> = ea
        .iter()
        .filter(|(k, _)| !used_a.contains(*k))
        .map(|(_, e)| e)
        .collect();
    let rb: Vec<&Entry> = eb
        .iter()
        .filter(|(k, _)| !used_b.contains(*k))
        .map(|(_, e)| e)
        .collect();
    if ra.is_empty() || rb.is_empty() {
        return;
    }
    let names_a: Vec<(Ecosystem, &str)> =
        ra.iter().map(|e| (e.eco, e.norm_name.as_str())).collect();
    let names_b: Vec<(Ecosystem, &str)> =
        rb.iter().map(|e| (e.eco, e.norm_name.as_str())).collect();
    let candidates = if cfg.brute_force {
        lsh::brute_candidates(&names_a, &names_b)
    } else {
        lsh::lsh_candidates(&names_a, &names_b, &cfg.lsh)
    };
    let scores =
        sbomdiff_parallel::par_map(cfg.jobs, &candidates, |_, &(i, j)| score_pair(ra[i], rb[j]));
    // (quantized score, a index, b index), best-first; ties broken on the
    // unordered key pair so side-swapping cannot reorder the assignment.
    let mut accepted: Vec<(u32, usize, usize)> = candidates
        .iter()
        .zip(scores.iter())
        .filter_map(|(&(i, j), &q)| q.map(|q| (q, i, j)))
        .collect();
    accepted.sort_by(|x, y| {
        let (xa, xb) = (&ra[x.1].key, &rb[x.2].key);
        let (ya, yb) = (&ra[y.1].key, &rb[y.2].key);
        y.0.cmp(&x.0)
            .then_with(|| (xa.min(xb), xa.max(xb)).cmp(&(ya.min(yb), ya.max(yb))))
    });
    for (q, i, j) in accepted {
        let (ka, kb) = (&ra[i].key, &rb[j].key);
        if used_a.contains(ka) || used_b.contains(kb) {
            continue;
        }
        pairs.push(MatchedPair {
            a: ka.clone(),
            b: kb.clone(),
            tier: MatchTier::Fuzzy,
            score: f64::from(q) / SCORE_SCALE,
        });
        used_a.insert(ka.clone());
        used_b.insert(kb.clone());
    }
}

/// Scores are quantized to 1e-4 so ordering, CSV output and golden files
/// never depend on float formatting subtleties.
const SCORE_SCALE: f64 = 10_000.0;

/// Scores one candidate pair; `None` when it fails the version gate or the
/// adaptive threshold. Symmetric in the two entries.
fn score_pair(a: &Entry, b: &Entry) -> Option<u32> {
    debug_assert_eq!(a.eco, b.eco);
    // Version gate: fuzzy evidence is about *names* — versions must agree
    // outright, or one side must be silent (a small confidence haircut).
    let penalty = if a.norm_version == b.norm_version {
        0.0
    } else if a.norm_version.is_empty() || b.norm_version.is_empty() {
        0.03
    } else {
        return None;
    };
    let len = a.norm_name.chars().count().max(b.norm_name.chars().count());
    let score = fuzzy::similarity(&a.norm_name, &b.norm_name) - penalty;
    if score >= fuzzy::threshold(a.eco, len) {
        Some((score * SCORE_SCALE).round() as u32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::Purl;

    fn sbom(components: Vec<Component>) -> Sbom {
        let mut s = Sbom::new("test", "1");
        s.extend(components);
        s
    }

    fn c(eco: Ecosystem, name: &str, version: &str) -> Component {
        Component::new(eco, name, Some(version.to_string()))
    }

    fn tiers_of(report: &MatchReport) -> Vec<(MatchTier, String, String)> {
        report
            .pairs
            .iter()
            .map(|p| (p.tier, p.a.to_string(), p.b.to_string()))
            .collect()
    }

    #[test]
    fn exact_tier_reproduces_baseline_jaccard() {
        let a = sbom(vec![
            c(Ecosystem::Python, "flask", "2.3.2"),
            c(Ecosystem::Python, "requests", "2.31.0"),
        ]);
        let b = sbom(vec![
            c(Ecosystem::Python, "flask", "2.3.2"),
            c(Ecosystem::Python, "urllib3", "2.1.0"),
        ]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        assert_eq!(r.exact_matched(), 1);
        let j = r.jaccard_exact().unwrap();
        assert!((j - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn purl_tier_matches_divergent_display_names() {
        let purl: Purl = "pkg:pypi/flask@2.3.2".parse().unwrap();
        let mut ca = c(Ecosystem::Python, "Flask", "2.3.2");
        ca.purl = Some(purl.clone());
        let mut cb = c(Ecosystem::Python, "flask", "2.3.2");
        cb.purl = Some(purl);
        let r = match_sboms(&sbom(vec![ca]), &sbom(vec![cb]), &MatchConfig::default());
        assert_eq!(
            tiers_of(&r),
            vec![(
                MatchTier::Purl,
                "Flask@2.3.2".to_string(),
                "flask@2.3.2".to_string()
            )]
        );
    }

    #[test]
    fn alias_tier_requires_version_agreement() {
        let a = sbom(vec![c(Ecosystem::Python, "beautifulsoup4", "4.12.2")]);
        let b_ok = sbom(vec![c(Ecosystem::Python, "bs4", "4.12.2")]);
        let b_bad = sbom(vec![c(Ecosystem::Python, "bs4", "4.0.0")]);
        let cfg = MatchConfig::default();
        let r = match_sboms(&a, &b_ok, &cfg);
        assert_eq!(r.pairs[0].tier, MatchTier::Alias);
        let r = match_sboms(&a, &b_bad, &cfg);
        assert!(r.pairs.is_empty(), "version disagreement must not alias");
    }

    #[test]
    fn normalized_tier_covers_the_profile_divergences() {
        // Java: group:artifact vs group.artifact vs artifact-only.
        let a = sbom(vec![c(
            Ecosystem::Java,
            "org.apache.commons:commons-lang3",
            "3.12.0",
        )]);
        let b = sbom(vec![c(
            Ecosystem::Java,
            "org.apache.commons.commons-lang3",
            "3.12.0",
        )]);
        let cfg = MatchConfig::default();
        assert_eq!(
            match_sboms(&a, &b, &cfg).pairs[0].tier,
            MatchTier::Normalized
        );
        let b2 = sbom(vec![c(Ecosystem::Java, "commons-lang3", "3.12.0")]);
        assert_eq!(
            match_sboms(&a, &b2, &cfg).pairs[0].tier,
            MatchTier::Normalized
        );
        // Go: v prefix.
        let a = sbom(vec![c(
            Ecosystem::Go,
            "github.com/stretchr/testify",
            "v1.8.4",
        )]);
        let b = sbom(vec![c(
            Ecosystem::Go,
            "github.com/stretchr/testify",
            "1.8.4",
        )]);
        assert_eq!(
            match_sboms(&a, &b, &cfg).pairs[0].tier,
            MatchTier::Normalized
        );
        // Swift: subspec vs main pod.
        let a = sbom(vec![c(Ecosystem::Swift, "Firebase/Auth", "10.18.0")]);
        let b = sbom(vec![c(Ecosystem::Swift, "Firebase", "10.18.0")]);
        assert_eq!(
            match_sboms(&a, &b, &cfg).pairs[0].tier,
            MatchTier::Normalized
        );
        // Python: PEP 503.
        let a = sbom(vec![c(Ecosystem::Python, "Flask_Login", "0.6.2")]);
        let b = sbom(vec![c(Ecosystem::Python, "flask.login", "0.6.2")]);
        assert_eq!(
            match_sboms(&a, &b, &cfg).pairs[0].tier,
            MatchTier::Normalized
        );
    }

    #[test]
    fn fuzzy_tier_catches_typo_with_lsh_and_brute() {
        let a = sbom(vec![c(Ecosystem::Python, "urllib3", "2.1.0")]);
        let b = sbom(vec![c(Ecosystem::Python, "urlib3", "2.1.0")]);
        for brute in [false, true] {
            let cfg = MatchConfig {
                brute_force: brute,
                ..MatchConfig::default()
            };
            let r = match_sboms(&a, &b, &cfg);
            assert_eq!(r.pairs.len(), 1, "brute={brute}");
            assert_eq!(r.pairs[0].tier, MatchTier::Fuzzy);
            assert!(r.pairs[0].score > 0.85 && r.pairs[0].score <= 1.0);
        }
    }

    #[test]
    fn fuzzy_version_gate_blocks_cross_version_matches() {
        let a = sbom(vec![c(Ecosystem::Python, "urllib3", "2.1.0")]);
        let b = sbom(vec![c(Ecosystem::Python, "urlib3", "1.26.0")]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        assert!(r.pairs.is_empty());
        // But a version-silent side may still match, at a reduced score.
        let mut b2 = Sbom::new("t", "1");
        b2.push(Component::new(Ecosystem::Python, "urlib3", None));
        let r = match_sboms(&a, &b2, &MatchConfig::default());
        assert_eq!(r.pairs.len(), 1);
        assert!(r.pairs[0].score < 0.97);
    }

    #[test]
    fn greedy_prefers_higher_scores() {
        // One A entry, two same-version fuzzy candidates on B: greedy must
        // hand it to whichever scores higher under the similarity metric.
        let (cand1, cand2) = ("urlib3", "urllib33");
        let a = sbom(vec![c(Ecosystem::Python, "urllib3", "2.1.0")]);
        let b = sbom(vec![
            c(Ecosystem::Python, cand1, "2.1.0"),
            c(Ecosystem::Python, cand2, "2.1.0"),
        ]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        assert_eq!(r.pairs.len(), 1);
        let s1 = fuzzy::similarity("urllib3", cand1);
        let s2 = fuzzy::similarity("urllib3", cand2);
        assert_ne!(s1, s2, "candidates must not tie for this test");
        let best = if s1 > s2 { cand1 } else { cand2 };
        assert_eq!(r.pairs[0].b.name.as_str(), best);
        assert_eq!(r.only_b.len(), 1);
    }

    #[test]
    fn duplicates_collapse_to_distinct_keys() {
        let a = sbom(vec![
            c(Ecosystem::Python, "flask", "2.3.2"),
            c(Ecosystem::Python, "flask", "2.3.2"),
        ]);
        let b = sbom(vec![c(Ecosystem::Python, "flask", "2.3.2")]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        assert_eq!((r.a_distinct, r.b_distinct, r.matched()), (1, 1, 1));
        assert_eq!(r.jaccard_matched(), Some(1.0));
    }

    #[test]
    fn empty_sides_yield_empty_report() {
        let e = Sbom::new("t", "1");
        let r = match_sboms(&e, &e, &MatchConfig::default());
        assert_eq!(r.matched(), 0);
        assert_eq!(r.jaccard_matched(), None);
        let a = sbom(vec![c(Ecosystem::Python, "flask", "2.3.2")]);
        let r = match_sboms(&a, &e, &MatchConfig::default());
        assert_eq!(r.jaccard_matched(), Some(0.0));
        assert_eq!(r.only_a.len(), 1);
    }

    #[test]
    fn one_component_matches_at_most_once() {
        // Two A-side spellings both normalize to the single B entry: only
        // one may claim it, the other stays unmatched.
        let a = sbom(vec![
            c(Ecosystem::Python, "Flask_Login", "0.6.2"),
            c(Ecosystem::Python, "flask.login", "0.6.2"),
        ]);
        let b = sbom(vec![c(Ecosystem::Python, "flask-login", "0.6.2")]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        assert_eq!(r.matched(), 1);
        assert_eq!(r.only_a.len(), 1);
        assert!(r.only_b.is_empty());
    }

    #[test]
    fn report_is_sorted_by_tier_then_key() {
        let purl: Purl = "pkg:npm/lodash@4.17.21".parse().unwrap();
        let mut lodash_a = c(Ecosystem::JavaScript, "Lodash", "4.17.21");
        lodash_a.purl = Some(purl.clone());
        let mut lodash_b = c(Ecosystem::JavaScript, "lodash", "4.17.21");
        lodash_b.purl = Some(purl);
        let a = sbom(vec![
            c(Ecosystem::Python, "zeta", "1"),
            lodash_a,
            c(Ecosystem::Python, "Alpha_Pkg", "2"),
        ]);
        let b = sbom(vec![
            c(Ecosystem::Python, "zeta", "1"),
            lodash_b,
            c(Ecosystem::Python, "alpha-pkg", "2"),
        ]);
        let r = match_sboms(&a, &b, &MatchConfig::default());
        let tiers: Vec<MatchTier> = r.pairs.iter().map(|p| p.tier).collect();
        let mut sorted = tiers.clone();
        sorted.sort();
        assert_eq!(tiers, sorted);
        assert_eq!(r.matched(), 3);
    }
}

//! Concurrency and determinism tests for the interning pool.
//!
//! The pipeline interns from every worker of the parallel `(repository ×
//! tool)` fan-out at once, so the pool must deduplicate under contention
//! and — because ids are content-derived — assign identical ids whether
//! the corpus runs on one worker or eight.

use sbomdiff_parallel::par_map;
use sbomdiff_types::{intern, Component, Ecosystem, Interner, Symbol};

#[test]
fn concurrent_interning_deduplicates_across_eight_threads() {
    let pool = Interner::new();
    // 64 interns across 8 workers, but only 8 distinct strings.
    let names: Vec<String> = (0..64).map(|i| format!("pkg-{}", i % 8)).collect();
    let symbols = par_map(8, &names, |_, name| pool.intern(name));
    assert_eq!(pool.len(), 8, "distinct strings pooled exactly once");
    for (name, symbol) in names.iter().zip(&symbols) {
        assert_eq!(symbol, name);
        // Every symbol of the same content shares one allocation: the
        // get-or-insert is atomic under the shard lock, so a concurrent
        // race can never mint a second copy.
        assert!(Symbol::ptr_eq(symbol, &pool.intern(name)));
    }
}

#[test]
fn ids_are_identical_for_any_worker_count() {
    let names: Vec<String> = (0..200).map(|i| format!("package-{i}")).collect();
    let sequential = par_map(1, &names, |_, n| intern(n).id());
    let parallel = par_map(4, &names, |_, n| intern(n).id());
    assert_eq!(sequential, parallel, "ids depend on content, not schedule");
    // A fresh isolated pool agrees too: no hidden global assignment order.
    let pool = Interner::new();
    let isolated: Vec<u64> = names.iter().map(|n| pool.intern(n).id()).collect();
    assert_eq!(sequential, isolated);
}

#[test]
fn component_fields_share_interned_allocations() {
    let a = Component::new(Ecosystem::Python, "numpy", Some("1.19.2".into()));
    let b = Component::new(Ecosystem::Python, "numpy", Some("1.19.2".into()));
    assert!(
        Symbol::ptr_eq(&a.name, &b.name),
        "same name interns to one allocation"
    );
    let cloned = a.clone();
    assert!(
        Symbol::ptr_eq(&a.name, &cloned.name),
        "cloning a component bumps refcounts instead of copying strings"
    );
    assert_eq!(a.canonical_key(), b.canonical_key());
}

#[test]
fn unpooled_symbols_render_byte_identically_to_pooled() {
    // Past the capacity bound the pool stops retaining strings; the
    // un-pooled symbols must still render, hash and id identically, so
    // downstream serialization stays byte-stable whatever the pool state.
    let tiny = Interner::with_capacity(1);
    let big = Interner::new();
    for i in 0..64 {
        let s = format!("overflow-pkg-{i}");
        let from_tiny = tiny.intern(&s);
        let from_big = big.intern(&s);
        assert_eq!(from_tiny, from_big);
        assert_eq!(from_tiny.to_string(), from_big.to_string());
        assert_eq!(format!("{from_tiny:?}"), format!("{from_big:?}"));
        assert_eq!(from_tiny.id(), from_big.id());
    }
}

//! Property-based tests for versions, constraints, PURL and CPE.

use proptest::prelude::*;
use sbomdiff_types::{Component, ConstraintFlavor, Cpe, Ecosystem, Purl, Version, VersionReq};

fn version_strategy() -> impl Strategy<Value = String> {
    let release = prop::collection::vec(0u64..50, 1..4)
        .prop_map(|v| v.iter().map(u64::to_string).collect::<Vec<_>>().join("."));
    let pre = prop_oneof![
        Just(String::new()),
        (0u64..5).prop_map(|n| format!("-alpha.{n}")),
        (0u64..5).prop_map(|n| format!("-beta.{n}")),
        (0u64..5).prop_map(|n| format!("-rc.{n}")),
        (0u64..5).prop_map(|n| format!("rc{n}")),
        (0u64..5).prop_map(|n| format!(".post{n}")),
        (0u64..5).prop_map(|n| format!(".dev{n}")),
        // Multi-identifier pre-releases (SemVer §9/§11): trailing numeric
        // and alphanumeric identifiers after the leading pair.
        (0u64..5, 0u64..30).prop_map(|(a, b)| format!("-rc.{a}.{b}")),
        (0u64..5, 0u64..30).prop_map(|(a, b)| format!("-alpha.{a}.{b}.x")),
        Just("-alpha.beta".to_string()),
    ];
    (release, pre).prop_map(|(r, p)| format!("{r}{p}"))
}

proptest! {
    #[test]
    fn version_parse_never_panics(s in "\\PC{0,40}") {
        let _ = Version::parse(&s);
    }

    #[test]
    fn version_canonical_roundtrips(s in version_strategy()) {
        let v = Version::parse(&s).unwrap();
        let reparsed = Version::parse(&v.canonical()).unwrap();
        prop_assert_eq!(&v, &reparsed);
    }

    #[test]
    fn version_ordering_total_and_antisymmetric(a in version_strategy(), b in version_strategy()) {
        let va = Version::parse(&a).unwrap();
        let vb = Version::parse(&b).unwrap();
        use std::cmp::Ordering::*;
        match va.cmp(&vb) {
            Less => prop_assert_eq!(vb.cmp(&va), Greater),
            Greater => prop_assert_eq!(vb.cmp(&va), Less),
            Equal => prop_assert_eq!(vb.cmp(&va), Equal),
        }
    }

    #[test]
    fn trailing_numeric_identifiers_order_numerically(
        rel in prop::collection::vec(0u64..20, 1..4),
        pair in 0u64..5,
        a in 0u64..200,
        b in 0u64..200,
    ) {
        // SemVer §11: numeric identifiers compare numerically at every
        // position, so rc.P.A < rc.P.B exactly when A < B.
        let r = rel.iter().map(u64::to_string).collect::<Vec<_>>().join(".");
        let va = Version::parse(&format!("{r}-rc.{pair}.{a}")).unwrap();
        let vb = Version::parse(&format!("{r}-rc.{pair}.{b}")).unwrap();
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn numeric_identifiers_sort_below_alphanumeric(n in 0u64..1000) {
        let num = Version::parse(&format!("1.0.0-alpha.{n}")).unwrap();
        let alpha = Version::parse("1.0.0-alpha.beta").unwrap();
        prop_assert!(num < alpha);
    }

    #[test]
    fn v_prefix_never_affects_comparison(s in version_strategy()) {
        let plain = Version::parse(&s).unwrap();
        let prefixed = Version::parse(&format!("v{s}")).unwrap();
        prop_assert_eq!(plain, prefixed);
    }

    #[test]
    fn bump_monotonicity(s in version_strategy()) {
        let v = Version::parse(&s).unwrap();
        prop_assert!(v.bump_patch() > v || v.is_prerelease());
        prop_assert!(v.bump_minor() >= v.bump_patch() || v.is_prerelease());
        prop_assert!(v.bump_major() >= v.bump_minor());
    }

    #[test]
    fn constraint_parse_never_panics(s in "\\PC{0,40}", flavor in 0usize..7) {
        let flavors = [
            ConstraintFlavor::Pep440,
            ConstraintFlavor::Npm,
            ConstraintFlavor::Cargo,
            ConstraintFlavor::RubyGems,
            ConstraintFlavor::Composer,
            ConstraintFlavor::Maven,
            ConstraintFlavor::Go,
        ];
        let _ = VersionReq::parse(&s, flavors[flavor]);
    }

    #[test]
    fn pinned_requirement_matches_its_pin(s in version_strategy()) {
        let v = Version::parse(&s).unwrap();
        let req = VersionReq::exact(v.clone());
        prop_assert!(req.matches(&v));
        prop_assert_eq!(req.pinned(), Some(&v));
    }

    #[test]
    fn caret_range_contains_anchor(maj in 1u64..20, min in 0u64..20, pat in 0u64..20) {
        let anchor = Version::new(maj, min, pat);
        let req = VersionReq::parse(&format!("^{maj}.{min}.{pat}"), ConstraintFlavor::Npm).unwrap();
        prop_assert!(req.matches(&anchor));
        prop_assert!(!req.matches(&Version::new(maj + 1, 0, 0)));
        prop_assert!(req.matches(&Version::new(maj, min, pat + 1)));
    }

    #[test]
    fn latest_matching_is_really_max(vs in prop::collection::vec(version_strategy(), 1..10)) {
        let parsed: Vec<Version> = vs.iter().map(|s| Version::parse(s).unwrap()).collect();
        let req = VersionReq::any();
        if let Some(latest) = req.latest_matching(&parsed) {
            for v in &parsed {
                if req.matches(v) {
                    prop_assert!(latest >= v);
                }
            }
        }
    }

    #[test]
    fn purl_roundtrip(name in "[a-zA-Z][a-zA-Z0-9_.-]{0,20}", ver in version_strategy()) {
        for eco in Ecosystem::ALL {
            let p = Purl::for_package(eco, &name, Some(&ver));
            let back: Purl = p.to_string().parse().unwrap();
            prop_assert_eq!(back.ptype(), p.ptype());
            prop_assert_eq!(back.name(), p.name());
            prop_assert_eq!(back.version(), p.version());
        }
    }

    #[test]
    fn purl_parse_never_panics(s in "\\PC{0,60}") {
        let _ = s.parse::<Purl>();
    }

    #[test]
    fn purl_qualifiers_roundtrip_over_separator_alphabet(
        key in "[a-z][a-z0-9%+=&_. -]{0,12}",
        value in "[a-zA-Z0-9%+=&:/_. #?@-]{0,16}",
        subpath in "[a-zA-Z0-9%+=&/_. -]{0,16}",
    ) {
        // The qualifier alphabet deliberately includes every separator the
        // grammar uses (%, +, =, &, :, /, #, ?, @): emit → parse must give
        // back the exact pairs, and re-emitting must be a fixed point.
        let mut p = Purl::new("npm", "pkg").with_qualifier(&key, &value);
        if !subpath.is_empty() {
            p = p.with_subpath(&subpath);
        }
        let s = p.to_string();
        let back: Purl = s.parse().unwrap();
        prop_assert_eq!(back.qualifiers(), &[(key, value)][..]);
        prop_assert_eq!(back.subpath(), if subpath.is_empty() { None } else { Some(subpath.as_str()) });
        prop_assert_eq!(back.to_string(), s);
    }

    #[test]
    fn cpe_roundtrip(vendor in "[a-zA-Z][a-zA-Z0-9_. -]{0,15}", product in "[a-zA-Z][a-zA-Z0-9_.-]{0,15}", ver in version_strategy()) {
        let c = Cpe::application(&vendor, &product, &ver);
        let back: Cpe = c.to_string().parse().unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn cpe_parse_never_panics(s in "\\PC{0,80}") {
        let _ = s.parse::<Cpe>();
    }

    #[test]
    fn canonical_key_is_idempotent(name in "[a-zA-Z][a-zA-Z0-9_.-]{0,20}", ver in version_strategy()) {
        for eco in Ecosystem::ALL {
            let c = Component::new(eco, &name, Some(ver.clone()));
            let k1 = c.canonical_key();
            let c2 = Component::new(eco, &k1.name, Some(k1.version.to_string()));
            prop_assert_eq!(c2.canonical_key(), k1);
        }
    }
}

//! Package URL (PURL) support.
//!
//! §VII of the paper recommends every SBOM component carry a PURL for
//! consistent naming and vulnerability-database compatibility. This module
//! implements the `pkg:` scheme: `pkg:type/namespace/name@version?qualifiers#subpath`.

use std::fmt;
use std::str::FromStr;

use crate::ecosystem::Ecosystem;
use crate::error::ParseError;
use crate::intern::Symbol;

/// A parsed Package URL.
///
/// # Examples
///
/// ```
/// use sbomdiff_types::Purl;
///
/// let p: Purl = "pkg:pypi/requests@2.31.0".parse()?;
/// assert_eq!(p.ptype(), "pypi");
/// assert_eq!(p.name(), "requests");
/// assert_eq!(p.version(), Some("2.31.0"));
/// # Ok::<(), sbomdiff_types::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Purl {
    // Interned: the same `pypi`/`npm` type strings, package names and
    // versions recur across every profile's PURLs for a repository.
    ptype: Symbol,
    namespace: Option<Symbol>,
    name: Symbol,
    version: Option<Symbol>,
    qualifiers: Vec<(String, String)>,
    subpath: Option<String>,
}

impl Purl {
    /// Creates a PURL from parts.
    pub fn new(ptype: impl Into<String>, name: impl Into<Symbol>) -> Self {
        Purl {
            ptype: ptype.into().to_ascii_lowercase().into(),
            namespace: None,
            name: name.into(),
            version: None,
            qualifiers: Vec::new(),
            subpath: None,
        }
    }

    /// Builds a PURL for a package in a studied ecosystem, splitting
    /// compound names into namespace/name per the PURL spec.
    pub fn for_package(eco: Ecosystem, name: &str, version: Option<&str>) -> Self {
        Purl::build(eco, name, None, version.map(Symbol::from))
    }

    /// [`Purl::for_package`] for already-interned component fields: when
    /// the PURL name is the component name unchanged (no namespace split,
    /// no Python renormalization), the symbols are reused — a refcount
    /// bump per field instead of a pool round trip. This is the emulator
    /// hot path: four profiles attach a PURL to every component.
    pub fn for_component(eco: Ecosystem, name: &Symbol, version: Option<&Symbol>) -> Self {
        Purl::build(eco, name.as_str(), Some(name), version.cloned())
    }

    fn build(eco: Ecosystem, raw: &str, reuse: Option<&Symbol>, version: Option<Symbol>) -> Self {
        let (namespace, base) = split_for_purl(eco, raw);
        let name: Symbol = if eco == Ecosystem::Python {
            // Python names never split, so a borrowed (already-canonical)
            // normalization means the name passes through unchanged.
            match crate::name::normalized(eco, base) {
                std::borrow::Cow::Borrowed(b) => match reuse {
                    Some(sym) if b.len() == raw.len() => sym.clone(),
                    _ => b.into(),
                },
                std::borrow::Cow::Owned(o) => o.into(),
            }
        } else if base.len() == raw.len() {
            match reuse {
                Some(sym) => sym.clone(),
                None => base.into(),
            }
        } else {
            base.into()
        };
        Purl {
            ptype: type_symbol(eco),
            namespace: namespace.map(|ns| ns.trim_start_matches('@').into()),
            name,
            version,
            qualifiers: Vec::new(),
            subpath: None,
        }
    }

    /// Builder-style namespace.
    pub fn with_namespace(mut self, ns: impl Into<Symbol>) -> Self {
        self.namespace = Some(ns.into());
        self
    }

    /// Builder-style version.
    pub fn with_version(mut self, v: impl Into<Symbol>) -> Self {
        self.version = Some(v.into());
        self
    }

    /// Builder-style qualifier.
    pub fn with_qualifier(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.qualifiers.push((k.into(), v.into()));
        self
    }

    /// Builder-style subpath.
    pub fn with_subpath(mut self, sp: impl Into<String>) -> Self {
        self.subpath = Some(sp.into());
        self
    }

    /// The package type (`pypi`, `npm`, ...).
    pub fn ptype(&self) -> &str {
        &self.ptype
    }

    /// The namespace/group/scope, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version, if any.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// The qualifier key/value pairs.
    pub fn qualifiers(&self) -> &[(String, String)] {
        &self.qualifiers
    }

    /// The subpath, if any.
    pub fn subpath(&self) -> Option<&str> {
        self.subpath.as_deref()
    }
}

/// The PURL-spec namespace/name split of a raw package name, borrowed
/// from the input (the structural rules of
/// [`PackageName`](crate::name::PackageName), without its allocations).
fn split_for_purl(eco: Ecosystem, raw: &str) -> (Option<&str>, &str) {
    match eco {
        Ecosystem::Java => match raw.split_once(':') {
            Some((group, artifact)) => (Some(group), artifact),
            None => (None, raw),
        },
        Ecosystem::JavaScript => {
            match raw.starts_with('@').then(|| raw.split_once('/')).flatten() {
                Some((scope, name)) => (Some(scope), name),
                None => (None, raw),
            }
        }
        Ecosystem::Swift => (None, raw.split('/').next().unwrap_or(raw)),
        Ecosystem::Go => match raw.rsplit_once('/') {
            Some((ns, base)) => (Some(ns), base),
            None => (None, raw),
        },
        _ => (None, raw),
    }
}

/// The interned `pkg:` type string for an ecosystem, cached so PURL
/// construction is a refcount bump rather than an intern per component.
fn type_symbol(eco: Ecosystem) -> Symbol {
    use std::sync::OnceLock;
    // Declaration order (`eco as usize` indexes this).
    const DECL: [Ecosystem; 9] = [
        Ecosystem::Python,
        Ecosystem::JavaScript,
        Ecosystem::Ruby,
        Ecosystem::Php,
        Ecosystem::Java,
        Ecosystem::Go,
        Ecosystem::Rust,
        Ecosystem::Swift,
        Ecosystem::DotNet,
    ];
    static TYPES: OnceLock<[Symbol; 9]> = OnceLock::new();
    TYPES.get_or_init(|| DECL.map(|e| Symbol::from(e.purl_type())))[eco as usize].clone()
}

fn pct_encode(s: &str, extra_ok: &[char]) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        let c = b as char;
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_' | '~') || extra_ok.contains(&c)
        {
            out.push(c);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

fn pct_decode(s: &str) -> String {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl fmt::Display for Purl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkg:{}", self.ptype)?;
        if let Some(ns) = &self.namespace {
            let encoded: Vec<String> = ns.split('/').map(|p| pct_encode(p, &[])).collect();
            write!(f, "/{}", encoded.join("/"))?;
        }
        write!(f, "/{}", pct_encode(&self.name, &[]))?;
        if let Some(v) = &self.version {
            write!(f, "@{}", pct_encode(v, &[]))?;
        }
        if !self.qualifiers.is_empty() {
            let mut qs: Vec<&(String, String)> = self.qualifiers.iter().collect();
            qs.sort_by(|a, b| a.0.cmp(&b.0));
            // Keys are percent-encoded too: a literal `=`, `&` or `%` in a
            // key would otherwise shift the key/value split on re-parse.
            let parts: Vec<String> = qs
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{}={}",
                        pct_encode(&k.to_ascii_lowercase(), &[]),
                        pct_encode(v, &[':', '/'])
                    )
                })
                .collect();
            write!(f, "?{}", parts.join("&"))?;
        }
        if let Some(sp) = &self.subpath {
            let encoded: Vec<String> = sp.split('/').map(|seg| pct_encode(seg, &[])).collect();
            write!(f, "#{}", encoded.join("/"))?;
        }
        Ok(())
    }
}

impl FromStr for Purl {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("pkg:")
            .ok_or_else(|| ParseError::new(s, "purl must start with 'pkg:'"))?;
        let rest = rest.trim_start_matches('/');

        let (rest, subpath) = match rest.split_once('#') {
            Some((r, sp)) => {
                let decoded: Vec<String> = sp.split('/').map(pct_decode).collect();
                (r, Some(decoded.join("/")))
            }
            None => (rest, None),
        };
        let (rest, qualifiers) = match rest.split_once('?') {
            Some((r, q)) => {
                let mut quals = Vec::new();
                for pair in q.split('&') {
                    if let Some((k, v)) = pair.split_once('=') {
                        // Decode the key *after* splitting on the raw `=`,
                        // mirroring the encode side: encoded `%3D`/`%26` in
                        // keys never collide with the separators.
                        quals.push((pct_decode(k).to_ascii_lowercase(), pct_decode(v)));
                    }
                }
                (r, quals)
            }
            None => (rest, Vec::new()),
        };
        let (rest, version) = match rest.rsplit_once('@') {
            // '@' inside a namespace segment (npm scopes are encoded, so a
            // real '@' here is the version separator) — but guard against
            // `pkg:npm/@scope/name` style leniency.
            Some((r, v)) if !v.contains('/') => (r, Some(pct_decode(v))),
            _ => (rest, None),
        };

        let segments: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
        if segments.len() < 2 {
            return Err(ParseError::new(s, "purl needs at least type and name"));
        }
        let ptype = segments[0].to_ascii_lowercase();
        let name = pct_decode(segments[segments.len() - 1]);
        let namespace = if segments.len() > 2 {
            Some(
                segments[1..segments.len() - 1]
                    .iter()
                    .map(|p| pct_decode(p))
                    .collect::<Vec<_>>()
                    .join("/"),
            )
        } else {
            None
        };
        Ok(Purl {
            ptype: ptype.into(),
            namespace: namespace.map(Symbol::from),
            name: name.into(),
            version: version.map(Symbol::from),
            qualifiers,
            subpath,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let p = Purl::new("pypi", "requests").with_version("2.31.0");
        let s = p.to_string();
        assert_eq!(s, "pkg:pypi/requests@2.31.0");
        let back: Purl = s.parse().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn namespace_roundtrip() {
        let p = Purl::new("maven", "guava")
            .with_namespace("com.google.guava")
            .with_version("32.1.2");
        let s = p.to_string();
        assert_eq!(s, "pkg:maven/com.google.guava/guava@32.1.2");
        let back: Purl = s.parse().unwrap();
        assert_eq!(back.namespace(), Some("com.google.guava"));
        assert_eq!(back.name(), "guava");
    }

    #[test]
    fn go_multi_segment_namespace() {
        let p = Purl::for_package(Ecosystem::Go, "github.com/stretchr/testify", Some("v1.8.0"));
        assert_eq!(
            p.to_string(),
            "pkg:golang/github.com/stretchr/testify@v1.8.0"
        );
        let back: Purl = p.to_string().parse().unwrap();
        assert_eq!(back.namespace(), Some("github.com/stretchr"));
    }

    #[test]
    fn npm_scope_strips_at_in_namespace() {
        let p = Purl::for_package(Ecosystem::JavaScript, "@babel/core", Some("7.22.0"));
        assert_eq!(p.to_string(), "pkg:npm/babel/core@7.22.0");
    }

    #[test]
    fn python_name_normalized() {
        let p = Purl::for_package(Ecosystem::Python, "Flask_SQLAlchemy", Some("3.0.0"));
        assert_eq!(p.name(), "flask-sqlalchemy");
    }

    #[test]
    fn qualifiers_sorted_and_encoded() {
        let p = Purl::new("npm", "x")
            .with_qualifier("repository_url", "https://r.example/npm")
            .with_qualifier("arch", "amd64");
        let s = p.to_string();
        assert!(s.contains("arch=amd64&repository_url="));
        let back: Purl = s.parse().unwrap();
        assert_eq!(back.qualifiers().len(), 2);
    }

    #[test]
    fn percent_encoding_roundtrip() {
        let p = Purl::new("gem", "my gem").with_version("1.0+build");
        let s = p.to_string();
        assert!(s.contains("my%20gem"));
        let back: Purl = s.parse().unwrap();
        assert_eq!(back.name(), "my gem");
        assert_eq!(back.version(), Some("1.0+build"));
    }

    #[test]
    fn qualifier_separator_chars_roundtrip() {
        // `%`, `+`, `=` and `&` in keys and values must survive
        // emit → parse without shifting the pair or key/value splits.
        let p = Purl::new("npm", "x")
            .with_qualifier("checksum", "sha256:ab%2Bcd=ef&gh")
            .with_qualifier("odd=key", "plus+value")
            .with_qualifier("pct%key", "100%");
        let s = p.to_string();
        let back: Purl = s.parse().unwrap();
        let mut want = vec![
            ("checksum".to_string(), "sha256:ab%2Bcd=ef&gh".to_string()),
            ("odd=key".to_string(), "plus+value".to_string()),
            ("pct%key".to_string(), "100%".to_string()),
        ];
        want.sort();
        let mut got = back.qualifiers().to_vec();
        got.sort();
        assert_eq!(got, want);
        // And the emitted string itself is a fixed point.
        assert_eq!(back.to_string(), s);
    }

    #[test]
    fn subpath_roundtrips_encoded() {
        let p = Purl::new("golang", "mod").with_subpath("src/dir with space/file#1");
        let s = p.to_string();
        assert!(s.contains("#src/dir%20with%20space/file%231"));
        let back: Purl = s.parse().unwrap();
        assert_eq!(back.subpath(), Some("src/dir with space/file#1"));
    }

    #[test]
    fn truncated_percent_escape_is_literal() {
        // A trailing `%` or `%X` is not a valid escape; decoding must not
        // panic or eat bytes.
        let back: Purl = "pkg:npm/x?k=a%2".parse().unwrap();
        assert_eq!(back.qualifiers(), &[("k".to_string(), "a%2".to_string())]);
    }

    #[test]
    fn rejects_non_purl() {
        assert!("http://x".parse::<Purl>().is_err());
        assert!("pkg:onlytype".parse::<Purl>().is_err());
    }
}

//! SBOM components and the in-memory SBOM container.
//!
//! A [`Component`] is one entry of an SBOM as *a specific tool reports it* —
//! with that tool's naming convention, version spelling, and optional
//! PURL/CPE. The differential engine compares [`Sbom`]s by extracting
//! [`ComponentKey`]s (the `(name, version)` pairs of Equation 1).

use std::fmt;
use std::sync::Arc;

use crate::cpe::Cpe;
use crate::dependency::DepScope;
use crate::diagnostic::Diagnostic;
use crate::ecosystem::Ecosystem;
use crate::intern::Symbol;
use crate::purl::Purl;

/// One SBOM entry as reported by a generator.
///
/// Name, version and source path are interned [`Symbol`]s: four emulator
/// profiles report largely the same strings for the same repository, so a
/// `Component` clone is refcount bumps, not allocations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Component {
    /// Ecosystem the component belongs to.
    pub ecosystem: Ecosystem,
    /// The name in the reporting tool's convention (§V-E: may be
    /// `artifact`, `group:artifact` or `group.artifact` for the same Java
    /// package depending on the tool).
    pub name: Symbol,
    /// The reported version: a concrete version, a verbatim range (GitHub
    /// DG, §V-D), or absent.
    pub version: Option<Symbol>,
    /// Package URL, when the tool emits one.
    pub purl: Option<Purl>,
    /// CPE, when the tool emits one.
    pub cpe: Option<Cpe>,
    /// Dependency scope, when the tool models one (most SBOM formats lack
    /// the field, §V-F).
    pub scope: Option<DepScope>,
    /// Supplier / publisher of the component, when the tool emits one —
    /// an NTIA minimum-elements field most metadata-based generators
    /// cannot populate from lockfiles alone.
    pub supplier: Option<Symbol>,
    /// Path of the metadata file the component was extracted from.
    pub found_in: Symbol,
}

impl Component {
    /// Creates a component with just ecosystem, name and optional version.
    pub fn new(ecosystem: Ecosystem, name: impl Into<Symbol>, version: Option<String>) -> Self {
        Component {
            ecosystem,
            name: name.into(),
            version: version.map(Symbol::from),
            purl: None,
            cpe: None,
            scope: None,
            supplier: None,
            found_in: Symbol::default(),
        }
    }

    /// Creates a component from already-interned fields — the emulator hot
    /// path, where the name and version symbols are shared with the PURL
    /// instead of re-interned per field.
    pub fn interned(ecosystem: Ecosystem, name: Symbol, version: Option<Symbol>) -> Self {
        Component {
            ecosystem,
            name,
            version,
            purl: None,
            cpe: None,
            scope: None,
            supplier: None,
            found_in: Symbol::default(),
        }
    }

    /// Builder-style source path.
    pub fn with_found_in(mut self, path: impl Into<Symbol>) -> Self {
        self.found_in = path.into();
        self
    }

    /// Builder-style scope.
    pub fn with_scope(mut self, scope: DepScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Builder-style PURL.
    pub fn with_purl(mut self, purl: Purl) -> Self {
        self.purl = Some(purl);
        self
    }

    /// Builder-style CPE.
    pub fn with_cpe(mut self, cpe: Cpe) -> Self {
        self.cpe = Some(cpe);
        self
    }

    /// Builder-style supplier.
    pub fn with_supplier(mut self, supplier: impl Into<Symbol>) -> Self {
        self.supplier = Some(supplier.into());
        self
    }

    /// The exact `(name, version)` comparison key.
    pub fn key(&self) -> ComponentKey {
        ComponentKey {
            name: self.name.clone(),
            version: self.version.clone().unwrap_or_default(),
        }
    }

    /// A normalized comparison key: ecosystem name normalization applied,
    /// `v` prefixes stripped, so that purely-cosmetic tool differences
    /// (§V-E) do not count as disagreements.
    pub fn canonical_key(&self) -> ComponentKey {
        let name = crate::name::normalize(self.ecosystem, &self.name);
        let version = self
            .version
            .as_deref()
            .map(|v| {
                v.strip_prefix('v')
                    .filter(|r| r.starts_with(|c: char| c.is_ascii_digit()))
                    .unwrap_or(v)
            })
            .unwrap_or("");
        ComponentKey {
            name: name.into(),
            version: version.into(),
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.version {
            Some(v) => write!(f, "{} {}", self.name, v),
            None => f.write_str(&self.name),
        }
    }
}

/// A `(name, version)` pair — the set element of the paper's Jaccard metric.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentKey {
    /// Component name.
    pub name: Symbol,
    /// Reported version ("" when absent).
    pub version: Symbol,
}

impl fmt::Display for ComponentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.version.is_empty() {
            f.write_str(&self.name)
        } else {
            write!(f, "{}@{}", self.name, self.version)
        }
    }
}

/// Metadata about the SBOM document itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SbomMeta {
    /// Name of the generating tool.
    pub tool_name: String,
    /// Version of the generating tool.
    pub tool_version: String,
    /// The analyzed subject (repository name/path).
    pub subject: String,
    /// Document creation timestamp (RFC 3339), when the tool records one.
    /// Deterministic tools derive it from the subject rather than the
    /// wall clock so identical inputs stay byte-identical.
    pub timestamp: Option<String>,
}

/// An in-memory SBOM: document metadata plus components, plus any
/// diagnostics the generator recorded while scanning (malformed files,
/// dropped declarations, failed resolutions — §V-B/Table IV made visible).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sbom {
    /// Document metadata.
    pub meta: SbomMeta,
    components: Vec<Component>,
    /// `Arc`-shared so the four profiles attaching the same parser
    /// diagnostics to their SBOMs share one allocation per diagnostic
    /// instead of deep-copying the `Vec` per profile.
    diagnostics: Vec<Arc<Diagnostic>>,
}

impl Sbom {
    /// Creates an empty SBOM for a tool and subject.
    pub fn new(tool_name: impl Into<String>, tool_version: impl Into<String>) -> Self {
        Sbom {
            meta: SbomMeta {
                tool_name: tool_name.into(),
                tool_version: tool_version.into(),
                subject: String::new(),
                timestamp: None,
            },
            components: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Builder-style subject.
    pub fn with_subject(mut self, subject: impl Into<String>) -> Self {
        self.meta.subject = subject.into();
        self
    }

    /// Builder-style creation timestamp.
    pub fn with_timestamp(mut self, timestamp: impl Into<String>) -> Self {
        self.meta.timestamp = Some(timestamp.into());
        self
    }

    /// Adds a component.
    pub fn push(&mut self, c: Component) {
        self.components.push(c);
    }

    /// The components in insertion order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Records one diagnostic.
    pub fn push_diagnostic(&mut self, d: Diagnostic) {
        self.diagnostics.push(Arc::new(d));
    }

    /// Records several diagnostics (each newly wrapped; prefer
    /// [`Sbom::extend_shared_diagnostics`] when the diagnostics already
    /// live behind `Arc`s, e.g. from a shared parse).
    pub fn extend_diagnostics(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds.into_iter().map(Arc::new));
    }

    /// Records diagnostics that are already shared, without copying the
    /// underlying data — profiles attaching the same parser diagnostics
    /// alias one allocation per diagnostic.
    pub fn extend_shared_diagnostics(&mut self, ds: impl IntoIterator<Item = Arc<Diagnostic>>) {
        self.diagnostics.extend(ds);
    }

    /// The diagnostics recorded during generation, in insertion order
    /// (deterministic: generators scan files in sorted path order).
    pub fn diagnostics(&self) -> &[Arc<Diagnostic>] {
        &self.diagnostics
    }

    /// Number of components (the paper's Fig. 1 package count — duplicates
    /// included, as the tools report them).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no components were found.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over exact comparison keys.
    pub fn keys(&self) -> impl Iterator<Item = ComponentKey> + '_ {
        self.components.iter().map(Component::key)
    }

    /// Number of *duplicate* entries: total entries minus distinct names
    /// (§IV-C counts the same package appearing in multiple entries,
    /// regardless of version).
    pub fn duplicate_entries(&self) -> usize {
        let mut names: Vec<&str> = self.components.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        self.components.len() - names.len()
    }
}

impl Extend<Component> for Sbom {
    fn extend<T: IntoIterator<Item = Component>>(&mut self, iter: T) {
        self.components.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_duplicates() {
        let mut sbom = Sbom::new("test", "0.0.1");
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        sbom.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.25.0".into()),
        ));
        sbom.push(Component::new(Ecosystem::Python, "requests", None));
        assert_eq!(sbom.len(), 3);
        assert_eq!(sbom.duplicate_entries(), 1);
        let keys: Vec<ComponentKey> = sbom.keys().collect();
        assert_eq!(keys[2].version, "");
    }

    #[test]
    fn canonical_key_strips_v_and_normalizes() {
        let c = Component::new(Ecosystem::Go, "github.com/a/b", Some("v1.0.0".into()));
        assert_eq!(c.canonical_key().version, "1.0.0");
        let py = Component::new(Ecosystem::Python, "Flask_Login", Some("0.6.2".into()));
        assert_eq!(py.canonical_key().name, "flask-login");
    }

    #[test]
    fn canonical_key_keeps_non_version_v_words() {
        let c = Component::new(Ecosystem::Python, "x", Some("vendored".into()));
        assert_eq!(c.canonical_key().version, "vendored");
    }

    #[test]
    fn display_forms() {
        let c = Component::new(Ecosystem::Rust, "serde", Some("1.0.0".into()));
        assert_eq!(c.to_string(), "serde 1.0.0");
        let k = c.key();
        assert_eq!(k.to_string(), "serde@1.0.0");
        let nover = Component::new(Ecosystem::Rust, "serde", None);
        assert_eq!(nover.to_string(), "serde");
    }

    #[test]
    fn extend_and_builders() {
        let mut sbom = Sbom::new("syft", "0.84.1").with_subject("repo-1");
        sbom.extend(vec![Component::new(
            Ecosystem::Ruby,
            "rails",
            Some("7.0.0".into()),
        )
        .with_found_in("Gemfile.lock")
        .with_scope(DepScope::Runtime)]);
        assert_eq!(sbom.meta.subject, "repo-1");
        assert_eq!(sbom.components()[0].found_in, "Gemfile.lock");
        assert!(!sbom.is_empty());
    }
}

//! Version requirements in the dialects used by real package managers.
//!
//! §V-D of the paper observes that raw metadata carries version *ranges*
//! (`>=1.2.3 <2.0.0`, `^1.2`, `~> 1.4`) rather than pinned versions, and that
//! SBOM tools diverge in how they handle them. [`VersionReq`] parses all the
//! dialects the studied ecosystems use and evaluates them against
//! [`Version`]s, which the resolver uses both for ground-truth dry runs and
//! for emulating sbom-tool's "pin latest version in range" behavior.

use std::fmt;

use crate::error::ParseError;
use crate::version::Version;

/// The constraint dialect to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintFlavor {
    /// Python — PEP 440 specifiers: `>=1.2,<2.0`, `~=1.4.2`, `==1.2.*`.
    Pep440,
    /// npm — `^1.2.3`, `~1.2`, `1.2.x`, `>=1 <2 || 3.x`, `1.0.0 - 2.0.0`.
    Npm,
    /// Cargo — comma-separated, bare versions are caret requirements.
    Cargo,
    /// RubyGems / CocoaPods — `~> 1.2`, `>= 1.0, < 2.0`.
    RubyGems,
    /// Composer — `^1.2 || ^2.0`, `1.2.*`, `>=1.0 <2.0`, `@stable` flags.
    Composer,
    /// Maven / NuGet — `[1.0,2.0)`, `(,1.0]`, soft requirement `1.0`.
    Maven,
    /// Go modules — `v1.2.3` minimum-version requirements.
    Go,
}

impl fmt::Display for ConstraintFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintFlavor::Pep440 => "pep440",
            ConstraintFlavor::Npm => "npm",
            ConstraintFlavor::Cargo => "cargo",
            ConstraintFlavor::RubyGems => "rubygems",
            ConstraintFlavor::Composer => "composer",
            ConstraintFlavor::Maven => "maven",
            ConstraintFlavor::Go => "go",
        };
        f.write_str(s)
    }
}

/// A comparison operator within a requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `==` / `=`: exact (or wildcard-prefix) match.
    Eq,
    /// `!=`: exclusion.
    Ne,
    /// `>=`.
    Ge,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `<`.
    Lt,
    /// PEP 440 `~=`: compatible release.
    Compatible,
    /// npm/Cargo/Composer `^`: up to the next breaking version.
    Caret,
    /// npm/Composer `~`: patch-level (or minor-level) flexibility.
    Tilde,
    /// RubyGems `~>`: pessimistic operator.
    Pessimistic,
    /// Matches anything (`*`, empty, `latest`).
    Any,
}

/// One operator applied to one version pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparator {
    op: Op,
    version: Version,
    /// Number of release segments actually written (`^1.2` → 2).
    precision: usize,
    /// Index of the first wildcard segment for `1.2.*` patterns.
    wildcard_from: Option<usize>,
}

impl Comparator {
    /// Creates a comparator from an operator and a fully spelled version.
    pub fn new(op: Op, version: Version) -> Self {
        let precision = version.release().len();
        Comparator {
            op,
            version,
            precision,
            wildcard_from: None,
        }
    }

    /// The operator.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The version pattern this comparator is anchored on.
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// Evaluates the comparator against a concrete version.
    pub fn matches(&self, v: &Version) -> bool {
        match self.op {
            Op::Any => true,
            Op::Eq => self.matches_eq(v),
            Op::Ne => !self.matches_eq(v),
            Op::Ge => v >= &self.version,
            Op::Le => v <= &self.version,
            Op::Gt => v > &self.version,
            Op::Lt => v < &self.version,
            Op::Compatible | Op::Pessimistic => self.matches_pessimistic(v),
            Op::Caret => self.matches_caret(v),
            Op::Tilde => self.matches_tilde(v),
        }
    }

    fn matches_eq(&self, v: &Version) -> bool {
        match self.wildcard_from {
            Some(k) => {
                (0..k).all(|i| v.segment(i) == self.version.segment(i))
                    && v.epoch() == self.version.epoch()
            }
            None => v == &self.version,
        }
    }

    /// `~=`/`~>`: at least the written version, and the release prefix up to
    /// the second-to-last written segment must match.
    fn matches_pessimistic(&self, v: &Version) -> bool {
        if v < &self.version {
            return false;
        }
        let fixed = self.precision.saturating_sub(1).max(1);
        (0..fixed).all(|i| v.segment(i) == self.version.segment(i))
    }

    /// `^`: at least the written version, below the next "breaking" boundary
    /// (first non-zero written segment increments).
    fn matches_caret(&self, v: &Version) -> bool {
        if v < &self.version {
            return false;
        }
        let mut boundary_idx = 0;
        while boundary_idx < self.precision && self.version.segment(boundary_idx) == 0 {
            boundary_idx += 1;
        }
        if boundary_idx >= self.precision {
            // ^0 or ^0.0 — boundary is the segment after the written ones.
            boundary_idx = self.precision.saturating_sub(1);
        }
        (0..=boundary_idx).all(|i| v.segment(i) == self.version.segment(i))
    }

    /// `~`: patch flexibility when patch written, minor flexibility otherwise.
    fn matches_tilde(&self, v: &Version) -> bool {
        if v < &self.version {
            return false;
        }
        let fixed = if self.precision >= 2 { 2 } else { 1 };
        (0..fixed).all(|i| v.segment(i) == self.version.segment(i))
    }

    fn mentions_prerelease(&self) -> bool {
        self.version.is_prerelease()
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Eq => "==",
            Op::Ne => "!=",
            Op::Ge => ">=",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Lt => "<",
            Op::Compatible => "~=",
            Op::Caret => "^",
            Op::Tilde => "~",
            Op::Pessimistic => "~>",
            Op::Any => return f.write_str("*"),
        };
        match self.wildcard_from {
            Some(k) => {
                let segs: Vec<String> = (0..k)
                    .map(|i| self.version.segment(i).to_string())
                    .chain(std::iter::once("*".to_string()))
                    .collect();
                write!(f, "{}{}", op, segs.join("."))
            }
            None => write!(f, "{}{}", op, self.version),
        }
    }
}

/// A full version requirement: an OR-of-ANDs over [`Comparator`]s.
///
/// # Examples
///
/// ```
/// use sbomdiff_types::{ConstraintFlavor, Version, VersionReq};
///
/// let req = VersionReq::parse("^1.2.3 || 2.x", ConstraintFlavor::Npm)?;
/// assert!(req.matches(&Version::parse("1.9.0")?));
/// assert!(req.matches(&Version::parse("2.4.1")?));
/// assert!(!req.matches(&Version::parse("3.0.0")?));
/// # Ok::<(), sbomdiff_types::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionReq {
    clauses: Vec<Vec<Comparator>>,
    raw: String,
    flavor: ConstraintFlavor,
}

impl VersionReq {
    /// A requirement matching any version.
    pub fn any() -> Self {
        VersionReq {
            clauses: vec![vec![Comparator {
                op: Op::Any,
                version: Version::new(0, 0, 0),
                precision: 0,
                wildcard_from: None,
            }]],
            raw: "*".to_string(),
            flavor: ConstraintFlavor::Npm,
        }
    }

    /// A requirement pinning exactly `version`.
    pub fn exact(version: Version) -> Self {
        let raw = format!("=={version}");
        VersionReq {
            clauses: vec![vec![Comparator::new(Op::Eq, version)]],
            raw,
            flavor: ConstraintFlavor::Pep440,
        }
    }

    /// Parses a requirement string in the given dialect.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when a comparator's version part cannot be
    /// parsed or a Maven range is malformed.
    pub fn parse(input: &str, flavor: ConstraintFlavor) -> Result<Self, ParseError> {
        let raw = input.trim().to_string();
        let clauses = match flavor {
            ConstraintFlavor::Pep440 => vec![parse_and_list(&raw, ',', Op::Eq)?],
            ConstraintFlavor::Cargo => vec![parse_and_list(&raw, ',', Op::Caret)?],
            ConstraintFlavor::RubyGems => vec![parse_and_list(&raw, ',', Op::Eq)?],
            ConstraintFlavor::Npm => parse_npm(&raw)?,
            ConstraintFlavor::Composer => parse_composer(&raw)?,
            ConstraintFlavor::Maven => parse_maven(&raw)?,
            ConstraintFlavor::Go => {
                let v = Version::parse(&raw)?;
                vec![vec![Comparator::new(Op::Eq, v)]]
            }
        };
        Ok(VersionReq {
            clauses,
            raw,
            flavor,
        })
    }

    /// The requirement exactly as written.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The dialect this requirement was parsed in.
    pub fn flavor(&self) -> ConstraintFlavor {
        self.flavor
    }

    /// The comparator clauses (outer vec = OR, inner vec = AND).
    pub fn clauses(&self) -> &[Vec<Comparator>] {
        &self.clauses
    }

    /// Evaluates the requirement against a version.
    ///
    /// Pre-release versions only match when some comparator explicitly
    /// mentions a pre-release (the behavior shared by pip, npm and Cargo).
    pub fn matches(&self, v: &Version) -> bool {
        if v.is_prerelease() && !self.allows_prerelease() {
            return false;
        }
        self.clauses
            .iter()
            .any(|and| and.iter().all(|c| c.matches(v)))
    }

    /// Whether pre-release versions are eligible.
    pub fn allows_prerelease(&self) -> bool {
        self.clauses
            .iter()
            .flatten()
            .any(|c| c.mentions_prerelease())
    }

    /// When the requirement pins exactly one version (`==1.2.3`), returns it.
    ///
    /// Wildcards (`==1.2.*`) and ranges are not pins — §V-D shows Trivy and
    /// Syft silently drop everything this method returns `None` for.
    pub fn pinned(&self) -> Option<&Version> {
        if self.clauses.len() != 1 || self.clauses[0].len() != 1 {
            return None;
        }
        let c = &self.clauses[0][0];
        if c.op == Op::Eq && c.wildcard_from.is_none() {
            Some(&c.version)
        } else {
            None
        }
    }

    /// Selects the highest version in `candidates` that satisfies the
    /// requirement — the "pin latest in range" strategy §V-D attributes to
    /// the Microsoft SBOM Tool.
    pub fn latest_matching<'a, I>(&self, candidates: I) -> Option<&'a Version>
    where
        I: IntoIterator<Item = &'a Version>,
    {
        candidates.into_iter().filter(|v| self.matches(v)).max()
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// Parses one comparator; `default_op` applies when no operator is written.
fn parse_comparator(part: &str, default_op: Op) -> Result<Comparator, ParseError> {
    let part = part.trim();
    if part.is_empty() || part == "*" || part == "x" || part == "X" || part == "latest" {
        return Ok(Comparator {
            op: Op::Any,
            version: Version::new(0, 0, 0),
            precision: 0,
            wildcard_from: None,
        });
    }
    let (op, rest) = if let Some(r) = part.strip_prefix("===") {
        (Op::Eq, r)
    } else if let Some(r) = part.strip_prefix("==") {
        (Op::Eq, r)
    } else if let Some(r) = part.strip_prefix("!=") {
        (Op::Ne, r)
    } else if let Some(r) = part.strip_prefix(">=") {
        (Op::Ge, r)
    } else if let Some(r) = part.strip_prefix("<=") {
        (Op::Le, r)
    } else if let Some(r) = part.strip_prefix("~>") {
        (Op::Pessimistic, r)
    } else if let Some(r) = part.strip_prefix("~=") {
        (Op::Compatible, r)
    } else if let Some(r) = part.strip_prefix('>') {
        (Op::Gt, r)
    } else if let Some(r) = part.strip_prefix('<') {
        (Op::Lt, r)
    } else if let Some(r) = part.strip_prefix('^') {
        (Op::Caret, r)
    } else if let Some(r) = part.strip_prefix('~') {
        (Op::Tilde, r)
    } else if let Some(r) = part.strip_prefix('=') {
        (Op::Eq, r)
    } else {
        (default_op, part)
    };
    let vtext = rest.trim();
    // Wildcard segments: 1.2.* / 1.2.x
    let segs: Vec<&str> = vtext.split('.').collect();
    let wild = segs.iter().position(|s| matches!(*s, "*" | "x" | "X"));
    if let Some(k) = wild {
        if k == 0 {
            return Ok(Comparator {
                op: Op::Any,
                version: Version::new(0, 0, 0),
                precision: 0,
                wildcard_from: None,
            });
        }
        let base = segs[..k].join(".");
        let version = Version::parse(&base)?;
        return Ok(Comparator {
            op: if op == Op::Caret || op == Op::Tilde {
                op
            } else {
                Op::Eq
            },
            version,
            precision: k,
            wildcard_from: Some(k),
        });
    }
    let version = Version::parse(vtext)?;
    let precision = version.release().len();
    Ok(Comparator {
        op,
        version,
        precision,
        wildcard_from: None,
    })
}

fn parse_and_list(s: &str, sep: char, default_op: Op) -> Result<Vec<Comparator>, ParseError> {
    let mut out = Vec::new();
    for part in s.split(sep) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_comparator(part, default_op)?);
    }
    if out.is_empty() {
        out.push(parse_comparator("*", default_op)?);
    }
    Ok(out)
}

/// npm: `||` separates alternatives; inside, whitespace separates ANDed
/// comparators; `A - B` is an inclusive range; bare partial versions behave
/// like wildcards (`1.2` ≡ `1.2.x`).
fn parse_npm(s: &str) -> Result<Vec<Vec<Comparator>>, ParseError> {
    let mut clauses = Vec::new();
    for alt in s.split("||") {
        let alt = alt.trim();
        let mut and = Vec::new();
        if let Some((lo, hi)) = split_hyphen_range(alt) {
            and.push(parse_comparator(&format!(">={lo}"), Op::Eq)?);
            and.push(parse_comparator(&format!("<={hi}"), Op::Eq)?);
        } else {
            for tok in alt.split_whitespace() {
                let c = parse_comparator(tok, Op::Eq)?;
                // npm bare "1.2" means 1.2.x
                let c = if c.op == Op::Eq
                    && c.wildcard_from.is_none()
                    && c.precision < 3
                    && !tok.contains("==")
                    && !tok.starts_with('=')
                    && !c.version.is_prerelease()
                {
                    Comparator {
                        wildcard_from: Some(c.precision),
                        ..c
                    }
                } else {
                    c
                };
                and.push(c);
            }
            if and.is_empty() {
                and.push(parse_comparator("*", Op::Eq)?);
            }
        }
        clauses.push(and);
    }
    Ok(clauses)
}

/// Composer: `||`/`|` alternatives; spaces or commas AND comparators; strips
/// stability flags (`@stable`) and `v` prefixes; `dev-*` branches match
/// anything (they name VCS branches, not versions).
fn parse_composer(s: &str) -> Result<Vec<Vec<Comparator>>, ParseError> {
    let mut clauses = Vec::new();
    let normalized = s.replace("||", "\u{1}");
    for alt in normalized.split(['\u{1}', '|']) {
        let alt = alt.trim();
        let mut and = Vec::new();
        if let Some((lo, hi)) = split_hyphen_range(alt) {
            and.push(parse_comparator(&format!(">={lo}"), Op::Eq)?);
            and.push(parse_comparator(&format!("<={hi}"), Op::Eq)?);
        } else {
            for tok in alt.split([' ', ',']) {
                let tok = tok.trim();
                if tok.is_empty() {
                    continue;
                }
                let tok = tok.split('@').next().unwrap_or(tok);
                if tok.is_empty() {
                    continue;
                }
                if tok.starts_with("dev-") {
                    and.push(parse_comparator("*", Op::Eq)?);
                    continue;
                }
                and.push(parse_comparator(tok, Op::Eq)?);
            }
            if and.is_empty() {
                and.push(parse_comparator("*", Op::Eq)?);
            }
        }
        clauses.push(and);
    }
    Ok(clauses)
}

/// Maven: bracket ranges, possibly unioned: `(,1.0],[1.2,)`; a bare version
/// is a "soft" requirement treated as an exact preference.
fn parse_maven(s: &str) -> Result<Vec<Vec<Comparator>>, ParseError> {
    let s = s.trim();
    if !s.starts_with('[') && !s.starts_with('(') {
        return Ok(vec![vec![parse_comparator(s, Op::Eq)?]]);
    }
    let mut clauses = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let open = rest
            .chars()
            .next()
            .filter(|c| *c == '[' || *c == '(')
            .ok_or_else(|| ParseError::new(s, "expected '[' or '(' in maven range"))?;
        let close_idx = rest
            .find([']', ')'])
            .ok_or_else(|| ParseError::new(s, "unterminated maven range"))?;
        let close = rest.as_bytes()[close_idx] as char;
        let inner = &rest[1..close_idx];
        let mut and = Vec::new();
        if let Some((lo, hi)) = inner.split_once(',') {
            let lo = lo.trim();
            let hi = hi.trim();
            if !lo.is_empty() {
                let op = if open == '[' { ">=" } else { ">" };
                and.push(parse_comparator(&format!("{op}{lo}"), Op::Eq)?);
            }
            if !hi.is_empty() {
                let op = if close == ']' { "<=" } else { "<" };
                and.push(parse_comparator(&format!("{op}{hi}"), Op::Eq)?);
            }
            if and.is_empty() {
                and.push(parse_comparator("*", Op::Eq)?);
            }
        } else {
            // [1.0] — exact
            and.push(parse_comparator(&format!("=={}", inner.trim()), Op::Eq)?);
        }
        clauses.push(and);
        rest = rest[close_idx + 1..].trim_start_matches(',').trim_start();
    }
    Ok(clauses)
}

/// Splits `"1.2.3 - 2.0.0"` hyphen ranges (spaces required around `-`).
fn split_hyphen_range(s: &str) -> Option<(String, String)> {
    let idx = s.find(" - ")?;
    let lo = s[..idx].trim();
    let hi = s[idx + 3..].trim();
    if lo.is_empty() || hi.is_empty() {
        return None;
    }
    Some((lo.to_string(), hi.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn req(s: &str, f: ConstraintFlavor) -> VersionReq {
        VersionReq::parse(s, f).unwrap()
    }

    #[test]
    fn pep440_range() {
        let r = req(">=1.2.3, <2.0.0", ConstraintFlavor::Pep440);
        assert!(r.matches(&v("1.2.3")));
        assert!(r.matches(&v("1.9.9")));
        assert!(!r.matches(&v("2.0.0")));
        assert!(!r.matches(&v("1.2.2")));
        assert!(r.pinned().is_none());
    }

    #[test]
    fn pep440_pin() {
        let r = req("==1.19.2", ConstraintFlavor::Pep440);
        assert_eq!(r.pinned(), Some(&v("1.19.2")));
        assert!(r.matches(&v("1.19.2")));
        assert!(!r.matches(&v("1.19.3")));
    }

    #[test]
    fn pep440_compatible_release() {
        let r = req("~=1.4.2", ConstraintFlavor::Pep440);
        assert!(r.matches(&v("1.4.2")));
        assert!(r.matches(&v("1.4.9")));
        assert!(!r.matches(&v("1.5.0")));
        let r2 = req("~=2.2", ConstraintFlavor::Pep440);
        assert!(r2.matches(&v("2.9")));
        assert!(!r2.matches(&v("3.0")));
    }

    #[test]
    fn pep440_wildcard_eq() {
        let r = req("==1.2.*", ConstraintFlavor::Pep440);
        assert!(r.matches(&v("1.2.0")));
        assert!(r.matches(&v("1.2.99")));
        assert!(!r.matches(&v("1.3.0")));
        assert!(r.pinned().is_none());
    }

    #[test]
    fn pep440_exclusion() {
        let r = req(">=1.0, !=1.5.0", ConstraintFlavor::Pep440);
        assert!(r.matches(&v("1.4.0")));
        assert!(!r.matches(&v("1.5.0")));
        assert!(r.matches(&v("1.5.1")));
    }

    #[test]
    fn npm_caret() {
        let r = req("^1.2.3", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.2.3")));
        assert!(r.matches(&v("1.99.0")));
        assert!(!r.matches(&v("2.0.0")));
        assert!(!r.matches(&v("1.2.2")));
    }

    #[test]
    fn npm_caret_zero_major() {
        let r = req("^0.2.3", ConstraintFlavor::Npm);
        assert!(r.matches(&v("0.2.9")));
        assert!(!r.matches(&v("0.3.0")));
        let r2 = req("^0.0.3", ConstraintFlavor::Npm);
        assert!(r2.matches(&v("0.0.3")));
        assert!(!r2.matches(&v("0.0.4")));
    }

    #[test]
    fn npm_tilde() {
        let r = req("~1.2.3", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.2.9")));
        assert!(!r.matches(&v("1.3.0")));
        let r2 = req("~1.2", ConstraintFlavor::Npm);
        assert!(r2.matches(&v("1.2.9")));
        assert!(!r2.matches(&v("1.3.0")));
    }

    #[test]
    fn npm_or_clauses() {
        let r = req("^1.2.3 || 2.x", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.5.0")));
        assert!(r.matches(&v("2.9.0")));
        assert!(!r.matches(&v("3.0.0")));
    }

    #[test]
    fn npm_hyphen_range() {
        let r = req("1.2.3 - 2.0.0", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.5.0")));
        assert!(r.matches(&v("2.0.0")));
        assert!(!r.matches(&v("2.0.1")));
    }

    #[test]
    fn npm_star_and_latest() {
        assert!(req("*", ConstraintFlavor::Npm).matches(&v("9.9.9")));
        assert!(req("latest", ConstraintFlavor::Npm).matches(&v("0.0.1")));
        assert!(req("", ConstraintFlavor::Npm).matches(&v("1.0.0")));
    }

    #[test]
    fn npm_bare_partial_is_wildcard() {
        let r = req("1.2", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.2.7")));
        assert!(!r.matches(&v("1.3.0")));
    }

    #[test]
    fn npm_space_means_and() {
        let r = req(">=1.2.0 <1.5.0", ConstraintFlavor::Npm);
        assert!(r.matches(&v("1.4.9")));
        assert!(!r.matches(&v("1.5.0")));
    }

    #[test]
    fn cargo_bare_is_caret() {
        let r = req("1.2.3", ConstraintFlavor::Cargo);
        assert!(r.matches(&v("1.9.0")));
        assert!(!r.matches(&v("2.0.0")));
        assert!(r.pinned().is_none());
    }

    #[test]
    fn cargo_exact_and_comma() {
        let r = req("=1.2.3", ConstraintFlavor::Cargo);
        assert_eq!(r.pinned(), Some(&v("1.2.3")));
        let r2 = req(">=1.2, <1.5", ConstraintFlavor::Cargo);
        assert!(r2.matches(&v("1.4.9")));
        assert!(!r2.matches(&v("1.5.0")));
    }

    #[test]
    fn rubygems_pessimistic() {
        let r = req("~> 1.2.3", ConstraintFlavor::RubyGems);
        assert!(r.matches(&v("1.2.9")));
        assert!(!r.matches(&v("1.3.0")));
        let r2 = req("~> 1.2", ConstraintFlavor::RubyGems);
        assert!(r2.matches(&v("1.9.0")));
        assert!(!r2.matches(&v("2.0.0")));
    }

    #[test]
    fn composer_variants() {
        let r = req("^1.2 || ^2.0", ConstraintFlavor::Composer);
        assert!(r.matches(&v("1.9.0")));
        assert!(r.matches(&v("2.3.0")));
        assert!(!r.matches(&v("3.0.0")));
        let r2 = req("1.2.*", ConstraintFlavor::Composer);
        assert!(r2.matches(&v("1.2.5")));
        assert!(!r2.matches(&v("1.3.0")));
        let r3 = req("^1.0@stable", ConstraintFlavor::Composer);
        assert!(r3.matches(&v("1.5.0")));
        let r4 = req("dev-master", ConstraintFlavor::Composer);
        assert!(r4.matches(&v("9.0.0")));
    }

    #[test]
    fn maven_ranges() {
        let r = req("[1.0,2.0)", ConstraintFlavor::Maven);
        assert!(r.matches(&v("1.0")));
        assert!(r.matches(&v("1.9.9")));
        assert!(!r.matches(&v("2.0")));
        let r2 = req("(,1.0]", ConstraintFlavor::Maven);
        assert!(r2.matches(&v("0.9")));
        assert!(r2.matches(&v("1.0")));
        assert!(!r2.matches(&v("1.1")));
        let r3 = req("[1.5]", ConstraintFlavor::Maven);
        assert_eq!(r3.pinned(), Some(&v("1.5")));
        let r4 = req("(,1.0],[1.2,)", ConstraintFlavor::Maven);
        assert!(r4.matches(&v("0.5")));
        assert!(!r4.matches(&v("1.1")));
        assert!(r4.matches(&v("1.3")));
    }

    #[test]
    fn maven_soft_requirement() {
        let r = req("1.0", ConstraintFlavor::Maven);
        assert_eq!(r.pinned(), Some(&v("1.0")));
    }

    #[test]
    fn go_exact() {
        let r = req("v1.2.3", ConstraintFlavor::Go);
        assert_eq!(r.pinned(), Some(&v("1.2.3")));
        assert!(r.matches(&v("v1.2.3")));
        assert!(r.matches(&v("1.2.3")));
    }

    #[test]
    fn prerelease_excluded_unless_mentioned() {
        let r = req(">=1.0", ConstraintFlavor::Pep440);
        assert!(!r.matches(&v("2.0.0-rc.1")));
        let r2 = req(">=2.0.0-rc.1", ConstraintFlavor::Npm);
        assert!(r2.matches(&v("2.0.0-rc.2")));
    }

    #[test]
    fn latest_matching_picks_max() {
        let versions: Vec<Version> = ["1.0.0", "1.4.0", "1.9.2", "2.0.0"]
            .iter()
            .map(|s| v(s))
            .collect();
        let r = req(">=1.2, <2.0", ConstraintFlavor::Pep440);
        assert_eq!(r.latest_matching(&versions), Some(&v("1.9.2")));
        let none = req(">=5.0", ConstraintFlavor::Pep440);
        assert_eq!(none.latest_matching(&versions), None);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(VersionReq::parse(">=abc", ConstraintFlavor::Pep440).is_err());
        assert!(VersionReq::parse("[1.0,2.0", ConstraintFlavor::Maven).is_err());
    }

    #[test]
    fn display_roundtrip_raw() {
        let r = req(">=1.2.3, <2.0.0", ConstraintFlavor::Pep440);
        assert_eq!(r.to_string(), ">=1.2.3, <2.0.0");
    }

    #[test]
    fn any_and_exact_constructors() {
        assert!(VersionReq::any().matches(&v("42.0")));
        let e = VersionReq::exact(v("1.2.3"));
        assert_eq!(e.pinned(), Some(&v("1.2.3")));
    }
}

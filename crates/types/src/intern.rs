//! String interning for the hot differential-analysis path.
//!
//! The four-profile pipeline materializes the same package names, version
//! spellings, paths and PURL fragments thousands of times per corpus run:
//! every emulator clones them into its own [`Component`](crate::Component),
//! the diff layer clones them again into key sets, and the service clones
//! them once more into response documents. [`Symbol`] collapses all of
//! those copies into one shared allocation per distinct string — a clone is
//! an `Arc` refcount bump, equality usually short-circuits on pointer
//! identity, and ids are content-derived so they are byte-stable for any
//! worker count (`--jobs 1` and `--jobs 8` intern to identical ids).
//!
//! Two entry points:
//!
//! * [`intern`] — the process-global pool used by `Component` and `Purl`
//!   construction. Sharded (16 mutexes by content hash) so the parallel
//!   `(repository × tool)` fan-out contends only on same-shard collisions.
//! * [`Interner`] — an explicit pool for tests and tools that want an
//!   isolated lifetime.
//!
//! The global pool is capacity-bounded: once a shard holds
//! [`SHARD_CAP`] distinct strings, further strings are returned un-pooled
//! (still a valid `Symbol`, just not deduplicated) so a long-running
//! service ingesting adversarial payloads cannot grow the pool without
//! bound. Determinism is unaffected — pooling only changes sharing, never
//! content or ids.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// FNV-1a [`Hasher`] for the shard sets: the pooled strings are short
/// (package names, versions, paths), where FNV beats the DoS-resistant
/// default — and the pool is capacity-bounded, so collision flooding
/// cannot grow it anyway.
#[derive(Default)]
struct FnvHasher(Option<u64>);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0.unwrap_or(0xcbf2_9ce4_8422_2325);
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = Some(h);
    }

    fn finish(&self) -> u64 {
        self.0.unwrap_or(0xcbf2_9ce4_8422_2325)
    }
}

/// Entries retained per shard of the global pool (16 shards, so ~1M
/// distinct strings total) before new strings stop being pooled.
pub const SHARD_CAP: usize = 65_536;

const SHARDS: usize = 16;

/// An interned, immutable, cheaply-cloneable string.
///
/// Dereferences to `str`, compares and hashes by content (with a pointer
/// fast path), and orders lexicographically — a drop-in for the `String`
/// fields it replaced in [`Component`](crate::Component).
///
/// # Examples
///
/// ```
/// use sbomdiff_types::intern::{intern, Symbol};
///
/// let a: Symbol = intern("requests");
/// let b: Symbol = "requests".into();
/// assert_eq!(a, b);
/// assert_eq!(a.id(), b.id()); // content-derived, thread-count independent
/// assert_eq!(&*a, "requests");
/// ```
#[derive(Clone)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A content-derived 64-bit id (FNV-1a). Deterministic across runs,
    /// threads and interner instances: the same string always yields the
    /// same id, which is what lets parallel pipelines intern concurrently
    /// without coordinating id assignment.
    pub fn id(&self) -> u64 {
        fnv1a(self.0.as_bytes())
    }

    /// Whether two symbols share one allocation (deduplicated by a pool).
    pub fn ptr_eq(a: &Symbol, b: &Symbol) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for Symbol {
    fn default() -> Self {
        // Cached: every `Component` without a source path asks for the
        // empty symbol, which should not cost a pool round trip.
        static EMPTY: OnceLock<Symbol> = OnceLock::new();
        EMPTY.get_or_init(|| intern("")).clone()
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `Borrow<str>`: hash exactly as `str` does.
        (*self.0).hash(state)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == &*other.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        intern(&s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        intern(s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        s.clone()
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.to_string()
    }
}

impl From<&Symbol> for String {
    fn from(s: &Symbol) -> String {
        s.0.to_string()
    }
}

/// An explicit interning pool (the global [`intern`] uses one internally).
///
/// Sharded by content hash; safe to share across threads.
pub struct Interner {
    shards: Vec<Mutex<HashSet<Arc<str>, BuildHasherDefault<FnvHasher>>>>,
    cap_per_shard: usize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// A pool with the default per-shard capacity.
    pub fn new() -> Interner {
        Interner::with_capacity(SHARD_CAP)
    }

    /// A pool retaining at most `cap_per_shard` strings per shard; beyond
    /// that, symbols are returned un-pooled.
    pub fn with_capacity(cap_per_shard: usize) -> Interner {
        Interner {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashSet::default()))
                .collect(),
            cap_per_shard,
        }
    }

    /// Interns `s`: returns the pooled symbol, inserting on first sight.
    pub fn intern(&self, s: &str) -> Symbol {
        let shard = &self.shards[(fnv1a(s.as_bytes()) % SHARDS as u64) as usize];
        // A poisoned shard means another worker panicked mid-insert; the
        // set itself is still coherent, so recover instead of cascading.
        let mut set = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(found) = set.get(s) {
            return Symbol(Arc::clone(found));
        }
        let arc: Arc<str> = Arc::from(s);
        if set.len() < self.cap_per_shard {
            set.insert(Arc::clone(&arc));
        }
        Symbol(arc)
    }

    /// Distinct strings currently pooled.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interns `s` in the process-global pool.
pub fn intern(s: &str) -> Symbol {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new).intern(s)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_identity() {
        let s = intern("numpy");
        assert_eq!(s.as_str(), "numpy");
        assert_eq!(s, "numpy");
        assert_eq!("numpy", s);
        assert_eq!(s, "numpy".to_string());
        assert_eq!(s.to_string(), "numpy");
        let t = intern("numpy");
        assert!(Symbol::ptr_eq(&s, &t), "global pool must deduplicate");
        assert_eq!(s.id(), t.id());
    }

    #[test]
    fn ordering_and_hashing_match_str() {
        let mut v = vec![intern("b"), intern("a"), intern("c")];
        v.sort();
        assert_eq!(v, vec![intern("a"), intern("b"), intern("c")]);
        let mut set = std::collections::HashSet::new();
        set.insert(intern("x"));
        // Borrow<str> lookups work like String's.
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }

    #[test]
    fn capacity_bound_stops_pooling_not_correctness() {
        let pool = Interner::with_capacity(1);
        let mut symbols = Vec::new();
        for i in 0..64 {
            symbols.push(pool.intern(&format!("pkg-{i}")));
        }
        assert!(pool.len() <= SHARDS, "at most one retained entry per shard");
        // Un-pooled symbols still behave correctly.
        let again = pool.intern("pkg-63");
        assert_eq!(again, symbols[63]);
        assert_eq!(again.id(), symbols[63].id());
    }

    #[test]
    fn default_is_empty_string() {
        assert_eq!(Symbol::default(), "");
        assert_eq!(String::from(Symbol::default()), "");
    }
}

//! Core domain types for the sbomdiff workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *"On the Correctness of Metadata-Based SBOM Generation"*
//! (DSN 2024): software ecosystems, package names and their normalization
//! rules, versions, version constraints in the dialects used by real package
//! managers, declared and resolved dependencies, SBOM components, and the
//! PURL / CPE identifier formats the paper's best practices call for.
//!
//! # Examples
//!
//! ```
//! use sbomdiff_types::{Version, VersionReq, ConstraintFlavor};
//!
//! let v = Version::parse("1.19.2").unwrap();
//! let req = VersionReq::parse(">=1.2.3, <2.0.0", ConstraintFlavor::Pep440).unwrap();
//! assert!(req.matches(&v));
//! ```

pub mod component;
pub mod constraint;
pub mod cpe;
pub mod dependency;
pub mod diagnostic;
pub mod ecosystem;
pub mod error;
pub mod intern;
pub mod name;
pub mod purl;
pub mod version;

pub use component::{Component, ComponentKey, Sbom, SbomMeta};
pub use constraint::{Comparator, ConstraintFlavor, Op, VersionReq};
pub use cpe::Cpe;
pub use dependency::{DeclaredDependency, DepScope, DependencySource, ResolvedPackage, VcsKind};
pub use diagnostic::{DiagClass, Diagnostic, Severity};
pub use ecosystem::Ecosystem;
pub use error::ParseError;
pub use intern::{intern, Interner, Symbol};
pub use name::PackageName;
pub use purl::Purl;
pub use version::{PreKind, Version};

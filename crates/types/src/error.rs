//! Error types shared across the workspace.

use std::fmt;

/// Error produced when parsing versions, constraints, identifiers, or
/// metadata fragments fails.
///
/// The error carries the offending input (truncated) and a human-readable
/// reason, so differential reports can show *why* a tool profile rejected a
/// declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    input: String,
    reason: String,
}

impl ParseError {
    /// Creates a new parse error for `input` with the given `reason`.
    pub fn new(input: impl Into<String>, reason: impl Into<String>) -> Self {
        let mut input = input.into();
        if input.len() > 120 {
            let mut cut = 117;
            while cut > 0 && !input.is_char_boundary(cut) {
                cut -= 1;
            }
            input.truncate(cut);
            input.push_str("...");
        }
        ParseError {
            input,
            reason: reason.into(),
        }
    }

    /// The (possibly truncated) input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The reason parsing failed.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (input: {:?})", self.reason, self.input)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason_and_input() {
        let e = ParseError::new("abc", "bad version");
        let s = e.to_string();
        assert!(s.contains("bad version"));
        assert!(s.contains("abc"));
    }

    #[test]
    fn long_input_is_truncated() {
        let long = "x".repeat(500);
        let e = ParseError::new(long, "too long");
        assert!(e.input().len() <= 120);
        assert!(e.input().ends_with("..."));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}

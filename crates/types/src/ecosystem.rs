//! Software ecosystems (language package-manager universes) studied by the
//! paper's evaluation: Python, Ruby, PHP, Java, Swift, C#/.NET, Rust, Go and
//! JavaScript (§III-B).

use std::fmt;
use std::str::FromStr;

use crate::constraint::ConstraintFlavor;
use crate::error::ParseError;

/// A package ecosystem evaluated in the paper.
///
/// Each ecosystem maps to one primary package manager and defines the name
/// normalization and version-constraint dialect used there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ecosystem {
    /// Python / pip / PyPI.
    Python,
    /// JavaScript / npm (also yarn, pnpm).
    JavaScript,
    /// Ruby / RubyGems / bundler.
    Ruby,
    /// PHP / Composer / Packagist.
    Php,
    /// Java / Maven (also Gradle).
    Java,
    /// Go modules.
    Go,
    /// Rust / Cargo / crates.io.
    Rust,
    /// Swift / CocoaPods and Swift Package Manager.
    Swift,
    /// C# / NuGet.
    DotNet,
}

impl Ecosystem {
    /// All ecosystems, in the order the paper's figures present them.
    pub const ALL: [Ecosystem; 9] = [
        Ecosystem::Python,
        Ecosystem::Java,
        Ecosystem::JavaScript,
        Ecosystem::Go,
        Ecosystem::DotNet,
        Ecosystem::Php,
        Ecosystem::Ruby,
        Ecosystem::Rust,
        Ecosystem::Swift,
    ];

    /// Human-readable language label used in the paper's tables
    /// (e.g. `.NET` rather than `DotNet`).
    pub fn label(self) -> &'static str {
        match self {
            Ecosystem::Python => "Python",
            Ecosystem::JavaScript => "JavaScript",
            Ecosystem::Ruby => "Ruby",
            Ecosystem::Php => "PHP",
            Ecosystem::Java => "Java",
            Ecosystem::Go => "Go",
            Ecosystem::Rust => "Rust",
            Ecosystem::Swift => "Swift",
            Ecosystem::DotNet => ".NET",
        }
    }

    /// The `pkg:` PURL type for this ecosystem (per the PURL spec).
    pub fn purl_type(self) -> &'static str {
        match self {
            Ecosystem::Python => "pypi",
            Ecosystem::JavaScript => "npm",
            Ecosystem::Ruby => "gem",
            Ecosystem::Php => "composer",
            Ecosystem::Java => "maven",
            Ecosystem::Go => "golang",
            Ecosystem::Rust => "cargo",
            Ecosystem::Swift => "cocoapods",
            Ecosystem::DotNet => "nuget",
        }
    }

    /// The version-constraint dialect this ecosystem's raw metadata uses.
    pub fn constraint_flavor(self) -> ConstraintFlavor {
        match self {
            Ecosystem::Python => ConstraintFlavor::Pep440,
            Ecosystem::JavaScript => ConstraintFlavor::Npm,
            Ecosystem::Ruby => ConstraintFlavor::RubyGems,
            Ecosystem::Php => ConstraintFlavor::Composer,
            Ecosystem::Java => ConstraintFlavor::Maven,
            Ecosystem::Go => ConstraintFlavor::Go,
            Ecosystem::Rust => ConstraintFlavor::Cargo,
            Ecosystem::Swift => ConstraintFlavor::RubyGems,
            Ecosystem::DotNet => ConstraintFlavor::Maven,
        }
    }

    /// Whether package names in this ecosystem are case-insensitive.
    pub fn case_insensitive_names(self) -> bool {
        matches!(self, Ecosystem::Python | Ecosystem::DotNet | Ecosystem::Php)
    }

    /// Whether canonical versions in this ecosystem carry a leading `v`
    /// (Go modules, §V-E).
    pub fn uses_v_prefix(self) -> bool {
        matches!(self, Ecosystem::Go)
    }
}

impl fmt::Display for Ecosystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Ecosystem {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "python" | "pypi" | "pip" => Ok(Ecosystem::Python),
            "javascript" | "js" | "npm" | "node" => Ok(Ecosystem::JavaScript),
            "ruby" | "gem" | "rubygems" => Ok(Ecosystem::Ruby),
            "php" | "composer" | "packagist" => Ok(Ecosystem::Php),
            "java" | "maven" | "gradle" => Ok(Ecosystem::Java),
            "go" | "golang" => Ok(Ecosystem::Go),
            "rust" | "cargo" | "crates" => Ok(Ecosystem::Rust),
            "swift" | "cocoapods" | "pods" => Ok(Ecosystem::Swift),
            ".net" | "dotnet" | "csharp" | "c#" | "nuget" => Ok(Ecosystem::DotNet),
            _ => Err(ParseError::new(s, "unknown ecosystem")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_nine_unique_ecosystems() {
        let mut v = Ecosystem::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 9);
    }

    #[test]
    fn roundtrip_from_label() {
        for eco in Ecosystem::ALL {
            let parsed: Ecosystem = eco.label().parse().unwrap();
            assert_eq!(parsed, eco);
        }
    }

    #[test]
    fn purl_types_are_lowercase_and_known() {
        for eco in Ecosystem::ALL {
            let t = eco.purl_type();
            assert!(!t.is_empty());
            assert_eq!(t, t.to_lowercase());
        }
    }

    #[test]
    fn unknown_ecosystem_errors() {
        assert!("fortran".parse::<Ecosystem>().is_err());
    }

    #[test]
    fn go_uses_v_prefix_others_do_not() {
        assert!(Ecosystem::Go.uses_v_prefix());
        assert!(!Ecosystem::Python.uses_v_prefix());
        assert!(!Ecosystem::Rust.uses_v_prefix());
    }
}

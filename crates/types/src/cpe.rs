//! CPE 2.3 (Common Platform Enumeration) formatted-string support.
//!
//! §VII recommends each SBOM component carry a CPE alongside its PURL for
//! vulnerability-database matching. This implements the 11-field
//! `cpe:2.3:part:vendor:product:version:update:edition:lang:sw_edition:target_sw:target_hw:other`
//! formatted string with the subset of quoting needed for package data.

use std::fmt;
use std::str::FromStr;

use crate::ecosystem::Ecosystem;
use crate::error::ParseError;

/// A CPE 2.3 name for an application component.
///
/// # Examples
///
/// ```
/// use sbomdiff_types::Cpe;
///
/// let c = Cpe::application("numpy", "numpy", "1.19.2");
/// assert_eq!(c.to_string(), "cpe:2.3:a:numpy:numpy:1.19.2:*:*:*:*:*:*:*");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cpe {
    part: char,
    vendor: String,
    product: String,
    version: String,
    update: String,
    edition: String,
    language: String,
    sw_edition: String,
    target_sw: String,
    target_hw: String,
    other: String,
}

impl Cpe {
    /// Creates an application (`a`) CPE with wildcards for the trailing
    /// fields.
    pub fn application(
        vendor: impl Into<String>,
        product: impl Into<String>,
        version: impl Into<String>,
    ) -> Self {
        Cpe {
            part: 'a',
            vendor: canonical_field(&vendor.into()),
            product: canonical_field(&product.into()),
            version: canonical_field(&version.into()),
            update: "*".into(),
            edition: "*".into(),
            language: "*".into(),
            sw_edition: "*".into(),
            target_sw: "*".into(),
            target_hw: "*".into(),
            other: "*".into(),
        }
    }

    /// Builds a CPE for a package in a studied ecosystem, using the package
    /// name as both vendor and product (the convention NVD data commonly
    /// follows for language packages) and the ecosystem as `target_sw`.
    pub fn for_package(eco: Ecosystem, name: &str, version: &str) -> Self {
        let pname = crate::name::PackageName::new(eco, name);
        let vendor = pname
            .namespace()
            .map(|ns| ns.trim_start_matches('@').to_string())
            .unwrap_or_else(|| pname.base().to_string());
        let mut cpe = Cpe::application(vendor, pname.base(), version);
        cpe.target_sw = canonical_field(eco.purl_type());
        cpe
    }

    /// The part field (`a` for applications).
    pub fn part(&self) -> char {
        self.part
    }

    /// The vendor field.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The product field.
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The version field.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The target software field (ecosystem).
    pub fn target_sw(&self) -> &str {
        &self.target_sw
    }

    /// Whether this CPE matches another treating `*` as a wildcard in either.
    pub fn matches(&self, other: &Cpe) -> bool {
        fn fm(a: &str, b: &str) -> bool {
            a == "*" || b == "*" || a == b
        }
        self.part == other.part
            && fm(&self.vendor, &other.vendor)
            && fm(&self.product, &other.product)
            && fm(&self.version, &other.version)
            && fm(&self.target_sw, &other.target_sw)
    }
}

/// Lowercases and quotes the characters CPE 2.3 requires quoting.
fn canonical_field(s: &str) -> String {
    if s.is_empty() {
        return "*".into();
    }
    if s == "*" || s == "-" {
        return s.into();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' | '_' | '.' | '-' => out.push(c),
            ' ' => out.push('_'),
            other => {
                out.push('\\');
                out.push(other);
            }
        }
    }
    out
}

fn split_unescaped_colons(s: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push('\\');
            cur.push(c);
            escape = false;
        } else if c == '\\' {
            escape = true;
        } else if c == ':' {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

impl fmt::Display for Cpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpe:2.3:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            self.part,
            self.vendor,
            self.product,
            self.version,
            self.update,
            self.edition,
            self.language,
            self.sw_edition,
            self.target_sw,
            self.target_hw,
            self.other
        )
    }
}

impl FromStr for Cpe {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields = split_unescaped_colons(s);
        if fields.len() != 13 || fields[0] != "cpe" || fields[1] != "2.3" {
            return Err(ParseError::new(s, "not a cpe 2.3 formatted string"));
        }
        let part = fields[2]
            .chars()
            .next()
            .filter(|c| matches!(c, 'a' | 'o' | 'h' | '*'))
            .ok_or_else(|| ParseError::new(s, "invalid cpe part"))?;
        Ok(Cpe {
            part,
            vendor: fields[3].clone(),
            product: fields[4].clone(),
            version: fields[5].clone(),
            update: fields[6].clone(),
            edition: fields[7].clone(),
            language: fields[8].clone(),
            sw_edition: fields[9].clone(),
            target_sw: fields[10].clone(),
            target_hw: fields[11].clone(),
            other: fields[12].clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let c = Cpe::application("numpy", "numpy", "1.19.2");
        assert_eq!(c.to_string(), "cpe:2.3:a:numpy:numpy:1.19.2:*:*:*:*:*:*:*");
    }

    #[test]
    fn roundtrip() {
        let c = Cpe::for_package(Ecosystem::Java, "com.google.guava:guava", "32.0");
        let s = c.to_string();
        let back: Cpe = s.parse().unwrap();
        assert_eq!(back, c);
        assert_eq!(back.vendor(), "com.google.guava");
        assert_eq!(back.product(), "guava");
        assert_eq!(back.target_sw(), "maven");
    }

    #[test]
    fn fields_are_lowercased_and_quoted() {
        let c = Cpe::application("Google LLC", "My+Lib", "1.0");
        assert_eq!(c.vendor(), "google_llc");
        assert_eq!(c.product(), "my\\+lib");
    }

    #[test]
    fn wildcard_matching() {
        let concrete = Cpe::application("numpy", "numpy", "1.19.2");
        let any_version = Cpe::application("numpy", "numpy", "*");
        assert!(concrete.matches(&any_version));
        let other = Cpe::application("scipy", "scipy", "*");
        assert!(!concrete.matches(&other));
    }

    #[test]
    fn rejects_malformed() {
        assert!("cpe:2.3:a:only:three".parse::<Cpe>().is_err());
        assert!("cpe:/a:legacy:uri:1.0".parse::<Cpe>().is_err());
        assert!("not-a-cpe".parse::<Cpe>().is_err());
    }

    #[test]
    fn escaped_colon_in_field_survives_roundtrip() {
        let c = Cpe::application("a:b", "p", "1.0");
        let s = c.to_string();
        let back: Cpe = s.parse().unwrap();
        assert_eq!(back.vendor(), "a\\:b");
    }
}

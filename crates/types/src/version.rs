//! A tolerant, ordered version model covering the version spellings that
//! appear across the nine studied ecosystems: SemVer (`1.2.3-rc.1+build`),
//! PEP 440 (`1!2.0.0a1.post2.dev3`), bare multi-segment (`1.2.3.4`), and Go's
//! `v`-prefixed form (`v1.0.0`, §V-E).
//!
//! The ordering is the practical intersection of SemVer and PEP 440:
//! `dev < alpha < beta < other-tags < rc < release < post`, with release
//! segments compared numerically and padded with zeros (`1.0 == 1.0.0`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::ParseError;

/// Classification of a pre-release tag.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PreKind {
    /// A bare numeric pre-release identifier (SemVer `1.0.0-1`).
    Numeric,
    /// `a` / `alpha`.
    Alpha,
    /// `b` / `beta`.
    Beta,
    /// Any unrecognized tag (`nightly`, `snapshot`, ...), compared lexically
    /// within this band.
    Other(String),
    /// `rc` / `c` / `pre` / `preview`.
    Rc,
}

impl PreKind {
    fn rank(&self) -> u8 {
        match self {
            PreKind::Numeric => 0,
            PreKind::Alpha => 1,
            PreKind::Beta => 2,
            PreKind::Other(_) => 3,
            PreKind::Rc => 4,
        }
    }

    fn tag(&self) -> &str {
        match self {
            PreKind::Numeric => "",
            PreKind::Alpha => "alpha",
            PreKind::Beta => "beta",
            PreKind::Other(t) => t,
            PreKind::Rc => "rc",
        }
    }
}

/// A parsed version.
///
/// Comparison ignores build metadata (the part after `+`) and the `v` prefix,
/// pads release segments with zeros, and orders pre-release phases as
/// documented at the module level.
///
/// # Examples
///
/// ```
/// use sbomdiff_types::Version;
///
/// let a = Version::parse("1.0").unwrap();
/// let b = Version::parse("1.0.0").unwrap();
/// assert_eq!(a, b);
/// assert!(Version::parse("1.0.0-rc.1").unwrap() < b);
/// assert!(Version::parse("v2.1.0").unwrap() > b);
/// ```
/// One trailing pre-release identifier beyond the leading `tag.number`
/// pair (SemVer §9 allows dot-separated lists like `1.0.0-rc.1.10`).
/// Ordered per SemVer §11: numeric identifiers compare numerically and
/// always sort below alphanumeric ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PreIdent {
    Num(u64),
    Alpha(String),
}

/// A borrowed view of one effective trailing identifier: the leading
/// pair's number (when it was spelled out) followed by [`Version::pre_rest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PreTail<'a> {
    Num(u64),
    Alpha(&'a str),
}

impl PreTail<'_> {
    fn cmp_semver(self, other: PreTail<'_>) -> Ordering {
        match (self, other) {
            (PreTail::Num(a), PreTail::Num(b)) => a.cmp(&b),
            (PreTail::Num(_), PreTail::Alpha(_)) => Ordering::Less,
            (PreTail::Alpha(_), PreTail::Num(_)) => Ordering::Greater,
            (PreTail::Alpha(a), PreTail::Alpha(b)) => a.cmp(b),
        }
    }
}

#[derive(Debug, Clone)]
pub struct Version {
    epoch: u32,
    release: Vec<u64>,
    pre: Option<(PreKind, u64)>,
    // Identifiers after the leading pre-release pair, in order. Empty for
    // the single-pair spellings that dominate real corpora.
    pre_rest: Vec<PreIdent>,
    // Whether the pair's number was spelled out (`rc.1`) rather than
    // defaulted (`alpha.beta` has no numeric second identifier, so its
    // implicit 0 must not participate in §11 ordering).
    pre_num_explicit: bool,
    post: Option<u64>,
    dev: Option<u64>,
    build: Option<String>,
    v_prefix: bool,
    raw: String,
}

impl Version {
    /// Builds a plain `major.minor.patch` release version.
    pub fn new(major: u64, minor: u64, patch: u64) -> Self {
        Version {
            epoch: 0,
            release: vec![major, minor, patch],
            pre: None,
            pre_rest: Vec::new(),
            pre_num_explicit: false,
            post: None,
            dev: None,
            build: None,
            v_prefix: false,
            raw: format!("{major}.{minor}.{patch}"),
        }
    }

    /// Parses a version string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when the input is empty or contains no leading
    /// numeric release segment.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let raw = input.trim();
        if raw.is_empty() {
            return Err(ParseError::new(input, "empty version"));
        }
        let mut s = raw;

        let build = match s.find('+') {
            Some(i) => {
                let b = s[i + 1..].to_string();
                s = &s[..i];
                if b.is_empty() {
                    None
                } else {
                    Some(b)
                }
            }
            None => None,
        };

        let mut v_prefix = false;
        if (s.starts_with('v') || s.starts_with('V'))
            && s[1..].starts_with(|c: char| c.is_ascii_digit())
        {
            v_prefix = true;
            s = &s[1..];
        }

        let mut epoch = 0u32;
        if let Some(i) = s.find('!') {
            epoch = s[..i]
                .parse()
                .map_err(|_| ParseError::new(raw, "invalid epoch"))?;
            s = &s[i + 1..];
        }

        // A version must *begin* with its numeric release; leading operator
        // or other junk (">=1.2.3") is not a version, even though the
        // tolerant tokenizer below skips separators internally.
        if !s.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(ParseError::new(raw, "version must start with a number"));
        }

        let tokens = tokenize(s);
        if tokens.is_empty() {
            return Err(ParseError::new(raw, "no version segments"));
        }

        let mut release = Vec::new();
        let mut idx = 0;
        while idx < tokens.len() {
            match &tokens[idx] {
                Token::Num(n, hyphen) if !*hyphen || idx == 0 => {
                    release.push(*n);
                    idx += 1;
                }
                _ => break,
            }
        }
        if release.is_empty() {
            return Err(ParseError::new(raw, "version must start with a number"));
        }

        let mut pre: Option<(PreKind, u64)> = None;
        let mut pre_rest: Vec<PreIdent> = Vec::new();
        let mut pre_num_explicit = false;
        let mut post: Option<u64> = None;
        let mut dev: Option<u64> = None;

        while idx < tokens.len() {
            match &tokens[idx] {
                Token::Alpha(tag) => {
                    let lower = tag.to_ascii_lowercase();
                    // `dev`/`post` markers bind their trailing number even
                    // when a pre-release pair was already consumed
                    // (`1.0rc1.post2`); anything else after the leading
                    // pre-release pair is a SemVer §9 dot-separated
                    // identifier and is kept verbatim for ordering.
                    let consumes_num =
                        matches!(lower.as_str(), "dev" | "post" | "rev" | "r") || pre.is_none();
                    let num = match tokens.get(idx + 1) {
                        Some(Token::Num(n, _)) if consumes_num => {
                            idx += 1;
                            Some(*n)
                        }
                        _ => None,
                    };
                    match lower.as_str() {
                        "dev" => dev = Some(num.unwrap_or(0)),
                        "post" | "rev" | "r" => post = Some(num.unwrap_or(0)),
                        _ if pre.is_some() => pre_rest.push(PreIdent::Alpha(lower)),
                        other => {
                            let kind = match other {
                                "a" | "alpha" => PreKind::Alpha,
                                "b" | "beta" => PreKind::Beta,
                                "c" | "rc" | "pre" | "preview" => PreKind::Rc,
                                _ => PreKind::Other(other.to_string()),
                            };
                            pre = Some((kind, num.unwrap_or(0)));
                            pre_num_explicit = num.is_some();
                        }
                    }
                    idx += 1;
                }
                Token::Num(n, _) => {
                    if pre.is_none() && post.is_none() && dev.is_none() {
                        pre = Some((PreKind::Numeric, *n));
                        pre_num_explicit = true;
                    } else if pre.is_some() && post.is_none() && dev.is_none() {
                        // Trailing numeric identifier (`1.0.0-rc.1.10`):
                        // previously dropped, which made `rc.1.9` and
                        // `rc.1.10` compare equal. Keep it and compare
                        // numerically per SemVer §11.
                        pre_rest.push(PreIdent::Num(*n));
                    }
                    idx += 1;
                }
            }
        }

        Ok(Version {
            epoch,
            release,
            pre,
            pre_rest,
            pre_num_explicit,
            post,
            dev,
            build,
            v_prefix,
            raw: raw.to_string(),
        })
    }

    /// The version exactly as written.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The epoch (PEP 440 `N!`), 0 when absent.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The numeric release segments as parsed (no zero padding applied).
    pub fn release(&self) -> &[u64] {
        &self.release
    }

    /// The `i`-th release segment, zero when absent.
    pub fn segment(&self, i: usize) -> u64 {
        self.release.get(i).copied().unwrap_or(0)
    }

    /// The pre-release tag and number, if any.
    pub fn pre(&self) -> Option<(&PreKind, u64)> {
        self.pre.as_ref().map(|(k, n)| (k, *n))
    }

    /// True when this version is a dev or pre-release.
    pub fn is_prerelease(&self) -> bool {
        self.pre.is_some() || self.dev.is_some()
    }

    /// Whether the spelling carried a leading `v` (Go convention).
    pub fn has_v_prefix(&self) -> bool {
        self.v_prefix
    }

    /// Canonical spelling with a leading `v` (Go style).
    pub fn to_v_prefixed(&self) -> String {
        let c = self.canonical();
        if c.starts_with('v') {
            c
        } else {
            format!("v{c}")
        }
    }

    /// Canonical spelling without a leading `v`.
    pub fn to_unprefixed(&self) -> String {
        let mut v = self.clone();
        v.v_prefix = false;
        v.canonical()
    }

    /// Canonical normalized spelling (independent of the raw input form,
    /// except that a `v` prefix is preserved).
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        if self.v_prefix {
            out.push('v');
        }
        if self.epoch != 0 {
            out.push_str(&format!("{}!", self.epoch));
        }
        let rel: Vec<String> = self.release.iter().map(|n| n.to_string()).collect();
        out.push_str(&rel.join("."));
        if let Some((kind, num)) = &self.pre {
            match kind {
                PreKind::Numeric => out.push_str(&format!("-{num}")),
                // Only print the pair number when it participates in
                // ordering — `alpha.beta`'s implicit 0 must not resurface
                // as `alpha.0.beta` (that spelling orders differently).
                k if self.pre_num_explicit || self.pre_rest.is_empty() => {
                    out.push_str(&format!("-{}.{}", k.tag(), num));
                }
                k => out.push_str(&format!("-{}", k.tag())),
            }
            for ident in &self.pre_rest {
                match ident {
                    PreIdent::Num(n) => out.push_str(&format!(".{n}")),
                    PreIdent::Alpha(a) => out.push_str(&format!(".{a}")),
                }
            }
        }
        if let Some(p) = self.post {
            out.push_str(&format!(".post{p}"));
        }
        if let Some(d) = self.dev {
            out.push_str(&format!(".dev{d}"));
        }
        if let Some(b) = &self.build {
            out.push_str(&format!("+{b}"));
        }
        out
    }

    /// Returns a new version with the patch-level segment incremented.
    pub fn bump_patch(&self) -> Version {
        let mut rel = self.release.clone();
        while rel.len() < 3 {
            rel.push(0);
        }
        *rel.last_mut().expect("non-empty release") += 1;
        Version::from_release(self.epoch, rel)
    }

    /// Returns a new version with the minor segment incremented and later
    /// segments reset to zero.
    pub fn bump_minor(&self) -> Version {
        let mut rel = self.release.clone();
        while rel.len() < 2 {
            rel.push(0);
        }
        rel[1] += 1;
        for s in rel.iter_mut().skip(2) {
            *s = 0;
        }
        Version::from_release(self.epoch, rel)
    }

    /// Returns a new version with the major segment incremented and later
    /// segments reset to zero.
    pub fn bump_major(&self) -> Version {
        let mut rel = self.release.clone();
        rel[0] += 1;
        for s in rel.iter_mut().skip(1) {
            *s = 0;
        }
        Version::from_release(self.epoch, rel)
    }

    fn from_release(epoch: u32, release: Vec<u64>) -> Version {
        let raw = release
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(".");
        Version {
            epoch,
            release,
            pre: None,
            pre_rest: Vec::new(),
            pre_num_explicit: false,
            post: None,
            dev: None,
            build: None,
            v_prefix: false,
            raw,
        }
    }

    /// The effective trailing identifiers of the pre-release: the pair's
    /// number (when spelled out, or when nothing follows it) then
    /// `pre_rest`. This is what SemVer §11 orders after the tag itself.
    fn pre_tail(&self, num: u64) -> impl Iterator<Item = PreTail<'_>> {
        let lead = (self.pre_num_explicit || self.pre_rest.is_empty()).then_some(num);
        lead.into_iter()
            .map(PreTail::Num)
            .chain(self.pre_rest.iter().map(|i| match i {
                PreIdent::Num(n) => PreTail::Num(*n),
                PreIdent::Alpha(a) => PreTail::Alpha(a.as_str()),
            }))
    }

    /// SemVer §11 ordering over the trailing identifier lists: pairwise
    /// identifier compare (numeric below alphanumeric, numerics compared
    /// numerically), then the shorter list sorts first.
    fn cmp_pre_tail(&self, na: u64, other: &Self, nb: u64) -> Ordering {
        let mut a = self.pre_tail(na);
        let mut b = other.pre_tail(nb);
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp_semver(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    fn phase_rank(&self) -> u8 {
        if self.pre.is_some() {
            1
        } else if self.dev.is_some() {
            0
        } else if self.post.is_some() {
            3
        } else {
            2
        }
    }

    fn cmp_release(a: &[u64], b: &[u64]) -> Ordering {
        let len = a.len().max(b.len());
        for i in 0..len {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            match x.cmp(&y) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn trimmed_release(&self) -> &[u64] {
        let mut end = self.release.len();
        while end > 1 && self.release[end - 1] == 0 {
            end -= 1;
        }
        &self.release[..end]
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch
            .cmp(&other.epoch)
            .then_with(|| Version::cmp_release(&self.release, &other.release))
            .then_with(|| self.phase_rank().cmp(&other.phase_rank()))
            .then_with(|| match (&self.pre, &other.pre) {
                (Some((ka, na)), Some((kb, nb))) => ka
                    .rank()
                    .cmp(&kb.rank())
                    .then_with(|| ka.tag().cmp(kb.tag()))
                    .then_with(|| self.cmp_pre_tail(*na, other, *nb)),
                _ => Ordering::Equal,
            })
            .then_with(|| self.post.unwrap_or(0).cmp(&other.post.unwrap_or(0)))
            .then_with(|| match (self.dev, other.dev) {
                (Some(a), Some(b)) => a.cmp(&b),
                _ => Ordering::Equal,
            })
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Version {}

impl Hash for Version {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.epoch.hash(state);
        self.trimmed_release().hash(state);
        self.phase_rank().hash(state);
        if let Some((k, n)) = &self.pre {
            k.rank().hash(state);
            k.tag().hash(state);
            // Hash the same effective identifier sequence the ordering
            // compares, so `Hash` stays consistent with `Eq`.
            for ident in self.pre_tail(*n) {
                match ident {
                    PreTail::Num(v) => (0u8, v).hash(state),
                    PreTail::Alpha(a) => {
                        1u8.hash(state);
                        a.hash(state);
                    }
                }
            }
        }
        self.post.unwrap_or(0).hash(state);
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl FromStr for Version {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Version::parse(s)
    }
}

#[derive(Debug)]
enum Token {
    /// Numeric run; the flag records whether a `-` immediately preceded it.
    Num(u64, bool),
    /// Alphabetic run; the flag records whether a `-` immediately preceded it.
    Alpha(String),
}

fn tokenize(s: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = s.chars().peekable();
    let mut hyphen = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while let Some(&d) = chars.peek() {
                if let Some(v) = d.to_digit(10) {
                    n = n.saturating_mul(10).saturating_add(v as u64);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token::Num(n, hyphen));
            hyphen = false;
        } else if c.is_ascii_alphabetic() {
            let mut t = String::new();
            while let Some(&a) = chars.peek() {
                if a.is_ascii_alphabetic() {
                    t.push(a);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token::Alpha(t));
            hyphen = false;
        } else {
            if c == '-' {
                hyphen = true;
            }
            chars.next();
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    #[test]
    fn basic_ordering() {
        assert!(v("1.0.0") < v("1.0.1"));
        assert!(v("1.9.0") < v("1.10.0"));
        assert!(v("2.0.0") > v("1.99.99"));
    }

    #[test]
    fn zero_padding_equality() {
        assert_eq!(v("1.0"), v("1.0.0"));
        assert_eq!(v("1"), v("1.0.0.0"));
        assert!(v("1.0") < v("1.0.1"));
    }

    #[test]
    fn v_prefix_is_cosmetic_for_comparison() {
        assert_eq!(v("v1.2.3"), v("1.2.3"));
        assert!(v("v1.2.3").has_v_prefix());
        assert!(!v("1.2.3").has_v_prefix());
    }

    #[test]
    fn prerelease_ordering() {
        assert!(v("1.0.0-alpha") < v("1.0.0-beta"));
        assert!(v("1.0.0-beta") < v("1.0.0-rc.1"));
        assert!(v("1.0.0-rc.1") < v("1.0.0"));
        assert!(v("1.0.0-rc.1") < v("1.0.0-rc.2"));
        assert!(v("1.0.0-alpha.1") < v("1.0.0-alpha.2"));
    }

    #[test]
    fn prerelease_numeric_identifiers_compare_numerically() {
        // SemVer §11: identifiers consisting only of digits compare
        // numerically — `rc.9 < rc.10`, at any identifier position.
        assert!(v("1.0.0-rc.9") < v("1.0.0-rc.10"));
        assert!(v("1.0.0-rc.1.9") < v("1.0.0-rc.1.10"));
        assert!(v("1.0.0-rc.1.9") != v("1.0.0-rc.1.10"));
        assert!(v("1.0.0-alpha.2.9") < v("1.0.0-alpha.2.10"));
    }

    #[test]
    fn prerelease_identifier_list_ordering() {
        // Numeric identifiers sort below alphanumeric ones; alphanumeric
        // identifiers compare lexically; a longer list with an equal
        // prefix sorts higher.
        assert!(v("1.0.0-alpha.1") < v("1.0.0-alpha.beta"));
        assert!(v("1.0.0-alpha.beta") < v("1.0.0-alpha.gamma"));
        assert!(v("1.0.0-rc.1") < v("1.0.0-rc.1.1"));
        assert!(v("1.0.0-rc.1.1") < v("1.0.0-rc.1.1.extra"));
        // The SemVer §11 example chain, within one tag band.
        assert!(v("1.0.0-alpha.1") < v("1.0.0-alpha.beta"));
        assert!(v("1.0.0-alpha.beta") < v("1.0.0-beta"));
        assert!(v("1.0.0-beta") < v("1.0.0-beta.2"));
        assert!(v("1.0.0-beta.2") < v("1.0.0-beta.11"));
        assert!(v("1.0.0-beta.11") < v("1.0.0-rc.1"));
        assert!(v("1.0.0-rc.1") < v("1.0.0"));
    }

    #[test]
    fn prerelease_identifier_list_roundtrips_canonical() {
        for s in ["1.0.0-rc.1.10", "1.0.0-alpha.beta", "2.0.0-rc.2.x.7"] {
            let parsed = v(s);
            let reparsed = v(&parsed.canonical());
            assert_eq!(parsed, reparsed, "{s} vs canonical {}", parsed.canonical());
        }
    }

    #[test]
    fn post_and_dev_still_bind_after_identifier_list() {
        let ver = v("1.0.0-rc.1.10.post2");
        assert!(ver > v("1.0.0-rc.1.10"));
        assert_eq!(v("1.0rc1.post2").canonical(), "1.0-rc.1.post2");
    }

    #[test]
    fn pep440_forms() {
        assert!(v("1.0a1") < v("1.0b1"));
        assert!(v("1.0b1") < v("1.0rc1"));
        assert!(v("1.0rc1") < v("1.0"));
        assert!(v("1.0") < v("1.0.post1"));
        assert!(v("1.0.dev1") < v("1.0a1"));
        assert!(v("1.0.dev1") < v("1.0"));
    }

    #[test]
    fn epoch_dominates() {
        assert!(v("1!1.0") > v("2.0"));
        assert_eq!(v("1!1.0").epoch(), 1);
    }

    #[test]
    fn build_metadata_ignored() {
        assert_eq!(v("1.0.0+abc"), v("1.0.0+xyz"));
        assert_eq!(v("1.0.0+abc"), v("1.0.0"));
    }

    #[test]
    fn numeric_prerelease() {
        assert!(v("1.0.0-1") < v("1.0.0"));
        assert!(v("1.0.0-1") < v("1.0.0-alpha"));
    }

    #[test]
    fn four_segment_release_is_release_not_pre() {
        assert!(!v("1.0.0.1").is_prerelease());
        assert!(v("1.0.0.1") > v("1.0.0"));
    }

    #[test]
    fn display_preserves_raw() {
        assert_eq!(v("v1.19.2").to_string(), "v1.19.2");
        assert_eq!(v(" 1.0 ").to_string(), "1.0");
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(v("1.0.0-rc.1").canonical(), "1.0.0-rc.1");
        assert_eq!(v("1.0rc1").canonical(), "1.0-rc.1");
        assert_eq!(v("v1.2").canonical(), "v1.2");
        assert_eq!(v("1.0.post2").canonical(), "1.0.post2");
    }

    #[test]
    fn prefix_conversions() {
        assert_eq!(v("1.2.3").to_v_prefixed(), "v1.2.3");
        assert_eq!(v("v1.2.3").to_unprefixed(), "1.2.3");
    }

    #[test]
    fn bumps() {
        assert_eq!(v("1.2.3").bump_patch(), v("1.2.4"));
        assert_eq!(v("1.2.3").bump_minor(), v("1.3.0"));
        assert_eq!(v("1.2.3").bump_major(), v("2.0.0"));
        assert_eq!(v("1.2").bump_patch(), v("1.2.1"));
    }

    #[test]
    fn parse_errors() {
        assert!(Version::parse("").is_err());
        assert!(Version::parse("abc").is_err());
        assert!(Version::parse("  ").is_err());
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(v("1.0"));
        assert!(set.contains(&v("1.0.0")));
        assert!(set.contains(&v("v1.0")));
        assert!(!set.contains(&v("1.0.1")));
    }

    #[test]
    fn segment_accessor_pads_with_zero() {
        let ver = v("1.2");
        assert_eq!(ver.segment(0), 1);
        assert_eq!(ver.segment(1), 2);
        assert_eq!(ver.segment(2), 0);
        assert_eq!(ver.segment(9), 0);
    }
}

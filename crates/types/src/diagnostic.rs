//! Structured diagnostics for malformed or partially-processed input.
//!
//! The paper's §V-B and Table IV catalog concrete parser defects in real
//! SBOM generators: crashes on exotic syntax, silent drops of unpinned or
//! unsupported declarations, misread fields, and failed registry
//! resolutions. This module gives the reproduction the opposite discipline:
//! every place a parser, emulator, resolver or service handler would
//! otherwise panic or silently lose information instead records a
//! [`Diagnostic`] — a typed, classified, locatable description of what went
//! wrong — so corruption turns into evidence rather than absence.
//!
//! The [`DiagClass`] taxonomy mirrors the bug categories of Table IV and
//! §V; DESIGN.md §13 documents the mapping.

use std::fmt;

use crate::ecosystem::Ecosystem;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected, documented lossiness (e.g. a profile intentionally
    /// dropping unpinned requirements).
    Info,
    /// Input was understood partially; some data was skipped.
    Warning,
    /// Input could not be understood at all at this site.
    Error,
}

impl Severity {
    /// Stable lowercase label used in CSV columns and JSON payloads.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The classified failure mode, mirroring the paper's Table IV / §V bug
/// categories (see DESIGN.md §13 for the full mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagClass {
    /// The file failed format-level parsing (broken JSON/TOML/XML/YAML).
    /// Table IV: the "crash" rows — real tools abort here; we classify.
    MalformedFile,
    /// The input ends mid-structure (unterminated string/table/element).
    TruncatedInput,
    /// Bytes that are not valid UTF-8 where text was required.
    EncodingError,
    /// Syntax the dialect parser does not model (Table IV rows 2/5:
    /// continuation lines, exotic operators).
    UnsupportedSyntax,
    /// URL / path / VCS requirement sources the profile skips (Table IV
    /// rows 3–4: `-e git+…`, local paths).
    ExoticSource,
    /// A version or requirement spec that did not parse in the declared
    /// flavor (§V-D misread fields).
    InvalidVersion,
    /// A package name that fails the ecosystem's naming rules (§V-E).
    InvalidName,
    /// A structurally-required field was absent (lockfile entry without a
    /// resolved version, pin without an identity).
    MissingField,
    /// An unpinned declaration dropped by a pinned-only version policy
    /// (§V-D: Trivy's `==`-keyed grammar).
    UnpinnedDropped,
    /// Registry resolution failed or returned nothing (§V-C: sbom-tool's
    /// unreliable resolution).
    RegistryFailure,
    /// An environment-marker expression that could not be evaluated
    /// (PEP 508 markers, §V-B).
    MarkerIssue,
    /// The file could not be read at all (missing, unreadable).
    IoError,
}

impl DiagClass {
    /// Every class, in rendering order (metrics and CSV columns iterate
    /// this; keep the order stable).
    pub const ALL: [DiagClass; 12] = [
        DiagClass::MalformedFile,
        DiagClass::TruncatedInput,
        DiagClass::EncodingError,
        DiagClass::UnsupportedSyntax,
        DiagClass::ExoticSource,
        DiagClass::InvalidVersion,
        DiagClass::InvalidName,
        DiagClass::MissingField,
        DiagClass::UnpinnedDropped,
        DiagClass::RegistryFailure,
        DiagClass::MarkerIssue,
        DiagClass::IoError,
    ];

    /// Stable kebab-case label used as the metrics `class` label and in
    /// CSV/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            DiagClass::MalformedFile => "malformed-file",
            DiagClass::TruncatedInput => "truncated-input",
            DiagClass::EncodingError => "encoding-error",
            DiagClass::UnsupportedSyntax => "unsupported-syntax",
            DiagClass::ExoticSource => "exotic-source",
            DiagClass::InvalidVersion => "invalid-version",
            DiagClass::InvalidName => "invalid-name",
            DiagClass::MissingField => "missing-field",
            DiagClass::UnpinnedDropped => "unpinned-dropped",
            DiagClass::RegistryFailure => "registry-failure",
            DiagClass::MarkerIssue => "marker-issue",
            DiagClass::IoError => "io-error",
        }
    }

    /// Index of this class within [`DiagClass::ALL`] (used by the metrics
    /// registry's fixed counter array).
    pub fn index(self) -> usize {
        match self {
            DiagClass::MalformedFile => 0,
            DiagClass::TruncatedInput => 1,
            DiagClass::EncodingError => 2,
            DiagClass::UnsupportedSyntax => 3,
            DiagClass::ExoticSource => 4,
            DiagClass::InvalidVersion => 5,
            DiagClass::InvalidName => 6,
            DiagClass::MissingField => 7,
            DiagClass::UnpinnedDropped => 8,
            DiagClass::RegistryFailure => 9,
            DiagClass::MarkerIssue => 10,
            DiagClass::IoError => 11,
        }
    }

    /// The default severity for the class.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagClass::MalformedFile
            | DiagClass::TruncatedInput
            | DiagClass::EncodingError
            | DiagClass::IoError => Severity::Error,
            DiagClass::UnsupportedSyntax
            | DiagClass::ExoticSource
            | DiagClass::InvalidVersion
            | DiagClass::InvalidName
            | DiagClass::MissingField
            | DiagClass::RegistryFailure
            | DiagClass::MarkerIssue => Severity::Warning,
            DiagClass::UnpinnedDropped => Severity::Info,
        }
    }
}

impl fmt::Display for DiagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured diagnostic: what went wrong, how bad it is, and where.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// Seriousness (ordered first so sorted diagnostics lead with errors).
    pub severity: Severity,
    /// The classified failure mode.
    pub class: DiagClass,
    /// Ecosystem being parsed, when known.
    pub ecosystem: Option<Ecosystem>,
    /// Repository-relative path of the offending file, when known.
    pub path: Option<String>,
    /// 1-based line number within the file, when known.
    pub line: Option<u32>,
    /// Byte offset within the file, when known.
    pub byte_offset: Option<u64>,
    /// Human-readable description (input excerpts are truncated by the
    /// constructors; never embed unbounded attacker-controlled text).
    pub message: String,
}

/// Longest input excerpt a diagnostic message will carry.
const EXCERPT_MAX: usize = 120;

/// Truncates `input` to a printable excerpt for diagnostic messages.
pub fn excerpt(input: &str) -> String {
    let trimmed = input.trim();
    if trimmed.len() <= EXCERPT_MAX {
        return trimmed.to_string();
    }
    let mut cut = EXCERPT_MAX;
    while !trimmed.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &trimmed[..cut])
}

impl Diagnostic {
    /// Creates a diagnostic with the class's default severity.
    pub fn new(class: DiagClass, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: class.default_severity(),
            class,
            ecosystem: None,
            path: None,
            line: None,
            byte_offset: None,
            message: message.into(),
        }
    }

    /// Builder-style severity override.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Builder-style ecosystem.
    pub fn with_ecosystem(mut self, eco: Ecosystem) -> Self {
        self.ecosystem = Some(eco);
        self
    }

    /// Builder-style file path.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Builder-style 1-based line number.
    pub fn with_line(mut self, line: u32) -> Self {
        self.line = Some(line);
        self
    }

    /// Builder-style byte offset.
    pub fn with_byte_offset(mut self, offset: u64) -> Self {
        self.byte_offset = Some(offset);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.class)?;
        if let Some(path) = &self.path {
            write!(f, " {path}")?;
            if let Some(line) = self.line {
                write!(f, ":{line}")?;
            }
        }
        if let Some(eco) = self.ecosystem {
            write!(f, " ({eco})")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_unique() {
        let labels: Vec<&str> = DiagClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for c in DiagClass::ALL {
            assert!(!c.label().is_empty());
            assert!(c
                .label()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '-'));
        }
    }

    #[test]
    fn index_matches_all_order() {
        for (i, c) in DiagClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c}");
        }
    }

    #[test]
    fn display_includes_location() {
        let d = Diagnostic::new(DiagClass::MalformedFile, "unexpected end of input")
            .with_ecosystem(Ecosystem::Python)
            .with_path("requirements.txt")
            .with_line(4);
        let text = d.to_string();
        assert!(text.contains("error[malformed-file]"), "{text}");
        assert!(text.contains("requirements.txt:4"), "{text}");
        assert!(text.contains("Python"), "{text}");
    }

    #[test]
    fn severity_ordering_leads_with_errors() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn excerpt_truncates_on_char_boundary() {
        let long = "ü".repeat(200);
        let e = excerpt(&long);
        assert!(e.len() <= EXCERPT_MAX + '…'.len_utf8());
        assert!(e.ends_with('…'));
        assert_eq!(excerpt("  short  "), "short");
    }

    #[test]
    fn default_severities() {
        assert_eq!(DiagClass::MalformedFile.default_severity(), Severity::Error);
        assert_eq!(
            DiagClass::UnpinnedDropped.default_severity(),
            Severity::Info
        );
        assert_eq!(
            DiagClass::RegistryFailure.default_severity(),
            Severity::Warning
        );
    }
}

//! Declared and resolved dependencies.
//!
//! A [`DeclaredDependency`] is what a metadata file *says* (possibly a range,
//! possibly dev-scoped, possibly sourced from a URL or VCS — §VI shows these
//! exotic sources are exactly where tools fail). A [`ResolvedPackage`] is a
//! concrete `(name, version)` that would actually be installed — the unit the
//! paper's ground truth (§V-H) and differential metrics (§III-B) operate on.

use std::fmt;

use crate::constraint::VersionReq;
use crate::ecosystem::Ecosystem;
use crate::name::PackageName;
use crate::version::Version;

/// The scope a dependency is declared under (§V-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepScope {
    /// Normal runtime/production dependency.
    Runtime,
    /// Development-only (test suites, linters, build tooling).
    Dev,
    /// Optional / feature-gated.
    Optional,
}

impl DepScope {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DepScope::Runtime => "runtime",
            DepScope::Dev => "dev",
            DepScope::Optional => "optional",
        }
    }
}

impl fmt::Display for DepScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Version-control systems a dependency can be sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcsKind {
    /// Git.
    Git,
    /// Mercurial.
    Hg,
    /// Subversion.
    Svn,
}

impl fmt::Display for VcsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VcsKind::Git => "git",
            VcsKind::Hg => "hg",
            VcsKind::Svn => "svn",
        })
    }
}

/// Where a declared dependency comes from.
///
/// Everything except [`DependencySource::Registry`] is an "exotic" source —
/// Table IV shows none of the studied tools extract them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DependencySource {
    /// The ecosystem's default package registry.
    Registry,
    /// A local filesystem path (`./path/to/local_pkg.whl`).
    Path(String),
    /// A direct URL (`https://.../remote_pkg.whl`).
    Url(String),
    /// A version-control reference (`pkg @ git+https://...@hash`).
    Vcs {
        /// The VCS kind.
        kind: VcsKind,
        /// Repository URL.
        url: String,
        /// Commit / tag / branch reference, if given.
        reference: Option<String>,
    },
    /// An include of another requirements file (`-r other.txt`).
    IncludeFile(String),
    /// A constraints file include (`-c constraints.txt`).
    ConstraintsFile(String),
}

impl DependencySource {
    /// True for the default registry source.
    pub fn is_registry(&self) -> bool {
        matches!(self, DependencySource::Registry)
    }
}

/// A dependency as declared in a metadata file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeclaredDependency {
    /// Package name (structure-aware).
    pub name: PackageName,
    /// The version requirement, when one parsed.
    pub req: Option<VersionReq>,
    /// The raw requirement text exactly as written (kept even when `req`
    /// failed to parse — GitHub DG reports this verbatim, §V-D).
    pub req_text: String,
    /// Declared scope.
    pub scope: DepScope,
    /// Where the dependency is sourced from.
    pub source: DependencySource,
    /// PEP 508 extras (`requests[security]`).
    pub extras: Vec<String>,
    /// PEP 508 environment marker text, if present.
    pub marker: Option<String>,
}

impl DeclaredDependency {
    /// Creates a registry-sourced runtime dependency.
    pub fn new(ecosystem: Ecosystem, name: impl Into<String>, req: Option<VersionReq>) -> Self {
        let req_text = req
            .as_ref()
            .map(|r| r.raw().to_string())
            .unwrap_or_default();
        DeclaredDependency {
            name: PackageName::new(ecosystem, name),
            req,
            req_text,
            scope: DepScope::Runtime,
            source: DependencySource::Registry,
            extras: Vec::new(),
            marker: None,
        }
    }

    /// Builder-style scope override.
    pub fn with_scope(mut self, scope: DepScope) -> Self {
        self.scope = scope;
        self
    }

    /// Builder-style source override.
    pub fn with_source(mut self, source: DependencySource) -> Self {
        self.source = source;
        self
    }

    /// Builder-style extras override.
    pub fn with_extras(mut self, extras: Vec<String>) -> Self {
        self.extras = extras;
        self
    }

    /// Builder-style marker override.
    pub fn with_marker(mut self, marker: impl Into<String>) -> Self {
        self.marker = Some(marker.into());
        self
    }

    /// The pinned version when the requirement is an exact pin.
    pub fn pinned_version(&self) -> Option<&Version> {
        self.req.as_ref().and_then(|r| r.pinned())
    }
}

impl fmt::Display for DeclaredDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.extras.is_empty() {
            write!(f, "[{}]", self.extras.join(","))?;
        }
        if !self.req_text.is_empty() {
            write!(f, " {}", self.req_text)?;
        }
        if self.scope != DepScope::Runtime {
            write!(f, " ({})", self.scope)?;
        }
        Ok(())
    }
}

/// A concrete package that would be installed: the unit of ground truth and
/// of differential comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResolvedPackage {
    /// Canonical package name.
    pub name: String,
    /// Concrete version.
    pub version: Version,
    /// Whether this package was pulled in transitively (§V-C).
    pub transitive: bool,
}

impl ResolvedPackage {
    /// Creates a direct (non-transitive) resolved package.
    pub fn direct(name: impl Into<String>, version: Version) -> Self {
        ResolvedPackage {
            name: name.into(),
            version,
            transitive: false,
        }
    }

    /// Creates a transitive resolved package.
    pub fn transitive(name: impl Into<String>, version: Version) -> Self {
        ResolvedPackage {
            name: name.into(),
            version,
            transitive: true,
        }
    }

    /// `(name, version)` key for set comparisons (Equation 1 in the paper).
    pub fn key(&self) -> (String, String) {
        (self.name.clone(), self.version.canonical())
    }
}

impl fmt::Display for ResolvedPackage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=={}", self.name, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintFlavor;

    #[test]
    fn declared_dependency_builder() {
        let req = VersionReq::parse(">=2.8.1", ConstraintFlavor::Pep440).unwrap();
        let d = DeclaredDependency::new(Ecosystem::Python, "requests", Some(req))
            .with_scope(DepScope::Dev)
            .with_extras(vec!["security".into()])
            .with_marker("python_version >= '3.8'");
        assert_eq!(d.scope, DepScope::Dev);
        assert_eq!(d.extras, vec!["security"]);
        assert!(d.marker.is_some());
        assert!(d.pinned_version().is_none());
    }

    #[test]
    fn pinned_version_extraction() {
        let req = VersionReq::parse("==1.19.2", ConstraintFlavor::Pep440).unwrap();
        let d = DeclaredDependency::new(Ecosystem::Python, "numpy", Some(req));
        assert_eq!(d.pinned_version().unwrap().to_string(), "1.19.2");
    }

    #[test]
    fn display_formats() {
        let req = VersionReq::parse(">=2.8.1", ConstraintFlavor::Pep440).unwrap();
        let d = DeclaredDependency::new(Ecosystem::Python, "requests", Some(req))
            .with_extras(vec!["security".into()]);
        let s = d.to_string();
        assert!(s.contains("requests"));
        assert!(s.contains("[security]"));
        assert!(s.contains(">=2.8.1"));
    }

    #[test]
    fn resolved_package_key() {
        let p = ResolvedPackage::direct("numpy", Version::parse("1.19.2").unwrap());
        assert_eq!(p.key(), ("numpy".to_string(), "1.19.2".to_string()));
        assert!(!p.transitive);
        let t = ResolvedPackage::transitive("urllib3", Version::new(2, 0, 1));
        assert!(t.transitive);
    }

    #[test]
    fn source_kinds() {
        assert!(DependencySource::Registry.is_registry());
        assert!(!DependencySource::Path("./x.whl".into()).is_registry());
        let vcs = DependencySource::Vcs {
            kind: VcsKind::Git,
            url: "https://github.com/a/b".into(),
            reference: Some("abc123".into()),
        };
        assert!(!vcs.is_registry());
    }
}

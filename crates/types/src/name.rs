//! Package-name handling and per-ecosystem normalization.
//!
//! §V-E of the paper shows SBOM tools disagree on naming conventions for
//! compound names (Maven `group:artifact`, CocoaPods subspecs, npm scopes).
//! [`PackageName`] stores the raw spelling plus the structural pieces so that
//! each tool emulator can render the name in its own convention while the
//! differential engine can also compare under a canonical form.

use std::fmt;

use crate::ecosystem::Ecosystem;

/// A package name together with its ecosystem and structural parts.
///
/// # Examples
///
/// ```
/// use sbomdiff_types::{Ecosystem, PackageName};
///
/// let n = PackageName::new(Ecosystem::Java, "com.google.guava:guava");
/// assert_eq!(n.namespace(), Some("com.google.guava"));
/// assert_eq!(n.base(), "guava");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageName {
    ecosystem: Ecosystem,
    raw: String,
    /// Group/scope/namespace component, when the ecosystem has one.
    namespace: Option<String>,
    /// Artifact/base name.
    base: String,
    /// CocoaPods subspec path (e.g. `Firebase/Auth` → `Auth`).
    subspec: Option<String>,
}

impl PackageName {
    /// Parses a raw name string in the ecosystem's native spelling.
    ///
    /// Recognized structures:
    /// * Java: `group:artifact` or `group.artifact` boundaries are kept as
    ///   written in `raw`; only `group:artifact` is split structurally.
    /// * JavaScript: `@scope/name`.
    /// * Swift/CocoaPods: `Pod/Subspec`.
    /// * Go: the module path's final element is the base.
    pub fn new(ecosystem: Ecosystem, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let (namespace, base, subspec) = match ecosystem {
            Ecosystem::Java => match raw.split_once(':') {
                Some((g, a)) => (Some(g.to_string()), a.to_string(), None),
                None => (None, raw.clone(), None),
            },
            Ecosystem::JavaScript => {
                if let Some(rest) = raw.strip_prefix('@') {
                    match rest.split_once('/') {
                        Some((scope, name)) => (Some(format!("@{scope}")), name.to_string(), None),
                        None => (None, raw.clone(), None),
                    }
                } else {
                    (None, raw.clone(), None)
                }
            }
            Ecosystem::Swift => match raw.split_once('/') {
                Some((pod, sub)) => (None, pod.to_string(), Some(sub.to_string())),
                None => (None, raw.clone(), None),
            },
            Ecosystem::Go => {
                let base = raw.rsplit('/').next().unwrap_or(&raw).to_string();
                let ns = if base.len() < raw.len() {
                    Some(raw[..raw.len() - base.len() - 1].to_string())
                } else {
                    None
                };
                (ns, base, None)
            }
            _ => (None, raw.clone(), None),
        };
        PackageName {
            ecosystem,
            raw,
            namespace,
            base,
            subspec,
        }
    }

    /// The ecosystem this name belongs to.
    pub fn ecosystem(&self) -> Ecosystem {
        self.ecosystem
    }

    /// The name exactly as written in the metadata.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The namespace / group / scope part, if structurally present.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The artifact / base part of the name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The CocoaPods subspec, if any.
    pub fn subspec(&self) -> Option<&str> {
        self.subspec.as_deref()
    }

    /// Canonical form used by the differential engine: normalization that a
    /// *correct* consumer would apply (PEP 503 for Python, lowercasing for
    /// case-insensitive ecosystems, raw otherwise).
    pub fn canonical(&self) -> String {
        normalize(self.ecosystem, &self.raw)
    }
}

impl fmt::Display for PackageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// Normalizes a raw package name the way the ecosystem's registry does.
///
/// * Python: PEP 503 — lowercase; runs of `-`, `_`, `.` collapse to `-`.
/// * PHP / .NET: lowercase (Packagist and NuGet are case-insensitive).
/// * Everything else: unchanged.
pub fn normalize(ecosystem: Ecosystem, raw: &str) -> String {
    normalized(ecosystem, raw).into_owned()
}

/// [`normalize`] without the unconditional allocation: names that are
/// already in canonical form (the common case on the registry-lookup hot
/// path, where generated corpora use canonical spellings) are returned
/// borrowed.
pub fn normalized(ecosystem: Ecosystem, raw: &str) -> std::borrow::Cow<'_, str> {
    use std::borrow::Cow;
    match ecosystem {
        Ecosystem::Python => {
            if is_pep503_normalized(raw) {
                return Cow::Borrowed(raw);
            }
            let mut out = String::with_capacity(raw.len());
            let mut prev_sep = false;
            for ch in raw.chars() {
                if ch == '-' || ch == '_' || ch == '.' {
                    if !prev_sep {
                        out.push('-');
                        prev_sep = true;
                    }
                } else {
                    out.push(ch.to_ascii_lowercase());
                    prev_sep = false;
                }
            }
            Cow::Owned(out)
        }
        e if e.case_insensitive_names() => {
            if raw.bytes().any(|b| b.is_ascii_uppercase()) {
                Cow::Owned(raw.to_ascii_lowercase())
            } else {
                Cow::Borrowed(raw)
            }
        }
        _ => Cow::Borrowed(raw),
    }
}

/// PEP 503 canonical form check: lowercase, separators already collapsed
/// to single `-`s (so [`normalized`] can skip the rebuild).
fn is_pep503_normalized(raw: &str) -> bool {
    let mut prev_sep = false;
    for b in raw.bytes() {
        match b {
            b'-' => {
                if prev_sep {
                    return false;
                }
                prev_sep = true;
            }
            b'_' | b'.' => return false,
            b if b.is_ascii_uppercase() => return false,
            _ => prev_sep = false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pep503_normalization() {
        assert_eq!(
            normalize(Ecosystem::Python, "Flask_SQLAlchemy"),
            "flask-sqlalchemy"
        );
        assert_eq!(
            normalize(Ecosystem::Python, "zope.interface"),
            "zope-interface"
        );
        assert_eq!(normalize(Ecosystem::Python, "a--b__c..d"), "a-b-c-d");
    }

    #[test]
    fn java_group_artifact_split() {
        let n = PackageName::new(Ecosystem::Java, "org.apache.commons:commons-lang3");
        assert_eq!(n.namespace(), Some("org.apache.commons"));
        assert_eq!(n.base(), "commons-lang3");
        assert!(n.subspec().is_none());
    }

    #[test]
    fn npm_scope_split() {
        let n = PackageName::new(Ecosystem::JavaScript, "@babel/core");
        assert_eq!(n.namespace(), Some("@babel"));
        assert_eq!(n.base(), "core");
        let plain = PackageName::new(Ecosystem::JavaScript, "lodash");
        assert_eq!(plain.namespace(), None);
    }

    #[test]
    fn cocoapods_subspec_split() {
        let n = PackageName::new(Ecosystem::Swift, "Firebase/Auth");
        assert_eq!(n.base(), "Firebase");
        assert_eq!(n.subspec(), Some("Auth"));
    }

    #[test]
    fn go_module_path_split() {
        let n = PackageName::new(Ecosystem::Go, "github.com/stretchr/testify");
        assert_eq!(n.base(), "testify");
        assert_eq!(n.namespace(), Some("github.com/stretchr"));
        let single = PackageName::new(Ecosystem::Go, "errors");
        assert_eq!(single.namespace(), None);
    }

    #[test]
    fn canonical_is_case_folded_for_nuget() {
        let n = PackageName::new(Ecosystem::DotNet, "Newtonsoft.Json");
        assert_eq!(n.canonical(), "newtonsoft.json");
    }

    #[test]
    fn rust_names_pass_through() {
        let n = PackageName::new(Ecosystem::Rust, "serde_json");
        assert_eq!(n.canonical(), "serde_json");
    }

    #[test]
    fn display_shows_raw() {
        let n = PackageName::new(Ecosystem::Java, "g:a");
        assert_eq!(n.to_string(), "g:a");
    }
}

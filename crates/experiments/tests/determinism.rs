//! Determinism regression test for the parallel execution engine: the same
//! experiment run at `--jobs 1` and `--jobs 4` with the same seed must
//! produce byte-identical CSV artifacts. Every work item derives its RNG
//! stream from `(master seed, ecosystem, index)` and results are reduced in
//! input order, so worker count and scheduling must never leak into the
//! outputs.

use std::collections::BTreeMap;
use std::path::PathBuf;

use sbomdiff_experiments::{experiments, Config, Context};

fn out_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sbomdiff-determinism-{}-{tag}", std::process::id()))
}

/// Runs fig1 + fig2 + table1 (all three consume the parallel
/// `(repository × tool)` SBOM matrix) plus the vuln divergence experiment
/// (which adds the advisory/enrichment path) and the quality scorecard
/// (which adds the checklist-scoring path), and returns every CSV
/// artifact.
fn run(jobs: usize, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let out = out_dir(tag);
    let _ = std::fs::remove_dir_all(&out);
    let config = Config {
        repos_per_language: 5,
        paper_weights: false,
        seed: 77,
        out_dir: out.to_string_lossy().into_owned(),
        jobs,
    };
    let ctx = Context::prepare(&config);
    experiments::fig1(&ctx);
    experiments::fig2(&ctx);
    experiments::table1(&ctx);
    experiments::vuln(&ctx);
    experiments::quality(&ctx);
    let mut artifacts = BTreeMap::new();
    for entry in std::fs::read_dir(&out).expect("output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        artifacts.insert(name, std::fs::read(entry.path()).expect("artifact"));
    }
    let _ = std::fs::remove_dir_all(&out);
    artifacts
}

#[test]
fn csv_artifacts_are_byte_identical_across_job_counts() {
    let sequential = run(1, "j1");
    let parallel = run(4, "j4");
    assert!(
        sequential.len() >= 10,
        "expected fig1 per-language CSVs plus summaries, got {:?}",
        sequential.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        sequential.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "artifact sets differ between job counts"
    );
    for (name, bytes) in &sequential {
        assert_eq!(
            bytes, &parallel[name],
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }
}

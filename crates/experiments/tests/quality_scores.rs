//! Integration test for the quality scorecard: on a small corpus the
//! best-practice generator must score strictly highest on the weighted
//! total in *every* language — the emulator profiles cannot populate
//! supplier or timestamp at all, so the gap is structural, not a property
//! of one lucky seed.

use std::path::PathBuf;

use sbomdiff_experiments::{experiments, Config, Context};

fn out_dir() -> PathBuf {
    std::env::temp_dir().join(format!("sbomdiff-quality-scores-{}", std::process::id()))
}

#[test]
fn best_practice_scores_strictly_highest_everywhere() {
    let out = out_dir();
    let _ = std::fs::remove_dir_all(&out);
    let config = Config {
        repos_per_language: 5,
        paper_weights: false,
        seed: 77,
        out_dir: out.to_string_lossy().into_owned(),
        jobs: 0,
    };
    let ctx = Context::prepare(&config);
    experiments::quality(&ctx);
    let csv = std::fs::read_to_string(out.join("quality_completeness.csv"))
        .expect("quality experiment wrote quality_completeness.csv");
    let _ = std::fs::remove_dir_all(&out);

    let mut lines = csv.lines();
    let header = lines.next().expect("header row");
    assert!(
        header.starts_with("language,profile,documents,components,"),
        "unexpected header {header:?}"
    );
    assert!(header.ends_with(",total"), "unexpected header {header:?}");

    // language -> (profile -> weighted total)
    let mut per_language: std::collections::BTreeMap<String, Vec<(String, f64)>> =
        std::collections::BTreeMap::new();
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        let total: f64 = cells
            .last()
            .expect("total column")
            .parse()
            .expect("total parses");
        per_language
            .entry(cells[0].to_string())
            .or_default()
            .push((cells[1].to_string(), total));
    }
    assert_eq!(per_language.len(), 9, "one block per corpus language");
    for (language, rows) in &per_language {
        let profiles: Vec<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            profiles,
            experiments::QUALITY_PROFILES.to_vec(),
            "{language}: profile rows in scoring order"
        );
        let best = rows
            .iter()
            .find(|(p, _)| p == "best-practice")
            .expect("best-practice row")
            .1;
        for (profile, total) in rows {
            if profile != "best-practice" {
                assert!(
                    best > *total,
                    "{language}: best-practice ({best}) must beat {profile} ({total})"
                );
            }
        }
    }
}

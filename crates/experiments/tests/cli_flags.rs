//! Smoke tests for the `experiments` binary's standard flags.

use std::process::Command;

#[test]
fn version_flag_prints_and_exits_zero() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("--version")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("experiments "), "{stdout}");
}

#[test]
fn help_flag_lists_commands() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    for needle in ["USAGE", "table4", "--jobs", "--campaign"] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }
}

#[test]
fn unknown_command_exits_nonzero() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
}

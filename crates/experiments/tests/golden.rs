//! Golden-file tests: pin the small-corpus `table2_support.csv` and
//! `fig1_summary.csv` artifacts against checked-in fixtures so behavioral
//! drift in the emulators, corpus generation, or the parallel engine is
//! caught as a diff, not discovered downstream.
//!
//! The fixtures live in `tests/golden/`. To regenerate after an intentional
//! behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sbomdiff-experiments --test golden
//! ```

use std::path::{Path, PathBuf};

use sbomdiff_experiments::{experiments, Config, Context};

/// The pinned configuration. Changing any of these values invalidates the
/// fixtures — regenerate them in the same commit.
fn golden_config(out_dir: String) -> Config {
    Config {
        repos_per_language: 5,
        paper_weights: false,
        seed: 77,
        out_dir,
        jobs: 0, // artifacts are jobs-independent; use the default pool
    }
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_against_golden(artifact: &str, produce: impl FnOnce(&Context)) {
    let out =
        std::env::temp_dir().join(format!("sbomdiff-golden-{}-{artifact}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let ctx = Context::prepare(&golden_config(out.to_string_lossy().into_owned()));
    produce(&ctx);
    let actual =
        std::fs::read_to_string(out.join(artifact)).expect("experiment wrote the artifact");
    let _ = std::fs::remove_dir_all(&out);

    let fixture = fixture_path(artifact);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&fixture, &actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test -p \
             sbomdiff-experiments --test golden",
            fixture.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{artifact} drifted from tests/golden/{artifact}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn table2_support_matches_golden() {
    check_against_golden("table2_support.csv", experiments::table2);
}

#[test]
fn fig1_summary_matches_golden() {
    check_against_golden("fig1_summary.csv", experiments::fig1);
}

#[test]
fn vuln_divergence_matches_golden() {
    check_against_golden("vuln_divergence.csv", experiments::vuln);
}

#[test]
fn quality_completeness_matches_golden() {
    check_against_golden("quality_completeness.csv", experiments::quality);
}

//! Experiment pipelines regenerating every table and figure of the paper.
//!
//! The crate is a library plus a thin `experiments` binary so integration
//! tests can drive the pipelines in-process — the determinism regression
//! test runs the same experiment at different `--jobs` values and asserts
//! byte-identical CSV artifacts, and the golden-file tests pin small-corpus
//! outputs against checked-in fixtures.

pub mod experiments;

pub use experiments::{
    ablate, benchscore, fig1, fig2, matching, quality, ranking, stability, stats, table1, table2,
    table3, table4, vulnimpact, Config, Context, PAPER_LANGUAGE_COUNTS, SBOM_TOOL_FAILURE_RATE,
};

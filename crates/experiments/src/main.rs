//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <fig1|fig2|table1|table2|table3|table4|stats|benchscore|all>
//!             [--repos N] [--seed S] [--out DIR] [--jobs N]
//!             [--campaign] [--paper-weights]
//! ```
//!
//! Outputs go to `--out` (default `results/`): one CSV per artifact plus a
//! textual rendition printed to stdout with the paper's reported values
//! alongside for comparison. `--jobs N` sets the worker count of the
//! deterministic parallel engine — artifacts are byte-identical for every
//! value — and a per-phase timing report is printed to stderr at the end.

use sbomdiff_experiments::{experiments, Config};

const USAGE: &str = "\
experiments - regenerate every table and figure of the paper

USAGE:
    experiments [COMMAND] [OPTIONS]
    experiments --help | --version

COMMANDS:
    fig1 fig2 table1 table2 table3 table4 stats benchscore
    diagnostics ablate ranking vulnimpact vuln quality stability matching
    all (default)

OPTIONS:
    --repos <N>        synthetic repositories per language
    --seed <S>         corpus/world seed
    --out <DIR>        artifact output directory (default results/)
    --jobs <N>         parallel worker count (0 = SBOMDIFF_JOBS or cores)
    --campaign         run the full mutation campaign for table4
    --paper-weights    use the paper's reported category weights

ENVIRONMENT:
    SBOMDIFF_FAULTS    <seed>:<index> installs the corresponding seeded
                       chaos fault plan (DESIGN.md \u{a7}15) for the whole run,
                       reproducing an sbomdiff-chaos finding against the
                       paper artifacts; fault counters print to stderr
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("experiments {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut command = String::from("all");
    let mut config = Config::default();
    let mut campaign = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repos" => {
                i += 1;
                config.repos_per_language = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.repos_per_language);
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.seed);
            }
            "--out" => {
                i += 1;
                if let Some(dir) = args.get(i) {
                    config.out_dir = dir.clone();
                }
            }
            "--jobs" => {
                i += 1;
                config.jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--campaign" => campaign = true,
            "--paper-weights" => config.paper_weights = true,
            other if !other.starts_with('-') => command = other.to_string(),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Fault plans are process-global; holding the guard for the whole run
    // keeps every artifact below subject to the same plan, and dropping it
    // at exit restores the clean path before the timing report.
    let _fault_guard = match install_faults() {
        Ok(guard) => guard,
        Err(message) => {
            eprintln!("invalid SBOMDIFF_FAULTS: {message} (expected <seed>:<index>)");
            std::process::exit(2);
        }
    };

    let ctx = experiments::Context::prepare(&config);
    match command.as_str() {
        "fig1" => experiments::fig1(&ctx),
        "fig2" => experiments::fig2(&ctx),
        "table1" => experiments::table1(&ctx),
        "table2" => experiments::table2(&ctx),
        "table3" => experiments::table3(&ctx),
        "table4" => experiments::table4(&ctx, campaign),
        "stats" => experiments::stats(&ctx),
        "benchscore" => experiments::benchscore(&ctx),
        "diagnostics" => experiments::diagnostics(&ctx),
        "ablate" => experiments::ablate(&ctx),
        "ranking" => experiments::ranking(&ctx),
        "vulnimpact" => experiments::vulnimpact(&ctx),
        "vuln" => experiments::vuln(&ctx),
        "quality" => experiments::quality(&ctx),
        "stability" => experiments::stability(&ctx),
        "matching" => experiments::matching(&ctx),
        "all" => {
            experiments::fig1(&ctx);
            experiments::fig2(&ctx);
            experiments::table1(&ctx);
            experiments::table2(&ctx);
            experiments::table3(&ctx);
            experiments::table4(&ctx, true);
            experiments::stats(&ctx);
            experiments::benchscore(&ctx);
            experiments::diagnostics(&ctx);
            experiments::ablate(&ctx);
            experiments::ranking(&ctx);
            experiments::vulnimpact(&ctx);
            experiments::vuln(&ctx);
            experiments::quality(&ctx);
            experiments::matching(&ctx);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!("commands: fig1 fig2 table1 table2 table3 table4 stats benchscore diagnostics ablate ranking vulnimpact vuln quality stability matching all");
            std::process::exit(2);
        }
    }
    ctx.report_timing();
    if _fault_guard.is_some() {
        let stats = sbomdiff_faultline::stats();
        eprintln!(
            "faults: {} injected = {} recovered + {} surfaced ({})",
            stats.injected,
            stats.recovered,
            stats.surfaced,
            if stats.balanced() {
                "balanced"
            } else {
                "DRIFTED"
            }
        );
    }
}

/// Installs the chaos plan named by `SBOMDIFF_FAULTS=<seed>:<index>`, when
/// set. Artifacts generated under a plan are degraded by construction —
/// this is the point: it reproduces a chaos finding against the full
/// experiment pipeline from just the two numbers in a failing soak line.
fn install_faults() -> Result<Option<sbomdiff_faultline::Guard>, String> {
    let Ok(spec) = std::env::var("SBOMDIFF_FAULTS") else {
        return Ok(None);
    };
    let spec = spec.trim();
    if spec.is_empty() || spec == "off" {
        return Ok(None);
    }
    let (seed, index) = spec.split_once(':').ok_or_else(|| spec.to_string())?;
    let seed: u64 = seed.trim().parse().map_err(|_| spec.to_string())?;
    let index: u64 = index.trim().parse().map_err(|_| spec.to_string())?;
    let plan = sbomdiff_faultline::FaultPlan::chaos(seed, index);
    eprintln!(
        "faults: installed chaos plan {seed}:{index} ({} rules)",
        plan.rules.len()
    );
    Ok(Some(sbomdiff_faultline::install(plan)))
}

//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <fig1|fig2|table1|table2|table3|table4|stats|benchscore|all>
//!             [--repos N] [--seed S] [--out DIR] [--jobs N]
//!             [--campaign] [--paper-weights]
//! ```
//!
//! Outputs go to `--out` (default `results/`): one CSV per artifact plus a
//! textual rendition printed to stdout with the paper's reported values
//! alongside for comparison. `--jobs N` sets the worker count of the
//! deterministic parallel engine — artifacts are byte-identical for every
//! value — and a per-phase timing report is printed to stderr at the end.

use sbomdiff_experiments::{experiments, Config};

const USAGE: &str = "\
experiments - regenerate every table and figure of the paper

USAGE:
    experiments [COMMAND] [OPTIONS]
    experiments --help | --version

COMMANDS:
    fig1 fig2 table1 table2 table3 table4 stats benchscore
    diagnostics ablate ranking vulnimpact stability all (default)

OPTIONS:
    --repos <N>        synthetic repositories per language
    --seed <S>         corpus/world seed
    --out <DIR>        artifact output directory (default results/)
    --jobs <N>         parallel worker count (0 = SBOMDIFF_JOBS or cores)
    --campaign         run the full mutation campaign for table4
    --paper-weights    use the paper's reported category weights
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("experiments {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut command = String::from("all");
    let mut config = Config::default();
    let mut campaign = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repos" => {
                i += 1;
                config.repos_per_language = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.repos_per_language);
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.seed);
            }
            "--out" => {
                i += 1;
                if let Some(dir) = args.get(i) {
                    config.out_dir = dir.clone();
                }
            }
            "--jobs" => {
                i += 1;
                config.jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--campaign" => campaign = true,
            "--paper-weights" => config.paper_weights = true,
            other if !other.starts_with('-') => command = other.to_string(),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ctx = experiments::Context::prepare(&config);
    match command.as_str() {
        "fig1" => experiments::fig1(&ctx),
        "fig2" => experiments::fig2(&ctx),
        "table1" => experiments::table1(&ctx),
        "table2" => experiments::table2(&ctx),
        "table3" => experiments::table3(&ctx),
        "table4" => experiments::table4(&ctx, campaign),
        "stats" => experiments::stats(&ctx),
        "benchscore" => experiments::benchscore(&ctx),
        "diagnostics" => experiments::diagnostics(&ctx),
        "ablate" => experiments::ablate(&ctx),
        "ranking" => experiments::ranking(&ctx),
        "vulnimpact" => experiments::vulnimpact(&ctx),
        "stability" => experiments::stability(&ctx),
        "all" => {
            experiments::fig1(&ctx);
            experiments::fig2(&ctx);
            experiments::table1(&ctx);
            experiments::table2(&ctx);
            experiments::table3(&ctx);
            experiments::table4(&ctx, true);
            experiments::stats(&ctx);
            experiments::benchscore(&ctx);
            experiments::diagnostics(&ctx);
            experiments::ablate(&ctx);
            experiments::ranking(&ctx);
            experiments::vulnimpact(&ctx);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!("commands: fig1 fig2 table1 table2 table3 table4 stats benchscore diagnostics ablate ranking vulnimpact stability all");
            std::process::exit(2);
        }
    }
    ctx.report_timing();
}

//! Implementations of the per-artifact experiment pipelines.
//!
//! Every pipeline that scans the corpus fans out over `(repository × tool)`
//! work items through [`sbomdiff_parallel::par_map`]; SBOMs, corpus
//! repositories and parsed manifests are all pure functions of the master
//! seed, so the CSV artifacts are byte-identical for every `--jobs` value.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use sbomdiff_attack as attack;
use sbomdiff_benchx as benchx;
use sbomdiff_corpus::{Corpus, CorpusConfig, CorpusStats};
use sbomdiff_diff::{
    diagnostic_totals, duplicate_rate, jaccard, key_set, Histogram, PrecisionRecall, TextTable,
};
use sbomdiff_generators::{
    BestPracticeGenerator, ParseCache, SbomGenerator, ScanContext, SupportMatrix, ToolEmulator,
    ToolId,
};
use sbomdiff_matching::{match_sboms, MatchConfig, MatchTier};
use sbomdiff_parallel::{par_map, Profiler};
use sbomdiff_registry::Registries;
use sbomdiff_resolver::{dry_run, Platform};
use sbomdiff_types::{DiagClass, Ecosystem, ResolvedPackage, Sbom, Version};

/// sbom-tool registry failure rate used across experiments (§V-C:
/// resolution "often fails").
pub const SBOM_TOOL_FAILURE_RATE: f64 = 0.18;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Repositories per language (the paper used 384–2367 per language;
    /// the default keeps full-suite runtime reasonable while preserving
    /// the population shapes).
    pub repos_per_language: usize,
    /// Scale language sizes by the paper's dataset mix (§III-B: 535
    /// Python, 819 Ruby, 384 PHP, 398 Java, 1019 Swift, 700 C#, 994 Rust,
    /// 2367 Go, 660 JS) instead of equal sizes. `repos_per_language`
    /// becomes the *average*.
    pub paper_weights: bool,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Worker threads for the `(repository × tool)` fan-out (`--jobs N`).
    /// Results are byte-identical for every value; `0` means the default
    /// (`SBOMDIFF_JOBS` or the machine's available parallelism).
    pub jobs: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            repos_per_language: 120,
            paper_weights: false,
            seed: 2024,
            out_dir: "results".into(),
            jobs: 0,
        }
    }
}

/// The paper's per-language repository counts (§III-B), total 7,876.
pub const PAPER_LANGUAGE_COUNTS: [(Ecosystem, usize); 9] = [
    (Ecosystem::Python, 535),
    (Ecosystem::Ruby, 819),
    (Ecosystem::Php, 384),
    (Ecosystem::Java, 398),
    (Ecosystem::Swift, 1019),
    (Ecosystem::DotNet, 700),
    (Ecosystem::Rust, 994),
    (Ecosystem::Go, 2367),
    (Ecosystem::JavaScript, 660),
];

/// Shared experiment state: registries, corpus, the shared metadata-parse
/// cache, an SBOM cache, and the per-phase profiler.
pub struct Context {
    /// Configuration in effect.
    pub config: Config,
    /// Synthetic registries.
    pub registries: Registries,
    /// Synthetic corpus.
    pub corpus: Corpus,
    jobs: usize,
    parse_cache: ParseCache,
    profiler: Profiler,
    sbom_cache: Mutex<BTreeMap<Ecosystem, Arc<Vec<[Sbom; 4]>>>>,
}

impl Context {
    /// Generates registries and corpus.
    pub fn prepare(config: &Config) -> Context {
        let jobs = sbomdiff_parallel::Jobs::new(config.jobs).get();
        eprintln!(
            "[setup] generating registries (seed {}) and corpus ({} repos/language, {jobs} job(s))...",
            config.seed, config.repos_per_language
        );
        let profiler = Profiler::new();
        let registries = profiler.phase("registries", 0, || Registries::generate(config.seed));
        let corpus = profiler.phase("corpus", 0, || {
            if config.paper_weights {
                // Scale each language by the paper's mix; the mean stays at
                // `repos_per_language`.
                let mean_paper = 7876.0 / 9.0;
                let mut map = std::collections::BTreeMap::new();
                for (eco, paper_n) in PAPER_LANGUAGE_COUNTS {
                    let n = ((paper_n as f64 / mean_paper) * config.repos_per_language as f64)
                        .round()
                        .max(1.0) as usize;
                    map.insert(
                        eco,
                        Corpus::build_language_with_jobs(
                            &registries,
                            &CorpusConfig {
                                repos_per_language: n,
                                seed: config.seed ^ 0xc0ffee,
                            },
                            eco,
                            jobs,
                        ),
                    );
                }
                Corpus::from_map(map)
            } else {
                Corpus::build_with_jobs(
                    &registries,
                    &CorpusConfig {
                        repos_per_language: config.repos_per_language,
                        seed: config.seed ^ 0xc0ffee,
                    },
                    jobs,
                )
            }
        });
        std::fs::create_dir_all(&config.out_dir).ok();
        Context {
            config: config.clone(),
            registries,
            corpus,
            jobs,
            parse_cache: ParseCache::new(),
            profiler,
            sbom_cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// SBOMs of all four studied tools for every repo of a language
    /// (cached). The first call per language fans out one work item per
    /// repository; each worker builds one [`ScanContext`] (one walk, one
    /// parse per file) and derives all four profiles' SBOMs from it, with
    /// parse results shared across repositories through the [`ParseCache`].
    /// Deterministic: each SBOM depends only on the repository content and
    /// tool profile (the flaky sbom-tool registry is seeded per
    /// `(repository, tool)`), so worker count and scheduling never change
    /// the result.
    pub fn sboms(&self, eco: Ecosystem) -> Arc<Vec<[Sbom; 4]>> {
        if let Some(cached) = self.sbom_cache.lock().expect("sbom cache").get(&eco) {
            return Arc::clone(cached);
        }
        let tools: [ToolEmulator<'_>; 4] = [
            ToolEmulator::trivy(),
            ToolEmulator::syft(),
            ToolEmulator::sbom_tool(&self.registries, SBOM_TOOL_FAILURE_RATE),
            ToolEmulator::github_dg(),
        ];
        let repos = self.corpus.language(eco);
        let cells = repos.len() as u64 * 4;
        let out: Arc<Vec<[Sbom; 4]>> = self.profiler.phase(&format!("sboms {eco}"), cells, || {
            Arc::new(par_map(self.jobs, repos, |_, repo| {
                let scan = ScanContext::new(repo, &self.parse_cache);
                [
                    tools[0].generate_with_scan(&scan),
                    tools[1].generate_with_scan(&scan),
                    tools[2].generate_with_scan(&scan),
                    tools[3].generate_with_scan(&scan),
                ]
            }))
        });
        self.sbom_cache
            .lock()
            .expect("sbom cache")
            .insert(eco, Arc::clone(&out));
        out
    }

    /// Times `f` as a named experiment phase (the report is printed by
    /// [`report_timing`](Context::report_timing)).
    pub fn phase<R>(&self, name: &str, items: u64, f: impl FnOnce() -> R) -> R {
        self.profiler.phase(name, items, f)
    }

    /// Prints the per-phase timing/counter report to stderr. CSV artifacts
    /// never contain wall-clock values, so outputs stay reproducible.
    pub fn report_timing(&self) {
        eprintln!("{}", self.profiler.report(self.jobs));
        eprintln!(
            "parse cache: {} entries, {} hits, {} misses",
            self.parse_cache.len(),
            self.parse_cache.hits(),
            self.parse_cache.misses()
        );
    }

    fn write(&self, file: &str, content: &str) {
        let path = format!("{}/{}", self.config.out_dir, file);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("[warn] could not write {path}: {e}");
        } else {
            eprintln!("[out] {path}");
        }
    }
}

const TOOL_ORDER: [ToolId; 4] = [
    ToolId::Trivy,
    ToolId::Syft,
    ToolId::SbomTool,
    ToolId::GithubDg,
];

/// Fig. 1: package counts across languages, x sorted by GitHub DG count.
pub fn fig1(ctx: &Context) {
    println!("\n================ Figure 1: package counts per repository ================");
    // The paper's per-panel frontrunners (§IV-A).
    let expected_winner: BTreeMap<Ecosystem, &str> = [
        (Ecosystem::Python, "GitHub DG"),
        (Ecosystem::Php, "GitHub DG"),
        (Ecosystem::Ruby, "GitHub DG"),
        (Ecosystem::Rust, "GitHub DG"),
        (Ecosystem::DotNet, "sbom-tool"),
        (Ecosystem::Go, "Trivy/sbom-tool"),
        (Ecosystem::Swift, "Trivy/sbom-tool"),
        (Ecosystem::JavaScript, "Syft"),
    ]
    .into();
    let mut summary = TextTable::new([
        "Language",
        "Trivy",
        "Syft",
        "sbom-tool",
        "GitHub DG",
        "winner",
        "paper says",
    ]);
    for eco in Ecosystem::ALL {
        let sboms = ctx.sboms(eco);
        let mut rows: Vec<[usize; 4]> = sboms
            .iter()
            .map(|s| [s[0].len(), s[1].len(), s[2].len(), s[3].len()])
            .collect();
        // x-axis: repository id sorted by GitHub DG count.
        rows.sort_by_key(|r| r[3]);
        let mut csv = String::from("rank,trivy,syft,sbom_tool,github_dg\n");
        for (i, r) in rows.iter().enumerate() {
            csv.push_str(&format!("{i},{},{},{},{}\n", r[0], r[1], r[2], r[3]));
        }
        ctx.write(
            &format!("fig1_{}.csv", eco.label().to_lowercase().replace('.', "")),
            &csv,
        );
        let totals: [usize; 4] = rows.iter().fold([0; 4], |mut acc, r| {
            for i in 0..4 {
                acc[i] += r[i];
            }
            acc
        });
        let winner_idx = (0..4).max_by_key(|&i| totals[i]).unwrap_or(0);
        summary.row([
            eco.label().to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            TOOL_ORDER[winner_idx].label().to_string(),
            expected_winner.get(&eco).unwrap_or(&"n/a").to_string(),
        ]);
    }
    println!("{summary}");
    println!("(totals are package counts summed over repositories; duplicates included, as the tools report them)");
    ctx.write("fig1_summary.csv", &summary.to_csv());
}

/// Fig. 2: Jaccard-similarity histograms for the six tool pairs.
pub fn fig2(ctx: &Context) {
    println!("\n================ Figure 2: Jaccard similarity distributions ================");
    let pairs: [(usize, usize, &str); 6] = [
        (3, 1, "GitHub vs Syft"),
        (3, 0, "GitHub vs Trivy"),
        (1, 0, "Syft vs Trivy"),
        (3, 2, "GitHub vs sbom-tool"),
        (0, 2, "Trivy vs sbom-tool"),
        (1, 2, "Syft vs sbom-tool"),
    ];
    let mut table = TextTable::new([
        "Pair",
        "mean J",
        "mean J (canonical)",
        "share < 0.5",
        "samples",
    ]);
    let mut means: Vec<(&str, f64)> = Vec::new();
    for (a, b, label) in pairs {
        let mut hist = Histogram::unit();
        let mut sum = 0.0;
        let mut canon_sum = 0.0;
        let mut n = 0usize;
        for eco in Ecosystem::ALL {
            for sboms in ctx.sboms(eco).iter() {
                let (sa, sb) = (key_set(&sboms[a]), key_set(&sboms[b]));
                if let Some(j) = jaccard(&sa, &sb) {
                    hist.add(j);
                    sum += j;
                    // The canonical metric forgives the purely cosmetic
                    // §V-E differences (name spellings, `v` prefixes); the
                    // gap between the two columns is the cosmetic share of
                    // the disagreement.
                    canon_sum +=
                        sbomdiff_diff::jaccard_canonical(&sboms[a], &sboms[b]).unwrap_or(0.0);
                    n += 1;
                }
            }
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        let canon_mean = if n == 0 { 0.0 } else { canon_sum / n as f64 };
        means.push((label, mean));
        table.row([
            label.to_string(),
            format!("{mean:.3}"),
            format!("{canon_mean:.3}"),
            format!("{:.1}%", hist.share_below(0.5) * 100.0),
            n.to_string(),
        ]);
        let file = format!("fig2_{}.csv", label.to_lowercase().replace([' ', '.'], "_"));
        ctx.write(&file, &hist.to_csv());
    }
    println!("{table}");
    let most_similar = means
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(l, _)| *l)
        .unwrap_or("-");
    println!("most similar pair: {most_similar}  (paper: GitHub vs Syft; majority of pairs substantially dissimilar)");
    ctx.write("fig2_summary.csv", &table.to_csv());
}

/// Table I: duplicate-package rates.
pub fn table1(ctx: &Context) {
    println!("\n================ Table I: rate of duplicate packages in SBOMs ================");
    // Paper's Table I, % (Syft, Trivy, GitHub DG, sbom-tool).
    let paper: BTreeMap<Ecosystem, [f64; 4]> = [
        (Ecosystem::Python, [14.05, 12.56, 13.54, 13.71]),
        (Ecosystem::Java, [12.76, 15.01, 19.93, 18.89]),
        (Ecosystem::JavaScript, [17.46, 17.34, 18.89, 19.42]),
        (Ecosystem::Go, [9.97, 6.69, 11.03, 6.58]),
        (Ecosystem::DotNet, [17.38, 12.43, 18.01, 20.94]),
        (Ecosystem::Php, [13.76, 11.77, 14.53, 23.76]),
        (Ecosystem::Ruby, [13.56, 9.1, 15.84, 12.39]),
        (Ecosystem::Rust, [13.19, 11.37, 19.18, 13.83]),
        (Ecosystem::Swift, [1.37, 2.28, 6.98, 3.39]),
    ]
    .into();
    let mut table = TextTable::new([
        "Language",
        "Syft",
        "(paper)",
        "Trivy",
        "(paper)",
        "GitHub DG",
        "(paper)",
        "sbom-tool",
        "(paper)",
    ]);
    for eco in Ecosystem::ALL {
        let sboms = ctx.sboms(eco);
        // Column order here is Table I's: Syft, Trivy, GitHub DG, sbom-tool.
        let rates = [
            duplicate_rate(sboms.iter().map(|s| &s[1])),
            duplicate_rate(sboms.iter().map(|s| &s[0])),
            duplicate_rate(sboms.iter().map(|s| &s[3])),
            duplicate_rate(sboms.iter().map(|s| &s[2])),
        ];
        let p = paper.get(&eco).copied().unwrap_or([0.0; 4]);
        table.row([
            eco.label().to_string(),
            format!("{:.2}%", rates[0] * 100.0),
            format!("{:.2}%", p[0]),
            format!("{:.2}%", rates[1] * 100.0),
            format!("{:.2}%", p[1]),
            format!("{:.2}%", rates[2] * 100.0),
            format!("{:.2}%", p[2]),
            format!("{:.2}%", rates[3] * 100.0),
            format!("{:.2}%", p[3]),
        ]);
    }
    println!("{table}");
    ctx.write("table1_duplicates.csv", &table.to_csv());
}

/// Table II: supported file types.
pub fn table2(ctx: &Context) {
    println!("\n================ Table II: supported file types ================");
    let matrices: Vec<(ToolId, SupportMatrix)> = TOOL_ORDER
        .iter()
        .map(|t| (*t, SupportMatrix::for_tool(*t)))
        .collect();
    let mut table = TextTable::new([
        "File type",
        "Trivy",
        "Syft",
        "sbom-tool",
        "GitHub DG",
        "matches paper",
    ]);
    for (kind, t, s, m, g) in sbomdiff_generators::support::TABLE_II {
        let cells: Vec<bool> = matrices.iter().map(|(_, mx)| mx.supports(kind)).collect();
        let ok = cells == vec![t, s, m, g];
        let check = |b: bool| if b { "✓" } else { "✗" };
        table.row([
            kind.label().to_string(),
            check(cells[0]).to_string(),
            check(cells[1]).to_string(),
            check(cells[2]).to_string(),
            check(cells[3]).to_string(),
            if ok { "yes" } else { "DIVERGES" }.to_string(),
        ]);
    }
    println!("{table}");
    for (tool, matrix) in &matrices {
        let claimed: Vec<&str> = matrix.claimed_only().map(|k| k.label()).collect();
        if !claimed.is_empty() {
            println!(
                "note: {} claims {} but extracts nothing from it (§V-A)",
                tool.label(),
                claimed.join(", ")
            );
        }
    }
    ctx.write("table2_support.csv", &table.to_csv());
}

/// Table III: accuracy on requirements.txt against the pip dry run.
pub fn table3(ctx: &Context) {
    println!("\n================ Table III: SBOM accuracy on requirements.txt ================");
    let repos = ctx.corpus.language(Ecosystem::Python);
    let sboms = ctx.sboms(Ecosystem::Python);
    let registry = ctx.registries.for_ecosystem(Ecosystem::Python);
    let platform = Platform::default();
    let mut totals = [PrecisionRecall::default(); 4];
    let per_repo = ctx.phase("table3 ground truth", repos.len() as u64, || {
        par_map(ctx.jobs(), repos, |idx, repo| {
            repo.text("requirements.txt")?;
            let truth: std::collections::BTreeSet<(String, String)> =
                dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                    .keys()
                    .collect();
            let mut scores = [PrecisionRecall::default(); 4];
            for (i, sbom) in sboms[idx].iter().enumerate() {
                // Reported pairs are compared verbatim against pip's
                // canonical output, as the paper's ground-truth comparison
                // does: spelling differences (`Flask_Login` vs
                // `flask-login`) count as misses, which is exactly the
                // §V-E naming hazard.
                let reported: std::collections::BTreeSet<(String, String)> = sbom
                    .components()
                    .iter()
                    .map(|c| {
                        let version = c
                            .version
                            .as_deref()
                            .map(|v| {
                                Version::parse(v)
                                    .map(|p| p.canonical())
                                    .unwrap_or_else(|_| v.to_string())
                            })
                            .unwrap_or_default();
                        (c.name.to_string(), version)
                    })
                    .collect();
                scores[i] = PrecisionRecall::score(&reported, &truth);
            }
            Some(scores)
        })
    });
    for scores in per_repo.into_iter().flatten() {
        for (total, score) in totals.iter_mut().zip(scores) {
            total.merge(score);
        }
    }
    let paper_p = [0.25, 0.25, 0.74, 0.13];
    let paper_r = [0.10, 0.10, 0.73, 0.08];
    let mut table = TextTable::new(["Metric", "Trivy", "Syft", "sbom-tool", "GitHub DG"]);
    table.row([
        "Precision".to_string(),
        format!("{:.2}", totals[0].precision()),
        format!("{:.2}", totals[1].precision()),
        format!("{:.2}", totals[2].precision()),
        format!("{:.2}", totals[3].precision()),
    ]);
    table.row([
        "Precision (paper)".to_string(),
        format!("{:.2}", paper_p[0]),
        format!("{:.2}", paper_p[1]),
        format!("{:.2}", paper_p[2]),
        format!("{:.2}", paper_p[3]),
    ]);
    table.row([
        "Recall".to_string(),
        format!("{:.2}", totals[0].recall()),
        format!("{:.2}", totals[1].recall()),
        format!("{:.2}", totals[2].recall()),
        format!("{:.2}", totals[3].recall()),
    ]);
    table.row([
        "Recall (paper)".to_string(),
        format!("{:.2}", paper_r[0]),
        format!("{:.2}", paper_r[1]),
        format!("{:.2}", paper_r[2]),
        format!("{:.2}", paper_r[3]),
    ]);
    println!("{table}");
    ctx.write("table3_accuracy.csv", &table.to_csv());
}

/// Table IV: attack samples against the tools (optionally with the
/// corpus-wide evasion campaign).
pub fn table4(ctx: &Context, campaign: bool) {
    println!("\n================ Table IV: requirements.txt attack samples ================");
    let outcomes = attack::evaluate::evaluate_catalog(&ctx.registries, true);
    let mut table = TextTable::new([
        "Sample",
        "Trivy",
        "Syft",
        "sbom-tool",
        "GitHub DG",
        "matches paper",
    ]);
    for o in &outcomes {
        table.row([
            o.display.to_string(),
            o.cells[0].to_string(),
            o.cells[1].to_string(),
            o.cells[2].to_string(),
            o.cells[3].to_string(),
            if o.matches_expectation {
                "yes"
            } else {
                "DIVERGES"
            }
            .to_string(),
        ]);
    }
    println!("{table}");
    println!("(first six rows are the paper's Table IV; '-' = not detected)");
    ctx.write("table4_attack.csv", &table.to_csv());

    if campaign {
        println!("\n---- §VI damage: corpus-wide evasion campaign (Python) ----");
        let repos = ctx.corpus.language(Ecosystem::Python);
        let reports = attack::campaign::run_all_campaigns(repos, &ctx.registries, ctx.config.seed);
        let mut ctable = TextTable::new([
            "Sample",
            "Trivy evade",
            "Syft evade",
            "sbom-tool evade",
            "GitHub evade",
        ]);
        for (id, r) in &reports {
            ctable.row([
                id.to_string(),
                format!("{:.0}%", r.evasion_rate(0) * 100.0),
                format!("{:.0}%", r.evasion_rate(1) * 100.0),
                format!("{:.0}%", r.evasion_rate(2) * 100.0),
                format!("{:.0}%", r.evasion_rate(3) * 100.0),
            ]);
        }
        println!("{ctable}");
        ctx.write("table4_campaign.csv", &ctable.to_csv());
    }
}

/// Diagnostic census: the classified parse/scan diagnostics (DESIGN.md
/// §13 taxonomy) rolled up per `(language, tool, class)`, plus a per-repo
/// CSV per language so individual noisy repositories can be located. The
/// paper's §V root causes are qualitative; these counters show where and
/// how often each failure class actually fires across the corpus.
pub fn diagnostics(ctx: &Context) {
    println!("\n================ Diagnostic census (taxonomy of DESIGN.md §13) ================");
    let mut header: Vec<String> = vec!["Language".into(), "Tool".into()];
    header.extend(DiagClass::ALL.iter().map(|c| c.label().to_string()));
    header.push("total".into());
    let mut table = TextTable::new(header);
    let mut grand = [0usize; 4];
    for eco in Ecosystem::ALL {
        let sboms = ctx.sboms(eco);
        // Per-repo columns: one row per repository, one diagnostic count
        // per tool (rows follow corpus order, which is seed-stable).
        let mut csv = String::from("repo,trivy,syft,sbom_tool,github_dg\n");
        for (i, s) in sboms.iter().enumerate() {
            csv.push_str(&format!(
                "{i},{},{},{},{}\n",
                s[0].diagnostics().len(),
                s[1].diagnostics().len(),
                s[2].diagnostics().len(),
                s[3].diagnostics().len(),
            ));
        }
        ctx.write(
            &format!(
                "diagnostics_{}.csv",
                eco.label().to_lowercase().replace('.', "")
            ),
            &csv,
        );
        for (t, tool) in TOOL_ORDER.iter().enumerate() {
            let totals = diagnostic_totals(sboms.iter().map(|s| &s[t]));
            let total: usize = totals.values().sum();
            grand[t] += total;
            let mut row = vec![eco.label().to_string(), tool.label().to_string()];
            row.extend(
                DiagClass::ALL
                    .iter()
                    .map(|c| totals.get(c).copied().unwrap_or(0).to_string()),
            );
            row.push(total.to_string());
            table.row(row);
        }
    }
    println!("{table}");
    for (t, tool) in TOOL_ORDER.iter().enumerate() {
        println!("{}: {} diagnostics corpus-wide", tool.label(), grand[t]);
    }
    ctx.write("diagnostics_summary.csv", &table.to_csv());
}

/// §V population statistics of the corpus vs the paper.
pub fn stats(ctx: &Context) {
    println!("\n================ §V corpus statistics (ours vs paper) ================");
    let mut table = TextTable::new(["Statistic", "ours", "paper"]);
    let py = CorpusStats::compute(Ecosystem::Python, ctx.corpus.language(Ecosystem::Python));
    let js = CorpusStats::compute(
        Ecosystem::JavaScript,
        ctx.corpus.language(Ecosystem::JavaScript),
    );
    let rust = CorpusStats::compute(Ecosystem::Rust, ctx.corpus.language(Ecosystem::Rust));
    table.row([
        "Python repos with raw metadata only".to_string(),
        format!("{:.0}%", py.raw_only_share * 100.0),
        "93%".to_string(),
    ]);
    table.row([
        "JavaScript repos with raw metadata only".to_string(),
        format!("{:.0}%", js.raw_only_share * 100.0),
        "47%".to_string(),
    ]);
    table.row([
        "Rust repos with raw metadata only".to_string(),
        format!("{:.0}%", rust.raw_only_share * 100.0),
        "56%".to_string(),
    ]);
    table.row([
        "requirements.txt deps with pinned versions".to_string(),
        format!("{:.0}%", py.pinned_requirements_share * 100.0),
        "46%".to_string(),
    ]);
    table.row([
        "package.json deps that are dev dependencies".to_string(),
        format!("{:.0}%", js.dev_dep_share * 100.0),
        "76%".to_string(),
    ]);
    table.row([
        "metadata files per Python repo".to_string(),
        format!("{:.1}", py.avg_metadata_files),
        "5.7".to_string(),
    ]);
    table.row([
        "metadata files per JavaScript repo".to_string(),
        format!("{:.1}", js.avg_metadata_files),
        "12.8".to_string(),
    ]);
    table.row([
        "Python repos using backslash continuations".to_string(),
        format!("{:.1}%", py.backslash_repo_share * 100.0),
        "1.8%".to_string(),
    ]);
    table.row([
        "Python repos using -r includes".to_string(),
        format!("{:.0}%", py.include_repo_share * 100.0),
        "~10% (>50 files)".to_string(),
    ]);

    // §V-C: share of installed Python dependencies that are transitive.
    let registry = ctx.registries.for_ecosystem(Ecosystem::Python);
    let platform = Platform::default();
    let py_repos = ctx.corpus.language(Ecosystem::Python);
    let counts = ctx.phase("stats dry runs", py_repos.len() as u64, || {
        par_map(ctx.jobs(), py_repos, |_, repo| {
            let report = dry_run(registry, &repo.text_files(), "requirements.txt", &platform);
            let transitive = report.installed.iter().filter(|p| p.transitive).count();
            (transitive, report.installed.len())
        })
    });
    let transitive: usize = counts.iter().map(|(t, _)| t).sum();
    let installed: usize = counts.iter().map(|(_, n)| n).sum();
    let share = if installed == 0 {
        0.0
    } else {
        transitive as f64 / installed as f64
    };
    table.row([
        "installed Python deps that are transitive".to_string(),
        format!("{:.0}%", share * 100.0),
        "74%".to_string(),
    ]);
    println!("{table}");
    ctx.write("stats_section_v.csv", &table.to_csv());
}

/// §VII benchmark scores for every generator.
pub fn benchscore(ctx: &Context) {
    println!("\n================ §VII benchmark scores ================");
    let cases = benchx::cases::all_cases();
    let mut table = TextTable::new([
        "Generator",
        "name recall",
        "version accuracy",
        "perfect cases",
    ]);
    let graded: Vec<(String, benchx::BenchmarkScore)> = vec![
        (
            "Trivy".into(),
            benchx::score_generator(&ToolEmulator::trivy(), &cases),
        ),
        (
            "Syft".into(),
            benchx::score_generator(&ToolEmulator::syft(), &cases),
        ),
        (
            "sbom-tool".into(),
            benchx::score_generator(&ToolEmulator::sbom_tool(&ctx.registries, 0.0), &cases),
        ),
        (
            "GitHub DG".into(),
            benchx::score_generator(&ToolEmulator::github_dg(), &cases),
        ),
        (
            "best-practice".into(),
            benchx::score_generator(&BestPracticeGenerator::new(&ctx.registries), &cases),
        ),
    ];
    for (label, score) in &graded {
        table.row([
            label.clone(),
            format!("{:.2}", score.name_recall()),
            format!("{:.2}", score.version_accuracy()),
            format!("{}/{}", score.perfect_cases(), score.cases.len()),
        ]);
    }
    println!("{table}");
    ctx.write("benchscore.csv", &table.to_csv());
}

/// Ablations: toggle each §V root-cause flag and measure how the metric it
/// drives moves. Quantifies what the paper identifies qualitatively.
pub fn ablate(ctx: &Context) {
    println!("\n================ Ablations: §V root causes quantified ================");
    use sbomdiff_generators::{GoVersionStyle, ToolProfile, VersionPolicy};
    let mut table = TextTable::new(["Ablation", "metric", "baseline", "ablated"]);

    // 1. §V-D: Trivy's silent range-dropping — grant it verbatim ranges and
    // watch its Python package counts and agreement with GitHub DG.
    {
        let repos = ctx.corpus.language(Ecosystem::Python);
        let baseline = ToolEmulator::trivy();
        let mut profile = ToolProfile::trivy();
        // Range support is two-layered: the requirements dialect must parse
        // the range (Trivy's ==-keyed grammar drops it first) and the
        // version policy must report it.
        profile.req_style = sbomdiff_metadata::python::ReqStyle::GithubDg;
        profile.version_policy = VersionPolicy::Verbatim;
        let ablated = ToolEmulator::with_profile(profile, None, 0.0);
        let github = ToolEmulator::github_dg();
        let cells = ctx.phase("ablation: ranges", repos.len() as u64, || {
            par_map(ctx.jobs(), repos, |_, repo| {
                let b = baseline.generate(repo);
                let a = ablated.generate(repo);
                let g = github.generate(repo);
                let js = match (
                    jaccard(&key_set(&b), &key_set(&g)),
                    jaccard(&key_set(&a), &key_set(&g)),
                ) {
                    (Some(jb), Some(ja)) => Some((jb, ja)),
                    _ => None,
                };
                (b.len(), a.len(), js)
            })
        });
        let (mut base_n, mut abl_n) = (0usize, 0usize);
        let (mut base_j, mut abl_j, mut nj) = (0.0f64, 0.0f64, 0usize);
        for (b, a, js) in cells {
            base_n += b;
            abl_n += a;
            if let Some((jb, ja)) = js {
                base_j += jb;
                abl_j += ja;
                nj += 1;
            }
        }
        table.row([
            "Trivy reports ranges instead of dropping".to_string(),
            "Python packages found".to_string(),
            base_n.to_string(),
            abl_n.to_string(),
        ]);
        table.row([
            "  (same ablation)".to_string(),
            "mean Jaccard vs GitHub DG".to_string(),
            format!("{:.3}", base_j / nj.max(1) as f64),
            format!("{:.3}", abl_j / nj.max(1) as f64),
        ]);
    }

    // 2. §V-F: Trivy excludes dev dependencies — include them and watch the
    // JavaScript counts.
    {
        let repos = ctx.corpus.language(Ecosystem::JavaScript);
        let baseline = ToolEmulator::trivy();
        let mut profile = ToolProfile::trivy();
        profile.include_dev = true;
        let ablated = ToolEmulator::with_profile(profile, None, 0.0);
        let cells = ctx.phase("ablation: dev deps", repos.len() as u64, || {
            par_map(ctx.jobs(), repos, |_, repo| {
                (baseline.generate(repo).len(), ablated.generate(repo).len())
            })
        });
        let base: usize = cells.iter().map(|(b, _)| b).sum();
        let abl: usize = cells.iter().map(|(_, a)| a).sum();
        table.row([
            "Trivy includes dev dependencies".to_string(),
            "JavaScript packages found".to_string(),
            base.to_string(),
            abl.to_string(),
        ]);
    }

    // 3. §V-E: Go `v` prefix — align Trivy with Syft's spelling and watch
    // their agreement on Go jump.
    {
        let repos = ctx.corpus.language(Ecosystem::Go);
        let syft = ToolEmulator::syft();
        let baseline = ToolEmulator::trivy();
        let mut profile = ToolProfile::trivy();
        profile.go_version = GoVersionStyle::KeepV;
        let ablated = ToolEmulator::with_profile(profile, None, 0.0);
        let cells = ctx.phase("ablation: v prefix", repos.len() as u64, || {
            par_map(ctx.jobs(), repos, |_, repo| {
                let s = syft.generate(repo);
                match (
                    jaccard(&key_set(&baseline.generate(repo)), &key_set(&s)),
                    jaccard(&key_set(&ablated.generate(repo)), &key_set(&s)),
                ) {
                    (Some(jb), Some(ja)) => Some((jb, ja)),
                    _ => None,
                }
            })
        });
        let (mut base_j, mut abl_j, mut n) = (0.0, 0.0, 0usize);
        for (jb, ja) in cells.into_iter().flatten() {
            base_j += jb;
            abl_j += ja;
            n += 1;
        }
        table.row([
            "Trivy keeps Go 'v' prefix (like Syft)".to_string(),
            "mean Jaccard vs Syft on Go".to_string(),
            format!("{:.3}", base_j / n.max(1) as f64),
            format!("{:.3}", abl_j / n.max(1) as f64),
        ]);
    }

    // 4. §V-C: sbom-tool's unreliable resolution — give it a perfect
    // registry and watch Table III recall.
    {
        let repos = ctx.corpus.language(Ecosystem::Python);
        let registry = ctx.registries.for_ecosystem(Ecosystem::Python);
        let platform = Platform::default();
        let score = |failure: f64| -> PrecisionRecall {
            let tool = ToolEmulator::sbom_tool(&ctx.registries, failure);
            let scores = ctx.phase("ablation: registry", repos.len() as u64, || {
                par_map(ctx.jobs(), repos, |_, repo| {
                    let truth: std::collections::BTreeSet<(String, String)> =
                        dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                            .keys()
                            .collect();
                    let reported: std::collections::BTreeSet<(String, String)> = tool
                        .generate(repo)
                        .components()
                        .iter()
                        .map(|c| {
                            (
                                c.name.to_string(),
                                c.version.as_deref().unwrap_or_default().to_string(),
                            )
                        })
                        .collect();
                    PrecisionRecall::score(&reported, &truth)
                })
            });
            let mut total = PrecisionRecall::default();
            for s in scores {
                total.merge(s);
            }
            total
        };
        let base = score(SBOM_TOOL_FAILURE_RATE);
        let abl = score(0.0);
        table.row([
            "sbom-tool with a reliable registry".to_string(),
            "requirements.txt recall".to_string(),
            format!("{:.2}", base.recall()),
            format!("{:.2}", abl.recall()),
        ]);
    }

    // 5. §V-G: merging duplicates — grant GitHub DG merging and watch the
    // Table I duplicate rate vanish.
    {
        let repos = ctx.corpus.language(Ecosystem::Java);
        let baseline = ToolEmulator::github_dg();
        let mut profile = ToolProfile::github_dg();
        profile.merge_duplicates = true;
        let ablated = ToolEmulator::with_profile(profile, None, 0.0);
        let (base_sboms, abl_sboms) = ctx.phase("ablation: merging", repos.len() as u64, || {
            let pairs = par_map(ctx.jobs(), repos, |_, repo| {
                (baseline.generate(repo), ablated.generate(repo))
            });
            pairs.into_iter().unzip::<_, _, Vec<Sbom>, Vec<Sbom>>()
        });
        table.row([
            "GitHub DG merges duplicate entries".to_string(),
            "Java duplicate rate".to_string(),
            format!("{:.2}%", duplicate_rate(&base_sboms) * 100.0),
            format!("{:.2}%", duplicate_rate(&abl_sboms) * 100.0),
        ]);
    }
    println!("{table}");
    ctx.write("ablations.csv", &table.to_csv());
}

/// The paper's future-work "ranking system": a composite scorecard over
/// benchmark recall, version accuracy, ground-truth accuracy and duplicate
/// hygiene, ranking the generators.
pub fn ranking(ctx: &Context) {
    println!("\n================ Generator ranking (paper §X future work) ================");
    let cases = benchx::cases::all_cases();
    let platform = Platform::default();
    let registry = ctx.registries.for_ecosystem(Ecosystem::Python);
    let py_repos = ctx.corpus.language(Ecosystem::Python);

    struct Entry {
        label: String,
        bench_recall: f64,
        bench_versions: f64,
        gt_f1: f64,
        dup_hygiene: f64,
    }
    let mut entries: Vec<Entry> = Vec::new();
    let generators: Vec<Box<dyn SbomGenerator + '_>> = vec![
        Box::new(ToolEmulator::trivy()),
        Box::new(ToolEmulator::syft()),
        Box::new(ToolEmulator::sbom_tool(
            &ctx.registries,
            SBOM_TOOL_FAILURE_RATE,
        )),
        Box::new(ToolEmulator::github_dg()),
        Box::new(BestPracticeGenerator::new(&ctx.registries)),
    ];
    let sample = &py_repos[..py_repos.len().min(40)];
    for g in &generators {
        let bench = benchx::score_generator(g.as_ref(), &cases);
        let scored = ctx.phase(
            &format!("ranking {}", g.id().label()),
            sample.len() as u64,
            || {
                par_map(ctx.jobs(), sample, |_, repo| {
                    let truth: std::collections::BTreeSet<(String, String)> =
                        dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                            .keys()
                            .collect();
                    let sbom = g.generate(repo);
                    let reported: std::collections::BTreeSet<(String, String)> = sbom
                        .components()
                        .iter()
                        .map(|c| {
                            (
                                sbomdiff_types::name::normalize(Ecosystem::Python, &c.name),
                                c.version
                                    .as_deref()
                                    .map(|v| {
                                        Version::parse(v)
                                            .map(|p| p.canonical())
                                            .unwrap_or_else(|_| v.to_string())
                                    })
                                    .unwrap_or_default(),
                            )
                        })
                        .collect();
                    (PrecisionRecall::score(&reported, &truth), sbom)
                })
            },
        );
        let mut gt = PrecisionRecall::default();
        let mut sboms = Vec::new();
        for (score, sbom) in scored {
            gt.merge(score);
            sboms.push(sbom);
        }
        entries.push(Entry {
            label: g.id().label().to_string(),
            bench_recall: bench.name_recall(),
            bench_versions: bench.version_accuracy(),
            gt_f1: gt.f1(),
            dup_hygiene: 1.0 - duplicate_rate(&sboms),
        });
    }
    let composite = |e: &Entry| {
        0.35 * e.bench_recall + 0.2 * e.bench_versions + 0.35 * e.gt_f1 + 0.1 * e.dup_hygiene
    };
    entries.sort_by(|a, b| composite(b).total_cmp(&composite(a)));
    let mut table = TextTable::new([
        "Rank",
        "Generator",
        "bench recall",
        "version acc",
        "ground-truth F1",
        "dup hygiene",
        "composite",
    ]);
    for (i, e) in entries.iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            e.label.clone(),
            format!("{:.2}", e.bench_recall),
            format!("{:.2}", e.bench_versions),
            format!("{:.2}", e.gt_f1),
            format!("{:.2}", e.dup_hygiene),
            format!("{:.3}", composite(e)),
        ]);
    }
    println!("{table}");
    println!("(composite = 0.35*bench recall + 0.2*version accuracy + 0.35*ground-truth F1 + 0.1*duplicate hygiene)");
    ctx.write("ranking.csv", &table.to_csv());
}

/// Downstream vulnerability impact: what each tool's SBOM misses and
/// falsely raises against a synthetic advisory database — the paper's §I
/// motivation, quantified.
pub fn vulnimpact(ctx: &Context) {
    println!(
        "\n================ Vulnerability impact of SBOM errors (§I motivation) ================"
    );
    let db = sbomdiff_vuln::AdvisoryDb::generate(&ctx.registries, ctx.config.seed, 0.25);
    println!("synthetic advisory database: {} advisories", db.len());
    let registry = ctx.registries.for_ecosystem(Ecosystem::Python);
    let platform = Platform::default();
    let repos = ctx.corpus.language(Ecosystem::Python);
    let sboms = ctx.sboms(Ecosystem::Python);
    let mut table = TextTable::new([
        "Tool",
        "real vulns",
        "detected",
        "missed",
        "false alarms",
        "miss rate",
        "false-alarm rate",
    ]);
    // Per-repository findings are summed (the same advisory hitting two
    // repositories is two findings a security team must triage).
    let mut counts = [[0usize; 4]; 4]; // [tool][actual, detected, missed, fa]
    let per_repo = ctx.phase("vuln assessments", repos.len() as u64, || {
        par_map(ctx.jobs(), repos, |idx, repo| {
            let truth = dry_run(registry, &repo.text_files(), "requirements.txt", &platform);
            let mut repo_counts = [[0usize; 4]; 4];
            for (i, sbom) in sboms[idx].iter().enumerate() {
                let r = sbomdiff_vuln::assess(&db, sbom, &truth.installed);
                repo_counts[i] = [
                    r.actual.len(),
                    r.detected.len(),
                    r.missed.len(),
                    r.false_alarms.len(),
                ];
            }
            repo_counts
        })
    });
    for repo_counts in per_repo {
        for (tool, cells) in counts.iter_mut().zip(repo_counts) {
            for (acc, n) in tool.iter_mut().zip(cells) {
                *acc += n;
            }
        }
    }
    for (i, tool) in TOOL_ORDER.iter().enumerate() {
        let [actual, detected, missed, fa] = counts[i];
        let miss_rate = if actual == 0 {
            0.0
        } else {
            missed as f64 / actual as f64
        };
        let raised = detected + fa;
        let fa_rate = if raised == 0 {
            0.0
        } else {
            fa as f64 / raised as f64
        };
        table.row([
            tool.label().to_string(),
            actual.to_string(),
            detected.to_string(),
            missed.to_string(),
            fa.to_string(),
            format!("{:.0}%", miss_rate * 100.0),
            format!("{:.0}%", fa_rate * 100.0),
        ]);
    }
    println!("{table}");
    println!("(SBOM entries without a parseable concrete version cannot match advisories,");
    println!(" so §V-D's dropped and verbatim-range versions surface here as missed CVEs)");
    ctx.write("vulnimpact.csv", &table.to_csv());
}

/// Profile labels of the quality scorecard, in scoring order: the four
/// studied tools (matching [`TOOL_ORDER`]) plus the best-practice design.
pub const QUALITY_PROFILES: [&str; 5] = ["trivy", "syft", "sbom-tool", "github-dg", "best-practice"];

/// SBOM quality/completeness scorecard (ROADMAP item 5): every document of
/// every emulator profile plus the best-practice generator is scored
/// against the NTIA-minimum field checklist ([`sbomdiff_quality`]), and
/// the per-check means roll up per `(language, profile)` into
/// `quality_completeness.csv`. Metadata-based emulators cannot populate
/// supplier or timestamp at all and frequently miss concrete versions, so
/// the best-practice profile scores strictly highest on the weighted total
/// — the property the quality integration test pins.
pub fn quality(ctx: &Context) {
    use sbomdiff_quality::{evaluate, QualityCheck};
    println!(
        "\n================ SBOM quality/completeness (NTIA-minimum checklist) ================"
    );
    let best = BestPracticeGenerator::new(&ctx.registries);
    let check_cols = QualityCheck::ALL
        .map(|c| c.label().replace('-', "_"))
        .join(",");
    let mut csv = format!("language,profile,documents,components,{check_cols},total\n");
    let mut table = TextTable::new([
        "Language",
        "Profile",
        "supplier",
        "version",
        "unique-id",
        "timestamp",
        "total",
    ]);
    // [check 0..7, weighted total] per profile, summed over languages.
    let mut grand = [[0.0f64; 8]; 5];
    let mut grand_n = 0usize;
    for eco in Ecosystem::ALL {
        let repos = ctx.corpus.language(eco);
        let sboms = ctx.sboms(eco);
        // Per repository: every profile's per-check scores + weighted
        // total, plus its component count. One work item per repo keeps
        // the fan-out deterministic for any worker count.
        let rows = ctx.phase(
            &format!("quality {eco}"),
            repos.len() as u64 * QUALITY_PROFILES.len() as u64,
            || {
                par_map(ctx.jobs(), repos, |idx, repo| {
                    let mut cells = [[0.0f64; 8]; 5];
                    let mut comps = [0usize; 5];
                    for (i, cell) in cells.iter_mut().enumerate() {
                        let report = if i < 4 {
                            evaluate(&sboms[idx][i])
                        } else {
                            evaluate(&best.generate(repo))
                        };
                        for (j, check) in QualityCheck::ALL.iter().enumerate() {
                            cell[j] = report.check(*check).score();
                        }
                        cell[7] = report.score();
                        comps[i] = report.components as usize;
                    }
                    (cells, comps)
                })
            },
        );
        let n = rows.len().max(1) as f64;
        grand_n += rows.len();
        for (p, profile) in QUALITY_PROFILES.iter().enumerate() {
            let mut means = [0.0f64; 8];
            let mut comps = 0usize;
            for (cells, c) in &rows {
                for (acc, v) in means.iter_mut().zip(cells[p]) {
                    *acc += v;
                }
                comps += c[p];
            }
            for m in &mut means {
                *m /= n;
            }
            for (acc, m) in grand[p].iter_mut().zip(means) {
                *acc += m * rows.len() as f64;
            }
            let mean_cols: Vec<String> = means.iter().map(|m| format!("{m:.2}")).collect();
            csv.push_str(&format!(
                "{},{profile},{},{comps},{}\n",
                eco.label(),
                rows.len(),
                mean_cols.join(",")
            ));
            table.row([
                eco.label().to_string(),
                profile.to_string(),
                format!("{:.1}", means[0]),
                format!("{:.1}", means[2]),
                format!("{:.1}", means[3]),
                format!("{:.1}", means[6]),
                format!("{:.1}", means[7]),
            ]);
        }
    }
    println!("{table}");
    let n = grand_n.max(1) as f64;
    for row in &mut grand {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    let best_total = grand[4][7];
    let runner_up = grand[..4].iter().map(|r| r[7]).fold(f64::MIN, f64::max);
    println!(
        "corpus-wide weighted totals: {}",
        QUALITY_PROFILES
            .iter()
            .zip(&grand)
            .map(|(p, r)| format!("{p} {:.1}", r[7]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "best-practice strictly highest: {} ({best_total:.1} vs runner-up {runner_up:.1})",
        if best_total > runner_up { "yes" } else { "NO" }
    );
    println!("(per-component checks score passed/total×100 per document; supplier and");
    println!(" timestamp are the NTIA fields metadata-based generators cannot populate)");
    ctx.write("quality_completeness.csv", &csv);
}

/// Jaccard over advisory-id sets; two empty sets agree perfectly.
fn set_jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Generator divergence in vulnerability space (Benedetti et al., arXiv
/// 2409.06390): per language × tool profile, the advisory set an
/// SBOM-driven scan raises is diffed against ground truth (a best-practice
/// SBOM's install set) and against the other profiles' sets. Advisory
/// lookups route through the [`sbomdiff_vuln::EnrichCache`], the same path
/// batched `/v1/impact` uses.
pub fn vuln(ctx: &Context) {
    println!("\n================ Generator divergence in vulnerability space ================");
    let db = sbomdiff_vuln::AdvisoryDb::generate(&ctx.registries, ctx.config.seed, 0.25);
    println!(
        "synthetic advisory universe: {} advisories (OSV-shaped ranges)",
        db.len()
    );
    let cache = sbomdiff_vuln::EnrichCache::new();
    let best = BestPracticeGenerator::new(&ctx.registries);
    let mut table = TextTable::new([
        "Language",
        "Tool",
        "repos",
        "actual",
        "detected",
        "missed",
        "false alarms",
        "miss rate",
        "fa rate",
        "J(truth)",
        "J(Trivy)",
        "J(Syft)",
        "J(sbom-tool)",
        "J(GitHub DG)",
    ]);
    for eco in Ecosystem::ALL {
        let repos = ctx.corpus.language(eco);
        let sboms = ctx.sboms(eco);
        // Per repo: per-tool [actual, detected, missed, fa] counts, the
        // per-tool Jaccard vs truth, and the 4×4 pairwise raised-set
        // Jaccard matrix.
        let rows = ctx.phase(
            &format!("vuln divergence {eco}"),
            repos.len() as u64,
            || {
                par_map(ctx.jobs(), repos, |idx, repo| {
                    let truth: Vec<ResolvedPackage> = best
                        .generate(repo)
                        .components()
                        .iter()
                        .filter_map(|c| {
                            let version = Version::parse(c.version.as_deref()?).ok()?;
                            Some(ResolvedPackage::direct(c.name.clone(), version))
                        })
                        .collect();
                    let mut counts = [[0usize; 4]; 4];
                    let mut jaccard_truth = [0.0f64; 4];
                    let mut raised: [BTreeSet<String>; 4] = Default::default();
                    for (i, sbom) in sboms[idx].iter().enumerate() {
                        // Experiments run fault-free, so the cached path cannot
                        // surface an injected error; the fallback keeps a
                        // SBOMDIFF_FAULTS run alive on the uncached path.
                        let r = sbomdiff_vuln::assess_cached(&cache, &db, eco, sbom, &truth)
                            .unwrap_or_else(|_| sbomdiff_vuln::assess_in(&db, eco, sbom, &truth));
                        counts[i] = [
                            r.actual.len(),
                            r.detected.len(),
                            r.missed.len(),
                            r.false_alarms.len(),
                        ];
                        let mut set = r.detected.clone();
                        set.extend(r.false_alarms.iter().cloned());
                        jaccard_truth[i] = set_jaccard(&set, &r.actual);
                        raised[i] = set;
                    }
                    let mut pairwise = [[0.0f64; 4]; 4];
                    for i in 0..4 {
                        for j in 0..4 {
                            pairwise[i][j] = set_jaccard(&raised[i], &raised[j]);
                        }
                    }
                    (counts, jaccard_truth, pairwise)
                })
            },
        );
        let n = rows.len().max(1) as f64;
        let mut totals = [[0usize; 4]; 4];
        let mut jt_sums = [0.0f64; 4];
        let mut pw_sums = [[0.0f64; 4]; 4];
        for (counts, jaccard_truth, pairwise) in &rows {
            for i in 0..4 {
                for (acc, v) in totals[i].iter_mut().zip(counts[i]) {
                    *acc += v;
                }
                jt_sums[i] += jaccard_truth[i];
                for j in 0..4 {
                    pw_sums[i][j] += pairwise[i][j];
                }
            }
        }
        for (i, tool) in TOOL_ORDER.iter().enumerate() {
            let [actual, detected, missed, fa] = totals[i];
            let miss_rate = if actual == 0 {
                0.0
            } else {
                missed as f64 / actual as f64
            };
            let raised_total = detected + fa;
            let fa_rate = if raised_total == 0 {
                0.0
            } else {
                fa as f64 / raised_total as f64
            };
            let mut row = vec![
                eco.label().to_string(),
                tool.label().to_string(),
                rows.len().to_string(),
                actual.to_string(),
                detected.to_string(),
                missed.to_string(),
                fa.to_string(),
                format!("{:.4}", miss_rate),
                format!("{:.4}", fa_rate),
                format!("{:.4}", jt_sums[i] / n),
            ];
            for sum in &pw_sums[i] {
                row.push(format!("{:.4}", sum / n));
            }
            table.row(row);
        }
    }
    println!("{table}");
    println!("(raised = detected + false alarms; J columns are mean per-repo Jaccard of");
    println!(" raised advisory sets — diagonal 1, off-diagonal the profile divergence)");
    ctx.write("vuln_divergence.csv", &table.to_csv());
    let stats = cache.stats();
    eprintln!(
        "enrich cache: {} entries, {} hits, {} misses, {} expired",
        cache.len(),
        stats.hits,
        stats.misses,
        stats.expired
    );
}

/// Seed-stability sweep: re-derives the headline findings across several
/// seeds to show they are properties of the modeled behaviors, not of one
/// lucky corpus.
pub fn stability(ctx: &Context) {
    println!("\n================ Seed stability of the headline findings ================");
    let seeds: Vec<u64> = (0..5)
        .map(|i| ctx.config.seed.wrapping_add(i * 101))
        .collect();
    let mut table = TextTable::new([
        "Seed",
        "fig1 winners",
        "tableIII ordering",
        "tableIV cells",
        "fig2 mass<0.5",
    ]);
    for seed in seeds {
        let registries = Registries::generate(seed);
        let corpus = Corpus::build_with_jobs(
            &registries,
            &CorpusConfig {
                repos_per_language: 60,
                seed: seed ^ 0xc0ffee,
            },
            ctx.jobs(),
        );
        let tools = sbomdiff_generators::studied_tools(&registries, SBOM_TOOL_FAILURE_RATE);

        // Fig. 1 winners (eight languages the paper names).
        let totals = |eco: Ecosystem| -> [usize; 4] {
            let per_repo = par_map(ctx.jobs(), corpus.language(eco), |_, repo| {
                let mut t = [0usize; 4];
                for (i, tool) in tools.iter().enumerate() {
                    t[i] = tool.generate(repo).len();
                }
                t
            });
            let mut t = [0usize; 4];
            for row in per_repo {
                for (acc, n) in t.iter_mut().zip(row) {
                    *acc += n;
                }
            }
            t
        };
        let mut fig1_ok = 0;
        let mut fig1_total = 0;
        for (eco, winner) in [
            (Ecosystem::Python, 3),
            (Ecosystem::Php, 3),
            (Ecosystem::Ruby, 3),
            (Ecosystem::Rust, 3),
            (Ecosystem::DotNet, 2),
            (Ecosystem::JavaScript, 1),
        ] {
            fig1_total += 1;
            let t = totals(eco);
            if t[winner] == *t.iter().max().expect("non-empty") {
                fig1_ok += 1;
            }
        }
        for eco in [Ecosystem::Go, Ecosystem::Swift] {
            fig1_total += 1;
            let t = totals(eco);
            // Trivy & sbom-tool jointly lead.
            if t[0].max(t[2]) == *t.iter().max().expect("non-empty") {
                fig1_ok += 1;
            }
        }

        // Table III ordering: sbom-tool > trivy on both metrics; github
        // precision lowest.
        let registry = registries.for_ecosystem(Ecosystem::Python);
        let platform = Platform::default();
        let mut totals3 = [PrecisionRecall::default(); 4];
        let per_repo3 = par_map(ctx.jobs(), corpus.language(Ecosystem::Python), |_, repo| {
            let truth: std::collections::BTreeSet<(String, String)> =
                dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                    .keys()
                    .collect();
            let mut scores = [PrecisionRecall::default(); 4];
            for (i, tool) in tools.iter().enumerate() {
                let reported: std::collections::BTreeSet<(String, String)> = tool
                    .generate(repo)
                    .components()
                    .iter()
                    .map(|c| {
                        let v = c
                            .version
                            .as_deref()
                            .map(|v| {
                                Version::parse(v)
                                    .map(|p| p.canonical())
                                    .unwrap_or_else(|_| v.to_string())
                            })
                            .unwrap_or_default();
                        (c.name.to_string(), v)
                    })
                    .collect();
                scores[i] = PrecisionRecall::score(&reported, &truth);
            }
            scores
        });
        for scores in per_repo3 {
            for (total, score) in totals3.iter_mut().zip(scores) {
                total.merge(score);
            }
        }
        let t3_ok = totals3[2].precision() > totals3[0].precision()
            && totals3[2].recall() > totals3[0].recall()
            && totals3[3].precision() <= totals3[0].precision();

        // Table IV cell-exactness.
        let t4_ok = attack::evaluate::evaluate_catalog(&registries, true)
            .iter()
            .all(|o| o.matches_expectation);

        // Fig. 2: majority of pairs dissimilar (share below 0.5 over all
        // pairs pooled > 50%).
        let mut below = 0usize;
        let mut total_pairs = 0usize;
        for eco in Ecosystem::ALL {
            let per_repo = par_map(ctx.jobs(), corpus.language(eco), |_, repo| {
                let sboms: Vec<Sbom> = tools.iter().map(|t| t.generate(repo)).collect();
                let (mut b, mut n) = (0usize, 0usize);
                for a in 0..4 {
                    for c in (a + 1)..4 {
                        if let Some(j) = jaccard(&key_set(&sboms[a]), &key_set(&sboms[c])) {
                            n += 1;
                            if j < 0.5 {
                                b += 1;
                            }
                        }
                    }
                }
                (b, n)
            });
            for (b, n) in per_repo {
                below += b;
                total_pairs += n;
            }
        }
        let fig2_share = below as f64 / total_pairs.max(1) as f64;

        table.row([
            seed.to_string(),
            format!("{fig1_ok}/{fig1_total}"),
            if t3_ok { "holds" } else { "DIVERGES" }.to_string(),
            if t4_ok { "exact" } else { "DIVERGES" }.to_string(),
            format!("{:.0}%", fig2_share * 100.0),
        ]);
    }
    println!("{table}");
    ctx.write("stability.csv", &table.to_csv());
}

/// Matching: exact vs tiered Jaccard for the six tool pairs per language.
///
/// Quantifies how much of the cross-tool disagreement Figure 2 reports is
/// *cosmetic* (§V-E naming conventions) by re-diffing every
/// `(repository, tool pair)` cell through the multi-tier matcher.
/// `jaccard_matched ≥ jaccard_exact` holds row by row: the matched pairs
/// are a superset of the exact ones by construction.
pub fn matching(ctx: &Context) {
    println!("\n================ Matching: exact vs tiered Jaccard per tool pair ================");
    let pairs: [(usize, usize, &str); 6] = [
        (3, 1, "GitHub vs Syft"),
        (3, 0, "GitHub vs Trivy"),
        (1, 0, "Syft vs Trivy"),
        (3, 2, "GitHub vs sbom-tool"),
        (0, 2, "Trivy vs sbom-tool"),
        (1, 2, "Syft vs sbom-tool"),
    ];
    let cfg = MatchConfig::default();
    let tier_cols = MatchTier::ALL.map(|t| t.label()).join(",");
    let mut csv = format!("language,pair,repos,jaccard_exact,jaccard_matched,{tier_cols}\n");
    let mut table = TextTable::new([
        "Language",
        "Pair",
        "J(exact)",
        "J(matched)",
        "recovered pairs",
    ]);
    for eco in Ecosystem::ALL {
        let sboms = ctx.sboms(eco);
        // One work item per repository; each scores all six pairs so the
        // LSH index over a side is built once per repo, not once per pair.
        type RepoCell = (Option<f64>, Option<f64>, [usize; MatchTier::COUNT]);
        let per_repo: Vec<[RepoCell; 6]> =
            ctx.phase(&format!("matching {eco}"), sboms.len() as u64 * 6, || {
                par_map(ctx.jobs(), &sboms[..], |_, s| {
                    pairs.map(|(a, b, _)| {
                        let r = match_sboms(&s[a], &s[b], &cfg);
                        (r.jaccard_exact(), r.jaccard_matched(), r.tier_counts())
                    })
                })
            });
        for (p, (_, _, label)) in pairs.iter().enumerate() {
            let mut exact_sum = 0.0;
            let mut matched_sum = 0.0;
            let mut n = 0usize;
            let mut tiers = [0usize; MatchTier::COUNT];
            for cell in per_repo.iter().map(|row| &row[p]) {
                // Both-empty cells carry no signal, matching fig2's filter.
                let (Some(je), Some(jm)) = (cell.0, cell.1) else {
                    continue;
                };
                exact_sum += je;
                matched_sum += jm;
                n += 1;
                for (acc, c) in tiers.iter_mut().zip(cell.2) {
                    *acc += c;
                }
            }
            let exact_mean = if n == 0 { 0.0 } else { exact_sum / n as f64 };
            let matched_mean = if n == 0 { 0.0 } else { matched_sum / n as f64 };
            let recovered: usize = tiers[1..].iter().sum();
            csv.push_str(&format!(
                "{},{},{n},{exact_mean:.4},{matched_mean:.4},{}\n",
                eco.label(),
                label.to_lowercase().replace([' ', '-'], "_"),
                tiers.map(|c| c.to_string()).join(",")
            ));
            table.row([
                eco.label().to_string(),
                label.to_string(),
                format!("{exact_mean:.3}"),
                format!("{matched_mean:.3}"),
                recovered.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("(recovered pairs = matches made above the exact tier: purl/alias/normalized/fuzzy)");
    ctx.write("matching_pairs.csv", &csv);
}

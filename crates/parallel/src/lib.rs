//! Deterministic parallel execution engine for the differential-analysis
//! pipeline.
//!
//! The paper's measurement apparatus runs four generator emulators over
//! thousands of repositories; this crate provides the fan-out layer every
//! experiment pipeline uses:
//!
//! * [`par_map`] — an *ordered* parallel map: work items are claimed from a
//!   shared atomic cursor by a scoped worker pool, and results are reduced
//!   back into input order. Because every work item is a pure function of
//!   its index (per-repository RNG streams are derived from the master
//!   seed, never from thread state), the output is byte-identical for any
//!   worker count and any scheduling.
//! * [`Jobs`] / [`default_jobs`] — worker-count policy: the `--jobs N` CLI
//!   flag, the `SBOMDIFF_JOBS` environment variable, or the machine's
//!   available parallelism, in that order of precedence.
//! * [`Profiler`] — a lightweight per-phase wall-clock/counter layer the
//!   experiment driver prints after each run. Timings go to stderr only;
//!   CSV artifacts never contain wall-clock values, keeping them
//!   reproducible.
//!
//! No external dependencies: the pool is `std::thread::scope` plus an
//! `AtomicUsize` cursor, which this workspace's offline build environment
//! requires and which also keeps the engine trivially auditable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker-count selection for [`par_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (`--jobs N`); `0` falls back to the default.
    pub fn new(n: usize) -> Jobs {
        if n == 0 {
            Jobs(default_jobs())
        } else {
            Jobs(n)
        }
    }

    /// The effective worker count (always ≥ 1).
    pub fn get(self) -> usize {
        self.0.max(1)
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs(default_jobs())
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The default worker count: `SBOMDIFF_JOBS` when set and positive,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SBOMDIFF_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// and returns the results **in input order**.
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds from
/// the index — the discipline that makes the result independent of thread
/// count. With one worker (or one item) no threads are spawned at all, so
/// `--jobs 1` is exactly the sequential pipeline.
///
/// Panics in `f` are propagated to the caller after the scope unwinds.
///
/// # Examples
///
/// ```
/// let squares = sbomdiff_parallel::par_map(4, &[1u64, 2, 3, 4], |i, x| x * x + i as u64);
/// assert_eq!(squares, vec![1, 5, 11, 19]);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            buckets.push(handle.join().expect("parallel worker panicked"));
        }
    });
    // Deterministic ordered reduction: place every result at its index.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

/// One timed phase of an experiment run.
#[derive(Debug, Clone)]
struct Phase {
    name: String,
    wall: Duration,
    items: u64,
}

/// Per-phase wall-clock and item-count accounting, printed at the end of
/// each experiment. Thread-safe; phases appear in completion order.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<Vec<Phase>>,
}

impl Profiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Times `f` as a phase named `name` processing `items` work items.
    pub fn phase<R>(&self, name: &str, items: u64, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phases.lock().expect("profiler lock").push(Phase {
            name: name.to_string(),
            wall: start.elapsed(),
            items,
        });
        out
    }

    /// Records an already-measured phase.
    pub fn record(&self, name: &str, wall: Duration, items: u64) {
        self.phases.lock().expect("profiler lock").push(Phase {
            name: name.to_string(),
            wall,
            items,
        });
    }

    /// Total wall-clock across recorded phases.
    pub fn total(&self) -> Duration {
        self.phases
            .lock()
            .expect("profiler lock")
            .iter()
            .map(|p| p.wall)
            .sum()
    }

    /// The report table: one line per phase plus a total.
    pub fn report(&self, jobs: usize) -> String {
        let phases = self.phases.lock().expect("profiler lock");
        let mut out = String::new();
        out.push_str(&format!("---- timing ({jobs} job(s)) ----\n"));
        let width = phases
            .iter()
            .map(|p| p.name.len())
            .chain(["total".len()])
            .max()
            .unwrap_or(5);
        for p in phases.iter() {
            let per_item = if p.items > 0 {
                format!(
                    "  ({:.2} ms/item over {} items)",
                    ms(p.wall) / p.items as f64,
                    p.items
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:width$}  {:>9.1} ms{per_item}\n",
                p.name,
                ms(p.wall),
            ));
        }
        let total: Duration = phases.iter().map(|p| p.wall).sum();
        out.push_str(&format!("{:width$}  {:>9.1} ms\n", "total", ms(total)));
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_sequential_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let work = |i: usize, x: &u64| -> u64 {
            // A stateful-looking computation that is still a pure function
            // of the index, like per-repo seeded generation.
            let mut h = *x ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1);
            for _ in 0..50 {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            h
        };
        let sequential = par_map(1, &items, work);
        for jobs in [2, 4, 7, 16] {
            assert_eq!(par_map(jobs, &items, work), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(8, &[41u8], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn jobs_zero_falls_back_to_default() {
        assert!(Jobs::new(0).get() >= 1);
        assert_eq!(Jobs::new(5).get(), 5);
    }

    #[test]
    fn profiler_reports_phases_in_order() {
        let prof = Profiler::new();
        let v = prof.phase("setup", 0, || 7);
        assert_eq!(v, 7);
        prof.phase("generate", 12, || ());
        let report = prof.report(4);
        let setup_at = report.find("setup").unwrap();
        let generate_at = report.find("generate").unwrap();
        assert!(setup_at < generate_at);
        assert!(report.contains("12 items"));
        assert!(report.contains("total"));
        assert!(report.contains("4 job(s)"));
    }
}

//! Concrete generators: [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic RNG: xoshiro256++.
///
/// Small, fast, and `Send + Sync`-friendly (no interior mutability); every
/// per-repository stream in the corpus generator owns one, seeded from the
/// master seed, which is what makes parallel generation byte-identical to
/// sequential generation.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&x| x == 0) {
            // xoshiro must not start at the all-zero state.
            s = [0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03, 1, 2];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate re-implements exactly the API surface sbomdiff uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every consumer in this
//! workspace only relies on *determinism* (same seed ⇒ same stream), never
//! on specific values, so the swap is behavior-preserving at the API level.

pub mod rngs;

pub mod distributions {
    //! Range-sampling machinery backing [`Rng::gen_range`](crate::Rng::gen_range).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A type [`Rng::gen_range`](crate::Rng::gen_range) can sample
        /// uniformly. Mirroring upstream, [`SampleRange`] is implemented
        /// *generically* over `T: SampleUniform` — a single impl per range
        /// shape is what lets `usize_count + rng.gen_range(0..4)` infer the
        /// literal's type from the surrounding arithmetic.
        pub trait SampleUniform: Copy + PartialOrd {
            /// One uniform draw from `lo..hi` (`inclusive` ⇒ `lo..=hi`).
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// A range that [`Rng::gen_range`](crate::Rng::gen_range) accepts.
        pub trait SampleRange<T> {
            /// Draws one uniform sample. Panics on an empty range, like
            /// upstream `rand`.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_between(rng, lo, hi, true)
            }
        }

        #[inline]
        fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
            // Widening-multiply reduction (Lemire); the bias at 64-bit spans
            // is below 2^-64 and irrelevant for corpus synthesis.
            debug_assert!(span > 0);
            if span > u64::MAX as u128 {
                // Only reachable for the full 64-bit inclusive range.
                return rng.next_u64() as u128;
            }
            (rng.next_u64() as u128 * span) >> 64
        }

        macro_rules! int_sample_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    #[inline]
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (hi as i128 - lo as i128) as u128
                            + u128::from(inclusive);
                        (lo as i128 + draw_below(rng, span) as i128) as $t
                    }
                }
            )*};
        }
        int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_sample_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    #[inline]
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        let unit = (rng.next_u64() >> 11) as $t
                            / (1u64 << 53) as $t;
                        lo + (hi - lo) * unit
                    }
                }
            )*};
        }
        float_sample_uniform!(f32, f64);
    }
}

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` constructor sbomdiff uses).
pub trait SeedableRng: Sized {
    /// Full-width seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (the same
    /// construction upstream `rand` documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`; panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`; panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(3..3);
    }
}

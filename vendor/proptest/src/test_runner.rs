//! Config, per-case RNG derivation, and test-case failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs (the `PROPTEST_CASES` environment
/// variable overrides the default, as upstream does).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic RNG for one test case from the test's full
/// path and the case index.
pub fn rng_for_case(test_path: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

//! `any::<T>()` for the primitive types the workspace fuzzes with.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arb(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arb(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arb(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn u8_covers_extremes_eventually() {
        let strat = any::<u8>();
        let mut rng = StdRng::seed_from_u64(9);
        let values: std::collections::BTreeSet<u8> =
            (0..4000).map(|_| strat.gen_value(&mut rng)).collect();
        assert!(values.contains(&0));
        assert!(values.contains(&255));
        assert!(values.len() > 200);
    }
}

//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking; a strategy
/// is simply a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth level and returns the next level's strategy. `depth`
    /// bounds the nesting; the size hints of upstream proptest are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        // Bias toward shallow nesting, like upstream's decaying recursion
        // probability, while still reaching the full depth sometimes.
        let mut levels = 0;
        while levels < self.depth && rng.gen_bool(0.55) {
            levels += 1;
        }
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.gen_value(rng)
    }
}

/// Regex-like string patterns are strategies (`"[a-z]{1,3}" `).
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut StdRng) -> String {
        crate::string::gen_from_pattern(self, rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

//! Generation of strings from the regex subset this workspace's patterns
//! use: literals, `\PC`, character classes with ranges / negation / `&&`
//! intersection / `\xNN`, and `{n}` / `{m,n}` quantifiers.

use rand::rngs::StdRng;
use rand::Rng;

/// The palette `\PC` (any non-control char) draws from: full printable
/// ASCII plus a spread of multi-byte codepoints so parser fuzzing exercises
/// UTF-8 boundaries, quoting, and non-Latin scripts.
fn printable_palette() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    chars.extend([
        'é', 'ß', 'ñ', 'Ω', 'λ', 'Щ', '中', '文', '🦀', '∅', '«', '»', '\u{a0}', '―', '→', '“', '”',
    ]);
    chars
}

#[derive(Debug)]
enum Atom {
    Chars(Vec<char>),
}

#[derive(Debug)]
struct Term {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn gen_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let terms = parse_pattern(pattern);
    let mut out = String::new();
    for term in &terms {
        let count = if term.min == term.max {
            term.min
        } else {
            rng.gen_range(term.min..=term.max)
        };
        let Atom::Chars(chars) = &term.atom;
        for _ in 0..count {
            if chars.is_empty() {
                continue;
            }
            out.push(chars[rng.gen_range(0..chars.len())]);
        }
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<Term> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut terms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i);
                i = next;
                Atom::Chars(set)
            }
            '\\' => {
                let (set, next) = parse_escape(&chars, i);
                i = next;
                Atom::Chars(set)
            }
            c => {
                i += 1;
                Atom::Chars(vec![c])
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        terms.push(Term { atom, min, max });
    }
    terms
}

/// Parses `\PC` (→ printable palette), `\xNN`, or an escaped literal,
/// starting at the backslash. Returns the char set and the next index.
fn parse_escape(chars: &[char], at: usize) -> (Vec<char>, usize) {
    match chars.get(at + 1) {
        Some('P') if chars.get(at + 2) == Some(&'C') => (printable_palette(), at + 3),
        Some('x') => {
            let hex: String = chars[at + 2..].iter().take(2).collect();
            let code = u32::from_str_radix(&hex, 16).unwrap_or(0);
            let c = char::from_u32(code).unwrap_or('\u{0}');
            (vec![c], at + 2 + hex.len())
        }
        Some(&c) => (vec![c], at + 2),
        None => (vec!['\\'], at + 1),
    }
}

/// Parses a character class starting at `[`. Supports negation (`[^...]`),
/// ranges (`a-z`), escapes, and `&&`-intersection with a nested class.
/// Returns the materialized char set and the index past the closing `]`.
fn parse_class(chars: &[char], at: usize) -> (Vec<char>, usize) {
    let mut i = at + 1;
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    let mut filters: Vec<(bool, Vec<char>)> = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        // `&&[...]` intersection.
        if chars[i] == '&' && chars.get(i + 1) == Some(&'&') && chars.get(i + 2) == Some(&'[') {
            let inner_negated = chars.get(i + 3) == Some(&'^');
            let (inner, next) = parse_class(chars, i + 2);
            filters.push((inner_negated, inner));
            i = next;
            continue;
        }
        let (lo_set, next) = match chars[i] {
            '\\' => parse_escape(chars, i),
            c => (vec![c], i + 1),
        };
        i = next;
        // Range `a-z` (only when the left side was a single char).
        if lo_set.len() == 1
            && chars.get(i) == Some(&'-')
            && chars.get(i + 1).is_some_and(|&c| c != ']')
        {
            let lo = lo_set[0];
            let hi = chars[i + 1];
            i += 2;
            for code in (lo as u32)..=(hi as u32) {
                if let Some(c) = char::from_u32(code) {
                    set.push(c);
                }
            }
        } else {
            set.extend(lo_set);
        }
    }
    let end = if i < chars.len() { i + 1 } else { i };
    if negated {
        let excluded = set;
        set = printable_palette()
            .into_iter()
            .filter(|c| !excluded.contains(c))
            .collect();
    }
    for (inner_negated, inner) in filters {
        // `[^...]` filters parse with the inner `^` already applied against
        // the printable palette, so plain membership keeps the semantics of
        // both `&&[abc]` and `&&[^abc]`.
        let _ = inner_negated;
        set.retain(|c| inner.contains(c));
    }
    set.sort_unstable();
    set.dedup();
    (set, end)
}

/// Parses `{n}` or `{m,n}` at `at`; without a quantifier the term repeats
/// exactly once.
fn parse_quantifier(chars: &[char], at: usize) -> (usize, usize, usize) {
    if chars.get(at) != Some(&'{') {
        return (1, 1, at);
    }
    let close = match chars[at..].iter().position(|&c| c == '}') {
        Some(off) => at + off,
        None => return (1, 1, at),
    };
    let body: String = chars[at + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0)),
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
    };
    (min, max.max(min), close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn literal_passes_through() {
        assert_eq!(gen_from_pattern(", ", &mut rng()), ", ");
    }

    #[test]
    fn class_with_quantifier_respects_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_from_pattern("[a-c]{1,3}", &mut r);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn leading_class_then_body() {
        let mut r = rng();
        for _ in 0..100 {
            let s = gen_from_pattern("[a-zA-Z][a-zA-Z0-9_-]{0,8}", &mut r);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().count() <= 9);
        }
    }

    #[test]
    fn printable_class_excludes_controls() {
        let mut r = rng();
        for _ in 0..100 {
            let s = gen_from_pattern("\\PC{0,40}", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn intersection_filters_nul() {
        let mut r = rng();
        for _ in 0..100 {
            let s = gen_from_pattern("[\\PC&&[^\\x00]]{1,30}", &mut r);
            assert!(!s.is_empty());
            assert!(s.chars().all(|c| c != '\u{0}' && !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn escaped_dash_in_class_is_literal() {
        let mut r = rng();
        let mut saw_dash = false;
        for _ in 0..400 {
            let s = gen_from_pattern("[a\\-b]{1}", &mut r);
            assert!(["a", "-", "b"].contains(&s.as_str()), "{s:?}");
            saw_dash |= s == "-";
        }
        assert!(saw_dash);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the `proptest!` macro, strategies for regex-like string
//! patterns, numeric ranges, tuples, `Just`, `prop_oneof!`, `prop_map`,
//! `prop_recursive`, and `prop::collection::{vec, btree_set}` — on top of
//! the vendored deterministic `rand`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: each test case's RNG is seeded from the test's
//!   module path and case index, so failures reproduce exactly on rerun.
//! * **No shrinking**: a failing case reports its case index instead of a
//!   minimized input.
//! * **Regex subset**: string patterns support literals, `\PC`, character
//!   classes (ranges, negation, `&&` intersection, `\xNN` escapes) and
//!   `{n}` / `{m,n}` quantifiers — the constructs this repo's tests use.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a proptest-based test file imports.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::rng_for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (returns a test-case error
/// instead of panicking, mirroring upstream semantics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Picks uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A size specification: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }
}

/// A strategy producing `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s with a target size in `size` (the
/// realized size can fall short when the element domain is too small, as in
/// upstream proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0u64..10, 2..5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_exact_size() {
        let strat = vec(0u64..10, 6);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(strat.gen_value(&mut rng).len(), 6);
    }

    #[test]
    fn btree_set_meets_minimum_when_domain_allows() {
        let strat = btree_set("[a-z]", 1..6);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = strat.gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() < 6);
        }
    }
}

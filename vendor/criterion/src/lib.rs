//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset `crates/bench` uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple adaptive wall-clock
//! harness (warm up, then run until ~100 ms or 10k iterations and report
//! mean ns/iter). No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `("python", 50)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// Accepted benchmark-name types (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.0
    }
}

/// Declared input magnitude, echoed in the report line.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times one closure.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 10_000 {
            black_box(f());
            iters += 1;
        }
        self.measured = Some((start.elapsed(), iters.max(1)));
    }
}

fn report(name: &str, group: Option<&str>, throughput: Option<&Throughput>, b: &Bencher) {
    let Some((elapsed, iters)) = b.measured else {
        println!("{name:50} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mbps = *n as f64 / per_iter * 1e9 / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = *n as f64 / per_iter * 1e9;
            format!("  {eps:10.0} elem/s")
        }
    });
    println!(
        "{full:50} {per_iter:12.0} ns/iter  ({iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        f(&mut b);
        report(&name.into_name(), None, None, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the input magnitude for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        f(&mut b);
        report(
            &id.into_name(),
            Some(&self.name),
            self.throughput.as_ref(),
            &b,
        );
        self
    }

    /// Benchmarks a function parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { measured: None };
        f(&mut b, input);
        report(
            &id.into_name(),
            Some(&self.name),
            self.throughput.as_ref(),
            &b,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Differential audit: run the four studied tools over a synthetic corpus
//! and compute the paper's §III metrics — pairwise Jaccard similarity,
//! package counts, duplicate rates — for one language.
//!
//! ```sh
//! cargo run --release --example differential_audit -- [language] [repos]
//! ```

use sbomdiff::corpus::{Corpus, CorpusConfig};
use sbomdiff::diff::{duplicate_rate, jaccard, key_set, Histogram, TextTable};
use sbomdiff::generators::{SbomGenerator, ToolEmulator};
use sbomdiff::registry::Registries;
use sbomdiff::types::Sbom;
use sbomdiff::Ecosystem;

fn main() {
    let mut args = std::env::args().skip(1);
    let eco: Ecosystem = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Ecosystem::Python);
    let repos: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);

    println!("building registry and a {repos}-repository {eco} corpus...");
    let registries = Registries::generate(7);
    let corpus = Corpus::build_language(
        &registries,
        &CorpusConfig {
            repos_per_language: repos,
            seed: 99,
        },
        eco,
    );

    let tools = [
        ToolEmulator::trivy(),
        ToolEmulator::syft(),
        ToolEmulator::sbom_tool(&registries, 0.12),
        ToolEmulator::github_dg(),
    ];
    let sboms: Vec<Vec<Sbom>> = corpus
        .iter()
        .map(|repo| tools.iter().map(|t| t.generate(repo)).collect())
        .collect();

    // Package counts per tool (Fig. 1's series).
    let mut counts = TextTable::new(["Tool", "total", "mean/repo", "duplicate rate"]);
    for (i, tool) in tools.iter().enumerate() {
        let total: usize = sboms.iter().map(|s| s[i].len()).sum();
        let dup = duplicate_rate(sboms.iter().map(|s| &s[i]));
        counts.row([
            tool.id().label().to_string(),
            total.to_string(),
            format!("{:.1}", total as f64 / repos as f64),
            format!("{:.1}%", dup * 100.0),
        ]);
    }
    println!("\n{counts}");

    // Pairwise Jaccard similarity (Fig. 2's distributions).
    let labels = ["Trivy", "Syft", "sbom-tool", "GitHub DG"];
    println!("pairwise Jaccard similarity over (name, version) sets:");
    for a in 0..4 {
        for b in (a + 1)..4 {
            let mut hist = Histogram::unit();
            let mut sum = 0.0;
            let mut n = 0;
            for s in &sboms {
                if let Some(j) = jaccard(&key_set(&s[a]), &key_set(&s[b])) {
                    hist.add(j);
                    sum += j;
                    n += 1;
                }
            }
            let mean = if n == 0 { 0.0 } else { sum / n as f64 };
            println!(
                "  {:9} vs {:9}  mean {:.3}   {:>4.0}% of pairs below 0.5   ({} repos)",
                labels[a],
                labels[b],
                mean,
                hist.share_below(0.5) * 100.0,
                n
            );
        }
    }
    println!("\nthe overwhelming dissimilarity across tools is the paper's core finding (§IV-B).");
}

//! Quickstart: scan one repository with all five generators and print what
//! each reports — the paper's §V findings in 80 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sbomdiff::generators::{BestPracticeGenerator, SbomGenerator, ToolEmulator};
use sbomdiff::metadata::RepoFs;
use sbomdiff::registry::Registries;

fn main() {
    // A small Python project: pinned, ranged, bare, extras and marker
    // declarations plus a dev-requirements file.
    let mut repo = RepoFs::new("quickstart-demo");
    repo.add_text(
        "requirements.txt",
        "\
# production dependencies
numpy==1.19.2
requests[security]>=2.8.1
flask
pywin32==306; sys_platform == 'win32'
",
    );
    repo.add_text("requirements-dev.txt", "pytest==7.4.0\n");

    let registries = Registries::generate(42);
    let generators: Vec<Box<dyn SbomGenerator>> = vec![
        Box::new(ToolEmulator::trivy()),
        Box::new(ToolEmulator::syft()),
        Box::new(ToolEmulator::sbom_tool(&registries, 0.0)),
        Box::new(ToolEmulator::github_dg()),
        Box::new(BestPracticeGenerator::new(&registries)),
    ];

    println!("repository: {} ({} files)\n", repo.name(), repo.len());
    for generator in &generators {
        let sbom = generator.generate(&repo);
        println!(
            "== {} reports {} component(s)",
            generator.id().label(),
            sbom.len()
        );
        for c in sbom.components() {
            let version = c.version.as_deref().unwrap_or("(no version)");
            println!("   {:30} {:18} from {}", c.name, version, c.found_in);
        }
        println!();
    }

    println!("observations (matching the paper's §V):");
    println!(" * Trivy/Syft keep only the ==-pinned declarations;");
    println!(" * GitHub DG reports ranges verbatim and bare names without versions;");
    println!(" * sbom-tool pins latest-in-range via the registry and adds transitives;");
    println!(" * the best-practice generator resolves everything and merges duplicates.");
}

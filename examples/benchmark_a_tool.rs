//! Grade SBOM generators on the paper's §VII benchmark — crafted metadata
//! files with ground truth — and print a per-case scorecard.
//!
//! This is the harness the paper publishes "to steer the development of
//! more robust SBOM generators": plug any [`SbomGenerator`] in and see
//! exactly which corner-case syntax it mishandles.
//!
//! ```sh
//! cargo run --example benchmark_a_tool
//! ```

use sbomdiff::benchx::{self, cases::all_cases};
use sbomdiff::diff::TextTable;
use sbomdiff::generators::{BestPracticeGenerator, SbomGenerator, ToolEmulator};
use sbomdiff::registry::Registries;

fn main() {
    let registries = Registries::generate(77);
    let cases = all_cases();

    let generators: Vec<Box<dyn SbomGenerator>> = vec![
        Box::new(ToolEmulator::trivy()),
        Box::new(ToolEmulator::syft()),
        Box::new(ToolEmulator::sbom_tool(&registries, 0.0)),
        Box::new(ToolEmulator::github_dg()),
        Box::new(BestPracticeGenerator::new(&registries)),
    ];

    // Per-case pass/fail matrix.
    let mut matrix = TextTable::new([
        "Case",
        "Trivy",
        "Syft",
        "sbom-tool",
        "GitHub DG",
        "best-practice",
    ]);
    let scores: Vec<benchx::BenchmarkScore> = generators
        .iter()
        .map(|g| benchx::score_generator(g.as_ref(), &cases))
        .collect();
    for (ci, case) in cases.iter().enumerate() {
        let cell = |s: &benchx::BenchmarkScore| {
            let c = &s.cases[ci];
            if c.is_perfect() {
                "pass".to_string()
            } else {
                format!("{}/{}", c.names_found, c.names_total)
            }
        };
        matrix.row([
            case.id.to_string(),
            cell(&scores[0]),
            cell(&scores[1]),
            cell(&scores[2]),
            cell(&scores[3]),
            cell(&scores[4]),
        ]);
    }
    println!("{matrix}");

    let mut summary = TextTable::new(["Generator", "name recall", "version accuracy"]);
    for (g, s) in generators.iter().zip(&scores) {
        summary.row([
            g.id().label().to_string(),
            format!("{:.0}%", s.name_recall() * 100.0),
            format!("{:.0}%", s.version_accuracy() * 100.0),
        ]);
    }
    println!("{summary}");
    println!(
        "cells show ground-truth names found; 'pass' means names and pinned versions all correct."
    );
}

//! Parser-confusion attack demo (§VI): evaluate every Table IV sample
//! against the four tool emulators, print the reproduced table, and then
//! run one sample as a corpus-wide injection campaign to measure evasion.
//!
//! ```sh
//! cargo run --release --example parser_confusion_attack
//! ```

use sbomdiff::attack::{self, evaluate::evaluate_catalog};
use sbomdiff::corpus::{Corpus, CorpusConfig};
use sbomdiff::diff::TextTable;
use sbomdiff::registry::Registries;
use sbomdiff::Ecosystem;

fn main() {
    let registries = Registries::generate(1234);

    println!("=== Table IV: what each tool reports for each attack sample ===\n");
    let mut table = TextTable::new([
        "Sample",
        "Trivy",
        "Syft",
        "sbom-tool",
        "GitHub DG",
        "evades",
    ]);
    for outcome in evaluate_catalog(&registries, true) {
        table.row([
            outcome.display.to_string(),
            outcome.cells[0].to_string(),
            outcome.cells[1].to_string(),
            outcome.cells[2].to_string(),
            outcome.cells[3].to_string(),
            format!("{}/4 tools", outcome.evaded_tools),
        ]);
    }
    println!("{table}");

    println!("note the numpy row: sbom-tool *does* report something — but the");
    println!("version is the registry's latest (1.25.2), not the 1.19.2 that pip");
    println!("actually installs. A wrong entry can be worse than a missing one.\n");

    // Campaign: inject the VCS-install sample into a whole Python corpus.
    println!("=== §VI damage: corpus-wide injection campaign ===\n");
    let repos = Corpus::build_language(
        &registries,
        &CorpusConfig {
            repos_per_language: 40,
            seed: 5,
        },
        Ecosystem::Python,
    );
    let sample = attack::TABLE_IV_SAMPLES
        .iter()
        .find(|s| s.id == "vcs-install")
        .expect("catalog contains the vcs sample");
    let report = attack::run_campaign(&repos, sample, &registries, 77);
    println!(
        "injected `{}` into {} repositories:",
        sample.display, report.repos_attacked
    );
    for (i, label) in attack::campaign::tool_labels().iter().enumerate() {
        println!(
            "  {:10} missed the concealed package in {:.0}% of repositories",
            label,
            report.evasion_rate(i) * 100.0
        );
    }
    println!("\nany dependency delivered through an unsupported syntax rides into");
    println!("the supply chain without appearing in a single SBOM.");
}

//! Export SBOMs as CycloneDX 1.5 and SPDX 2.3 JSON documents, then parse
//! them back and diff them — the interchange layer the studied tools use
//! (§III-B).
//!
//! ```sh
//! cargo run --example export_sbom_documents
//! ```

use sbomdiff::generators::{BestPracticeGenerator, SbomGenerator, ToolEmulator};
use sbomdiff::metadata::RepoFs;
use sbomdiff::registry::Registries;
use sbomdiff::sbomfmt::SbomFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut repo = RepoFs::new("export-demo");
    repo.add_text(
        "Cargo.toml",
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\nrand = \"0.8\"\n",
    );
    repo.add_text(
        "Cargo.lock",
        "version = 3\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.188\"\n\n[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n",
    );

    let registries = Registries::generate(11);
    let out_dir = std::path::Path::new("target/sbom-exports");
    std::fs::create_dir_all(out_dir)?;

    for generator in [
        Box::new(ToolEmulator::trivy()) as Box<dyn SbomGenerator>,
        Box::new(ToolEmulator::github_dg()),
        Box::new(BestPracticeGenerator::new(&registries)),
    ] {
        let sbom = generator.generate(&repo);
        let label = generator.id().label().replace([' ', '-'], "_");

        let cdx = SbomFormat::CycloneDx.serialize(&sbom);
        let spdx = SbomFormat::Spdx.serialize(&sbom);
        let cdx_path = out_dir.join(format!("{label}.cdx.json"));
        let spdx_path = out_dir.join(format!("{label}.spdx.json"));
        std::fs::write(&cdx_path, &cdx)?;
        std::fs::write(&spdx_path, &spdx)?;

        // Round-trip both documents and verify the component sets agree.
        let back_cdx = SbomFormat::CycloneDx.parse(&cdx)?;
        let back_spdx = SbomFormat::Spdx.parse(&spdx)?;
        assert_eq!(back_cdx.len(), sbom.len());
        assert_eq!(back_spdx.len(), sbom.len());

        println!(
            "{:15} {} component(s) -> {} / {}",
            generator.id().label(),
            sbom.len(),
            cdx_path.display(),
            spdx_path.display()
        );
        for c in sbom.components() {
            if let Some(purl) = &c.purl {
                println!("   {purl}");
            }
        }
    }
    println!("\ndocuments are deterministic: re-running produces byte-identical files.");
    Ok(())
}

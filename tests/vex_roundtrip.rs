//! VEX companion-artifact flow (§II): assess SBOMs against advisories,
//! emit an OpenVEX document, and round-trip it.

use sbomdiff::generators::{studied_tools, SbomGenerator};
use sbomdiff::metadata::RepoFs;
use sbomdiff::registry::Registries;
use sbomdiff::resolver::{dry_run, Platform};
use sbomdiff::sbomfmt::{VexDocument, VexStatement, VexStatus};
use sbomdiff::vuln::AdvisoryDb;

#[test]
fn impact_assessment_flows_into_vex() {
    let regs = Registries::generate(404);
    let db = AdvisoryDb::generate(&regs, 2, 0.5);
    let mut repo = RepoFs::new("vex-demo");
    repo.add_text("requirements.txt", "numpy==1.19.2\nrequests>=2.8.1\n");
    let registry = regs.for_ecosystem(sbomdiff::Ecosystem::Python);
    let truth = dry_run(
        registry,
        &repo.text_files(),
        "requirements.txt",
        &Platform::default(),
    );

    for tool in studied_tools(&regs, 0.0) {
        let sbom = tool.generate(&repo);
        let report = sbomdiff::vuln::assess(&db, &sbom, &truth.installed);
        let mut vex = VexDocument::new(tool.id().label());
        for (advisory_id, status) in report.to_vex_statements() {
            vex.push(VexStatement {
                vulnerability: advisory_id,
                products: sbom
                    .components()
                    .iter()
                    .filter_map(|c| c.purl.as_ref().map(|p| p.to_string()))
                    .take(1)
                    .collect(),
                status: if status == "affected" {
                    VexStatus::Affected
                } else {
                    VexStatus::NotAffected
                },
                justification: None,
            });
        }
        let text = vex.to_string_pretty();
        let back = VexDocument::parse(&text).expect("own VEX parses");
        assert_eq!(back, vex, "{} VEX roundtrip", tool.id());
        assert_eq!(
            back.statements.len(),
            report.detected.len() + report.missed.len() + report.false_alarms.len()
        );
    }
}

#[test]
fn vex_statuses_partition_findings() {
    let regs = Registries::generate(404);
    let db = AdvisoryDb::generate(&regs, 2, 0.5);
    let mut repo = RepoFs::new("vex-partition");
    repo.add_text("requirements.txt", "numpy==1.19.2\n");
    repo.add_text("requirements-dev.txt", "pytest==7.0.0\n");
    let registry = regs.for_ecosystem(sbomdiff::Ecosystem::Python);
    let truth = dry_run(
        registry,
        &repo.text_files(),
        "requirements.txt",
        &Platform::default(),
    );
    let trivy = &studied_tools(&regs, 0.0)[0];
    let sbom = trivy.generate(&repo);
    let report = sbomdiff::vuln::assess(&db, &sbom, &truth.installed);
    let statements = report.to_vex_statements();
    let affected = statements.iter().filter(|(_, s)| *s == "affected").count();
    let not_affected = statements
        .iter()
        .filter(|(_, s)| *s == "not_affected")
        .count();
    assert_eq!(affected, report.detected.len() + report.missed.len());
    assert_eq!(not_affected, report.false_alarms.len());
}

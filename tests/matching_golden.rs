//! Golden fixtures for the tiered matcher: real-tool-style documents whose
//! spellings diverge exactly the way §V-E describes (PEP 503 case, `v`
//! version prefixes, display-name vs PURL-name, a typo'd name) produce
//! blessed `--explain` reports, proving cross-tool pairs *gain* matches
//! over exact identity.
//!
//! The syft/trivy/sbom-tool fixtures are the PR-6 ingest set; the
//! GitHub-dependency-graph-style document adds the divergent spellings.
//!
//! To regenerate after an intentional matcher change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test matching_golden
//! ```

use std::path::{Path, PathBuf};

use sbomdiff::diff::{jaccard, key_set, MatchedDiff};
use sbomdiff::matching::MatchConfig;
use sbomdiff::sbomfmt::ingest::{ingest_bytes, IngestOutcome};

const PAIRS: [(&str, &str); 3] = [
    ("syft-cdx-1.4.json", "github-dg-cdx-1.5.json"),
    ("trivy-spdx-2.2.json", "github-dg-cdx-1.5.json"),
    ("syft-cdx-1.4.json", "trivy-spdx-2.2.json"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ingest")
}

fn ingest_fixture(name: &str) -> IngestOutcome {
    let bytes =
        std::fs::read(fixture_dir().join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let outcome = ingest_bytes(&bytes);
    assert!(
        outcome.fatal.is_none(),
        "fixture {name} must ingest cleanly: {:?}",
        outcome.fatal
    );
    outcome
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_dir().join("golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); bless with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; bless intentional changes with UPDATE_GOLDEN=1"
    );
}

fn golden_name(a: &str, b: &str) -> String {
    format!(
        "{}_vs_{}.match.txt",
        a.split('.').next().unwrap(),
        b.split('.').next().unwrap()
    )
}

#[test]
fn tiered_explain_reports_match_blessed_goldens() {
    for (a, b) in PAIRS {
        let (oa, ob) = (ingest_fixture(a), ingest_fixture(b));
        let d = MatchedDiff::compute(&oa.sbom, &ob.sbom, &MatchConfig::default());
        check_golden(&golden_name(a, b), &d.report.explain());
    }
}

#[test]
fn cross_tool_pairs_gain_matches_over_exact_identity() {
    // The divergent GitHub-style document agrees with syft/trivy on almost
    // every package, just not on the spelling — exact identity misses
    // those, the tiers must recover them.
    for (a, b) in &PAIRS[..2] {
        let (oa, ob) = (ingest_fixture(a), ingest_fixture(b));
        let d = MatchedDiff::compute(&oa.sbom, &ob.sbom, &MatchConfig::default());
        assert!(
            d.recovered() >= 3,
            "{a} vs {b}: expected ≥ 3 recovered matches, got {}",
            d.recovered()
        );
        assert!(d.jaccard_matched() > d.jaccard_exact(), "{a} vs {b}");
        // The matcher's exact tier must agree with the baseline diff.
        assert_eq!(
            d.jaccard_exact(),
            jaccard(&key_set(&oa.sbom), &key_set(&ob.sbom)),
            "{a} vs {b}"
        );
    }
}

#[test]
fn syft_vs_github_recovers_every_component() {
    // 7 components on each side, 4 divergent spellings: purl identity
    // (Flask), v-prefix (werkzeug), PEP 503 case (Jinja2), typo (urlib3).
    let oa = ingest_fixture("syft-cdx-1.4.json");
    let ob = ingest_fixture("github-dg-cdx-1.5.json");
    let d = MatchedDiff::compute(&oa.sbom, &ob.sbom, &MatchConfig::default());
    assert_eq!(d.jaccard_matched(), Some(1.0), "all 7 pairs must match");
    let tiers = d.tier_breakdown();
    assert_eq!(tiers[0], ("exact", 3));
    assert_eq!(tiers[1], ("purl", 1));
    assert_eq!(tiers[3], ("normalized", 2));
    assert_eq!(tiers[4], ("fuzzy", 1));
}

#[test]
fn explain_reports_are_identical_across_jobs_counts() {
    for (a, b) in PAIRS {
        let (oa, ob) = (ingest_fixture(a), ingest_fixture(b));
        let reports: Vec<String> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                let cfg = MatchConfig {
                    jobs,
                    ..MatchConfig::default()
                };
                MatchedDiff::compute(&oa.sbom, &ob.sbom, &cfg)
                    .report
                    .explain()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "{a} vs {b}: jobs=1 vs jobs=4");
    }
}

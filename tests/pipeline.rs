//! End-to-end differential pipeline: corpus → tool emulators → SBOM
//! documents → differential metrics, across crate boundaries.

use sbomdiff::corpus::{Corpus, CorpusConfig};
use sbomdiff::diff::{duplicate_rate, jaccard, key_set};
use sbomdiff::generators::{studied_tools, SbomGenerator};
use sbomdiff::registry::Registries;
use sbomdiff::sbomfmt::SbomFormat;
use sbomdiff::Ecosystem;

fn small_corpus(eco: Ecosystem) -> (Registries, Vec<sbomdiff::metadata::RepoFs>) {
    let regs = Registries::generate(314);
    let repos = Corpus::build_language(
        &regs,
        &CorpusConfig {
            repos_per_language: 25,
            seed: 159,
        },
        eco,
    );
    (regs, repos)
}

#[test]
fn four_tools_disagree_on_python() {
    let (regs, repos) = small_corpus(Ecosystem::Python);
    let tools = studied_tools(&regs, 0.1);
    let mut any_disagreement = false;
    for repo in &repos {
        let sboms: Vec<_> = tools.iter().map(|t| t.generate(repo)).collect();
        for a in 0..sboms.len() {
            for b in (a + 1)..sboms.len() {
                if let Some(j) = jaccard(&key_set(&sboms[a]), &key_set(&sboms[b])) {
                    assert!((0.0..=1.0).contains(&j));
                    if j < 0.999 {
                        any_disagreement = true;
                    }
                }
            }
        }
    }
    assert!(
        any_disagreement,
        "the tools should disagree somewhere (the paper's core finding)"
    );
}

#[test]
fn sbom_documents_roundtrip_preserving_diff_keys() {
    let (regs, repos) = small_corpus(Ecosystem::Rust);
    let tools = studied_tools(&regs, 0.0);
    for repo in repos.iter().take(10) {
        for tool in &tools {
            let sbom = tool.generate(repo);
            for format in [SbomFormat::CycloneDx, SbomFormat::Spdx] {
                let text = format.serialize(&sbom);
                let back = format.parse(&text).unwrap_or_else(|e| {
                    panic!("{:?} roundtrip failed for {}: {e}", format, repo.name())
                });
                assert_eq!(
                    key_set(&sbom),
                    key_set(&back),
                    "{:?} changed the (name, version) set for {}",
                    format,
                    repo.name()
                );
                assert_eq!(back.meta.tool_name, sbom.meta.tool_name);
            }
        }
    }
}

#[test]
fn duplicate_rates_are_sane_across_languages() {
    let regs = Registries::generate(21);
    let corpus = Corpus::build(
        &regs,
        &CorpusConfig {
            repos_per_language: 15,
            seed: 4,
        },
    );
    let tools = studied_tools(&regs, 0.1);
    for (eco, repos) in corpus.iter() {
        for tool in &tools {
            let sboms: Vec<_> = repos.iter().map(|r| tool.generate(r)).collect();
            let rate = duplicate_rate(&sboms);
            assert!(
                (0.0..0.8).contains(&rate),
                "{eco}/{}: implausible duplicate rate {rate}",
                tool.id()
            );
        }
    }
}

#[test]
fn generation_is_deterministic_end_to_end() {
    let (regs, repos) = small_corpus(Ecosystem::JavaScript);
    let tools_a = studied_tools(&regs, 0.2);
    let tools_b = studied_tools(&regs, 0.2);
    for repo in repos.iter().take(5) {
        for (a, b) in tools_a.iter().zip(&tools_b) {
            let sa = a.generate(repo);
            let sb = b.generate(repo);
            assert_eq!(key_set(&sa), key_set(&sb), "{} not deterministic", a.id());
            // Document serialization is byte-stable too.
            assert_eq!(
                SbomFormat::CycloneDx.serialize(&sa),
                SbomFormat::CycloneDx.serialize(&sb)
            );
        }
    }
}

#[test]
fn empty_repository_produces_empty_sboms() {
    let regs = Registries::generate(1);
    let repo = sbomdiff::metadata::RepoFs::new("empty");
    for tool in studied_tools(&regs, 0.0) {
        assert!(tool.generate(&repo).is_empty());
    }
}

//! Smoke tests for the `sbomdiff` CLI binary (scan / diff over a real
//! directory tree).

use std::process::Command;

fn demo_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sbomdiff-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("svc")).unwrap();
    std::fs::write(
        dir.join("requirements.txt"),
        "numpy==1.19.2\nrequests>=2.8.1\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("svc").join("Cargo.lock"),
        "version = 3\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.188\"\n",
    )
    .unwrap();
    dir
}

#[test]
fn scan_emits_parseable_cyclonedx() {
    let dir = demo_dir("scan");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["scan", dir.to_str().unwrap(), "--tool", "trivy"])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let sbom = sbomdiff::sbomfmt::SbomFormat::CycloneDx
        .parse(&stdout)
        .expect("CLI output is valid CycloneDX");
    // Trivy: the pinned numpy plus the Cargo.lock serde.
    let names: Vec<&str> = sbom.components().iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"numpy"), "{names:?}");
    assert!(names.contains(&"serde"), "{names:?}");
}

#[test]
fn scan_spdx_format_flag() {
    let dir = demo_dir("spdx");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args([
            "scan",
            dir.to_str().unwrap(),
            "--tool",
            "github-dg",
            "--format",
            "spdx",
        ])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let sbom = sbomdiff::sbomfmt::SbomFormat::Spdx
        .parse(&stdout)
        .expect("CLI output is valid SPDX");
    assert!(sbom.len() >= 3); // numpy + requests(range) + serde
}

#[test]
fn diff_prints_tool_disagreements() {
    let dir = demo_dir("diff");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["diff", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("Trivy"));
    assert!(stdout.contains("Jaccard"));
    assert!(stdout.contains("sbom-tool"));
}

#[test]
fn version_and_help_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .arg("--version")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("sbomdiff "), "{stdout}");
    assert!(stdout.trim().split(' ').nth(1).unwrap().contains('.'));

    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("USAGE"), "{stdout}");
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("diff"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["scan", "/definitely/not/a/dir"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
}

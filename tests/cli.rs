//! Smoke tests for the `sbomdiff` CLI binary (scan / diff over a real
//! directory tree).

use std::process::Command;

fn demo_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sbomdiff-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("svc")).unwrap();
    std::fs::write(
        dir.join("requirements.txt"),
        "numpy==1.19.2\nrequests>=2.8.1\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("svc").join("Cargo.lock"),
        "version = 3\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.188\"\n",
    )
    .unwrap();
    dir
}

#[test]
fn scan_emits_parseable_cyclonedx() {
    let dir = demo_dir("scan");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["scan", dir.to_str().unwrap(), "--tool", "trivy"])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let sbom = sbomdiff::sbomfmt::SbomFormat::CycloneDx
        .parse(&stdout)
        .expect("CLI output is valid CycloneDX");
    // Trivy: the pinned numpy plus the Cargo.lock serde.
    let names: Vec<&str> = sbom.components().iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"numpy"), "{names:?}");
    assert!(names.contains(&"serde"), "{names:?}");
}

#[test]
fn scan_spdx_format_flag() {
    let dir = demo_dir("spdx");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args([
            "scan",
            dir.to_str().unwrap(),
            "--tool",
            "github-dg",
            "--format",
            "spdx",
        ])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let sbom = sbomdiff::sbomfmt::SbomFormat::Spdx
        .parse(&stdout)
        .expect("CLI output is valid SPDX");
    assert!(sbom.len() >= 3); // numpy + requests(range) + serde
}

#[test]
fn diff_prints_tool_disagreements() {
    let dir = demo_dir("diff");
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["diff", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("Trivy"));
    assert!(stdout.contains("Jaccard"));
    assert!(stdout.contains("sbom-tool"));
}

#[test]
fn diff_two_external_files_across_formats() {
    let dir = std::env::temp_dir().join(format!("sbomdiff-cli-filediff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.spdx");
    std::fs::write(
        &a,
        concat!(
            "{\"bomFormat\":\"CycloneDX\",\"specVersion\":\"1.5\",",
            "\"components\":[",
            "{\"type\":\"library\",\"name\":\"left-pad\",\"version\":\"1.3.0\",",
            "\"purl\":\"pkg:npm/left-pad@1.3.0\"},",
            "{\"type\":\"library\",\"name\":\"lodash\",\"version\":\"4.17.21\",",
            "\"purl\":\"pkg:npm/lodash@4.17.21\"}]}"
        ),
    )
    .unwrap();
    std::fs::write(
        &b,
        concat!(
            "SPDXVersion: SPDX-2.2\n",
            "DataLicense: CC0-1.0\n",
            "Creator: Tool: trivy-0.50\n",
            "\n",
            "PackageName: left-pad\n",
            "PackageVersion: 1.3.0\n",
            "ExternalRef: PACKAGE-MANAGER purl pkg:npm/left-pad@1.3.0\n",
        ),
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("jaccard: 0.500"), "{stdout}");
    assert!(stdout.contains("only in a: 1"), "{stdout}");
    assert!(stdout.contains("lodash@4.17.21"), "{stdout}");
    assert!(stdout.contains("spdx-tag-value"), "{stdout}");

    // A truncated document is a classified diagnostic and exit 1 — no
    // panic, no partial report on stdout.
    std::fs::write(&a, "{\"bomFormat\":\"CycloneDX\",\"components\":[{").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("truncated-input"), "{stderr}");
}

#[test]
fn version_and_help_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .arg("--version")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("sbomdiff "), "{stdout}");
    assert!(stdout.trim().split(' ').nth(1).unwrap().contains('.'));

    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("USAGE"), "{stdout}");
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("diff"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let output = Command::new(env!("CARGO_BIN_EXE_sbomdiff"))
        .args(["scan", "/definitely/not/a/dir"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
}

//! Robustness: no generator may panic on malformed, truncated, or
//! adversarial metadata — the attack surface §VI probes. Every metadata
//! file type is fed garbage, binary noise, and mutated real content.

use proptest::prelude::*;

use sbomdiff::generators::{studied_tools, BestPracticeGenerator, SbomGenerator};
use sbomdiff::metadata::{MetadataKind, RepoFs};
use sbomdiff::registry::Registries;

fn all_metadata_paths() -> Vec<&'static str> {
    vec![
        "go.mod",
        "go.sum",
        "app.gobin",
        "pom.xml",
        "gradle.lockfile",
        "META-INF/MANIFEST.MF",
        "pom.properties",
        "package.json",
        "package-lock.json",
        "yarn.lock",
        "pnpm-lock.yaml",
        "composer.json",
        "composer.lock",
        "requirements.txt",
        "requirements-dev.txt",
        "poetry.lock",
        "Pipfile.lock",
        "setup.py",
        "pyproject.toml",
        "setup.cfg",
        "Gemfile",
        "Gemfile.lock",
        "app.gemspec",
        "Cargo.toml",
        "Cargo.lock",
        "app.rustbin",
        "Package.swift",
        "Package.resolved",
        "Podfile",
        "Podfile.lock",
        "App.csproj",
        "packages.config",
        "packages.lock.json",
    ]
}

#[test]
fn every_kind_is_covered_by_the_fuzz_paths() {
    let covered: std::collections::BTreeSet<MetadataKind> = all_metadata_paths()
        .iter()
        .filter_map(|p| MetadataKind::detect(p))
        .collect();
    assert_eq!(covered.len(), MetadataKind::ALL.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Arbitrary text in every metadata file: nothing panics, and outputs
    /// stay structurally sane.
    #[test]
    fn tools_never_panic_on_garbage_text(content in "\\PC{0,300}") {
        let regs = Registries::generate(3);
        let mut repo = RepoFs::new("fuzz-text");
        for path in all_metadata_paths() {
            repo.add_text(path, content.clone());
        }
        for tool in studied_tools(&regs, 0.3) {
            let sbom = tool.generate(&repo);
            for c in sbom.components() {
                prop_assert!(!c.name.is_empty(), "{} emitted empty name", tool.id());
            }
        }
        let _ = BestPracticeGenerator::new(&regs).generate(&repo);
    }

    /// Arbitrary bytes (including invalid UTF-8) in every metadata file.
    #[test]
    fn tools_never_panic_on_binary_noise(content in prop::collection::vec(any::<u8>(), 0..400)) {
        let regs = Registries::generate(3);
        let mut repo = RepoFs::new("fuzz-bytes");
        for path in all_metadata_paths() {
            repo.add_bytes(path, content.clone());
        }
        for tool in studied_tools(&regs, 0.0) {
            let _ = tool.generate(&repo);
        }
    }

    /// Truncation fuzzing: valid metadata cut at arbitrary byte offsets.
    #[test]
    fn tools_never_panic_on_truncated_metadata(cut in 0usize..100) {
        let regs = Registries::generate(3);
        let originals: Vec<(&str, String)> = vec![
            ("requirements.txt", "numpy==1.19.2\nrequests[security]>=2.8.1; python_version >= '3'\n-r other.txt\n".into()),
            ("package-lock.json", "{\"lockfileVersion\": 3, \"packages\": {\"node_modules/a\": {\"version\": \"1.0.0\"}}}".into()),
            ("Cargo.toml", "[package]\nname = \"x\"\n[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\n".into()),
            ("pom.xml", "<project><dependencies><dependency><groupId>g</groupId><artifactId>a</artifactId><version>1</version></dependency></dependencies></project>".into()),
            ("pnpm-lock.yaml", "lockfileVersion: '6.0'\npackages:\n  /a@1.0.0:\n    dev: false\n".into()),
            ("Podfile.lock", "PODS:\n  - A/Sub (1.0.0):\n    - B (= 1.0)\nDEPENDENCIES:\n  - A/Sub\n".into()),
        ];
        let mut repo = RepoFs::new("fuzz-trunc");
        for (path, content) in &originals {
            let mut cut_at = (cut * content.len() / 100).min(content.len());
            while cut_at > 0 && !content.is_char_boundary(cut_at) {
                cut_at -= 1;
            }
            repo.add_text(*path, &content[..cut_at]);
        }
        for tool in studied_tools(&regs, 0.0) {
            let _ = tool.generate(&repo);
        }
    }

    /// Hostile names/versions flow through serialization unharmed.
    #[test]
    fn sbom_documents_survive_hostile_strings(
        name in "[\\PC&&[^\\x00]]{1,30}",
        version in "\\PC{0,20}",
    ) {
        use sbomdiff::sbomfmt::SbomFormat;
        use sbomdiff::types::{Component, Sbom};
        let mut sbom = Sbom::new("fuzz", "0").with_subject("s");
        sbom.push(Component::new(
            sbomdiff::Ecosystem::Python,
            name.clone(),
            Some(version.clone()),
        ));
        for format in [SbomFormat::CycloneDx, SbomFormat::Spdx] {
            let text = format.serialize(&sbom);
            let back = format.parse(&text).expect("own output must parse");
            prop_assert_eq!(back.components()[0].name.as_str(), name.as_str());
            prop_assert_eq!(back.components()[0].version.as_deref(), Some(version.as_str()));
        }
    }
}

/// Higher registry failure rates can only shrink sbom-tool's output.
#[test]
fn sbom_tool_failure_rate_is_monotone() {
    use sbomdiff::generators::ToolEmulator;
    let regs = Registries::generate(8);
    let mut repo = RepoFs::new("monotone");
    repo.add_text(
        "requirements.txt",
        "requests>=2.8.1\nflask\nnumpy==1.19.2\n",
    );
    let full = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo).len();
    let mut prev = full;
    for rate in [0.2, 0.5, 0.9, 1.0] {
        let n = ToolEmulator::sbom_tool(&regs, rate).generate(&repo).len();
        assert!(n <= full, "rate {rate}: {n} > {full}");
        let _ = prev;
        prev = n;
    }
    assert_eq!(
        ToolEmulator::sbom_tool(&regs, 1.0).generate(&repo).len(),
        0,
        "total outage must yield an empty SBOM"
    );
}

//! Integration tests that pin the paper's headline findings: each test is
//! one claim from the evaluation, asserted over a (smaller) corpus.

use std::collections::BTreeSet;

use sbomdiff::attack::evaluate::evaluate_catalog;
use sbomdiff::corpus::{Corpus, CorpusConfig, CorpusStats};
use sbomdiff::diff::PrecisionRecall;
use sbomdiff::generators::{studied_tools, SbomGenerator};
use sbomdiff::registry::Registries;
use sbomdiff::resolver::{dry_run, Platform};
use sbomdiff::{Ecosystem, Version};

fn setup() -> (Registries, Corpus) {
    let regs = Registries::generate(2024);
    let corpus = Corpus::build(
        &regs,
        &CorpusConfig {
            repos_per_language: 60,
            seed: 2024 ^ 0xc0ffee,
        },
    );
    (regs, corpus)
}

/// Fig. 1: per-language package-count frontrunners match §IV-A.
#[test]
fn fig1_winners_match_paper() {
    let (regs, corpus) = setup();
    let tools = studied_tools(&regs, 0.12);
    let totals = |eco: Ecosystem| -> [usize; 4] {
        let mut t = [0usize; 4];
        for repo in corpus.language(eco) {
            for (i, tool) in tools.iter().enumerate() {
                t[i] += tool.generate(repo).len();
            }
        }
        t
    };
    // Indices: 0 Trivy, 1 Syft, 2 sbom-tool, 3 GitHub DG.
    for eco in [
        Ecosystem::Python,
        Ecosystem::Php,
        Ecosystem::Ruby,
        Ecosystem::Rust,
    ] {
        let t = totals(eco);
        let max = *t.iter().max().unwrap();
        assert_eq!(t[3], max, "{eco}: GitHub DG should find the most ({t:?})");
    }
    {
        let t = totals(Ecosystem::DotNet);
        assert_eq!(
            t[2],
            *t.iter().max().unwrap(),
            ".NET: sbom-tool wins ({t:?})"
        );
    }
    {
        let t = totals(Ecosystem::JavaScript);
        assert_eq!(t[1], *t.iter().max().unwrap(), "JS: Syft wins ({t:?})");
    }
    for eco in [Ecosystem::Go, Ecosystem::Swift] {
        let t = totals(eco);
        // Trivy and sbom-tool are the frontrunners: both above Syft & GitHub.
        let runners = t[0].min(t[2]);
        assert!(
            runners >= t[1].min(t[3]) && t[0].max(t[2]) == *t.iter().max().unwrap(),
            "{eco}: Trivy/sbom-tool should lead ({t:?})"
        );
    }
}

/// Table III: accuracy ordering — sbom-tool ≫ Trivy = Syft > GitHub DG in
/// precision; recall bands match the paper's magnitudes.
#[test]
fn table3_accuracy_ordering() {
    let (regs, corpus) = setup();
    let tools = studied_tools(&regs, 0.12);
    let registry = regs.for_ecosystem(Ecosystem::Python);
    let platform = Platform::default();
    let mut totals = [PrecisionRecall::default(); 4];
    for repo in corpus.language(Ecosystem::Python) {
        let truth: BTreeSet<(String, String)> =
            dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                .keys()
                .collect();
        for (i, tool) in tools.iter().enumerate() {
            let sbom = tool.generate(repo);
            let reported: BTreeSet<(String, String)> = sbom
                .components()
                .iter()
                .map(|c| {
                    let v = c
                        .version
                        .as_deref()
                        .map(|v| {
                            Version::parse(v)
                                .map(|p| p.canonical())
                                .unwrap_or_else(|_| v.to_string())
                        })
                        .unwrap_or_default();
                    (c.name.to_string(), v)
                })
                .collect();
            totals[i].merge(PrecisionRecall::score(&reported, &truth));
        }
    }
    let (trivy, syft, sbom_tool, github) = (totals[0], totals[1], totals[2], totals[3]);
    // Trivy and Syft are identical on requirements.txt.
    assert_eq!(trivy.true_positives, syft.true_positives);
    // sbom-tool dominates everyone on both metrics (Table III).
    assert!(sbom_tool.precision() > trivy.precision() + 0.15);
    assert!(sbom_tool.recall() > trivy.recall() + 0.3);
    // GitHub has the lowest precision (ranges verbatim).
    assert!(github.precision() < trivy.precision());
    // Trivy/Syft recall is low — most dependencies are missed (§V-H:
    // "most SBOM tools fail to detect over 90% of the dependencies").
    assert!(trivy.recall() < 0.2, "trivy recall {:.2}", trivy.recall());
}

/// Table IV: all samples (paper rows and extensions) reproduce cell-exact.
#[test]
fn table4_reproduces() {
    let regs = Registries::generate(2024);
    for outcome in evaluate_catalog(&regs, true) {
        assert!(
            outcome.matches_expectation,
            "{} diverged: {:?}",
            outcome.id, outcome.cells
        );
    }
}

/// §V statistics reproduce within tolerance.
#[test]
fn section_v_statistics() {
    let (_regs, corpus) = setup();
    let py = CorpusStats::compute(Ecosystem::Python, corpus.language(Ecosystem::Python));
    assert!(
        (0.82..=1.0).contains(&py.raw_only_share),
        "{}",
        py.raw_only_share
    );
    assert!(
        (0.36..=0.56).contains(&py.pinned_requirements_share),
        "{}",
        py.pinned_requirements_share
    );
    let js = CorpusStats::compute(
        Ecosystem::JavaScript,
        corpus.language(Ecosystem::JavaScript),
    );
    assert!(
        (0.30..=0.65).contains(&js.raw_only_share),
        "{}",
        js.raw_only_share
    );
    assert!(
        (0.60..=0.90).contains(&js.dev_dep_share),
        "{}",
        js.dev_dep_share
    );
}

/// §V-E: the same Java package is named three different ways; the same Go
/// module version is spelled two ways.
#[test]
fn naming_inconsistencies_reproduce() {
    let regs = Registries::generate(5);
    let mut repo = sbomdiff::metadata::RepoFs::new("naming");
    repo.add_text(
        "gradle.lockfile",
        "org.slf4j:slf4j-api:2.0.7=runtimeClasspath\n",
    );
    repo.add_text("go.mod", "module m\nrequire golang.org/x/sync v0.3.0\n");
    let names: BTreeSet<String> = studied_tools(&regs, 0.0)
        .iter()
        .flat_map(|t| {
            t.generate(&repo)
                .components()
                .iter()
                .filter(|c| c.ecosystem == Ecosystem::Java)
                .map(|c| c.name.to_string())
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(
        names,
        BTreeSet::from([
            "org.slf4j:slf4j-api".to_string(),
            "slf4j-api".to_string(),
            "org.slf4j.slf4j-api".to_string(),
        ])
    );
    let go_versions: BTreeSet<String> = studied_tools(&regs, 0.0)
        .iter()
        .flat_map(|t| {
            t.generate(&repo)
                .components()
                .iter()
                .filter(|c| c.ecosystem == Ecosystem::Go)
                .filter_map(|c| c.version.as_deref().map(String::from))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(
        go_versions,
        BTreeSet::from(["0.3.0".to_string(), "v0.3.0".to_string()])
    );
}

/// §VII: the best-practice generator beats every studied tool against the
/// pip ground truth.
#[test]
fn best_practice_dominates_ground_truth() {
    let (regs, corpus) = setup();
    let registry = regs.for_ecosystem(Ecosystem::Python);
    let platform = Platform::default();
    let bp = sbomdiff::generators::BestPracticeGenerator::new(&regs);
    let mut total = PrecisionRecall::default();
    for repo in corpus.language(Ecosystem::Python).iter().take(25) {
        let truth: BTreeSet<(String, String)> =
            dry_run(registry, &repo.text_files(), "requirements.txt", &platform)
                .keys()
                .collect();
        let sbom = bp.generate(repo);
        let reported: BTreeSet<(String, String)> = sbom
            .components()
            .iter()
            .map(|c| {
                (
                    sbomdiff::types::name::normalize(Ecosystem::Python, &c.name),
                    c.version.as_deref().unwrap_or_default().to_string(),
                )
            })
            .collect();
        total.merge(PrecisionRecall::score(&reported, &truth));
    }
    assert!(
        total.recall() > 0.9,
        "best practice recall {:.2}",
        total.recall()
    );
}

//! Golden fixtures: realistic third-party SBOM documents (syft-style
//! CycloneDX 1.4, trivy-style SPDX 2.2 JSON, sbom-tool-style SPDX 2.3
//! tag-value) ingest to pinned summaries, and fixture pairs diff to
//! blessed reports.
//!
//! Any change to the ingester's observable behavior — component
//! materialization, metadata capture, dependency counting, diagnostics —
//! shows up as a byte diff against `tests/fixtures/ingest/golden/`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test ingest_golden
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use sbomdiff::diff::{jaccard, key_set};
use sbomdiff::sbomfmt::ingest::{ingest_bytes, ingest_reader, IngestOptions, IngestOutcome};

const FIXTURES: [&str; 3] = [
    "syft-cdx-1.4.json",
    "trivy-spdx-2.2.json",
    "sbomtool-spdx-2.3.spdx",
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ingest")
}

fn load(name: &str) -> Vec<u8> {
    std::fs::read(fixture_dir().join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn ingest_fixture(name: &str) -> IngestOutcome {
    let outcome = ingest_bytes(&load(name));
    assert!(
        outcome.fatal.is_none(),
        "fixture {name} must ingest cleanly: {:?}",
        outcome.fatal
    );
    outcome
}

/// Renders the full observable state of an ingested document as stable
/// text: what the golden files pin.
fn summary(outcome: &IngestOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "format: {}",
        outcome.format.map_or("unknown", |f| f.label())
    );
    let _ = writeln!(
        s,
        "spec_version: {}",
        outcome.stats.spec_version.as_deref().unwrap_or("-")
    );
    let _ = writeln!(s, "tool: {}", outcome.sbom.meta.tool_name);
    let _ = writeln!(s, "tool_version: {}", outcome.sbom.meta.tool_version);
    let _ = writeln!(s, "subject: {}", outcome.sbom.meta.subject);
    let _ = writeln!(s, "dependency_edges: {}", outcome.stats.dependency_edges);
    let _ = writeln!(s, "diagnostics: {}", outcome.sbom.diagnostics().len());
    for diag in outcome.sbom.diagnostics() {
        let _ = writeln!(s, "  {diag}");
    }
    let _ = writeln!(s, "components: {}", outcome.sbom.len());
    for c in outcome.sbom.components() {
        let _ = writeln!(
            s,
            "  {} {} {} purl={} found_in={} scope={}",
            c.ecosystem.label(),
            c.name,
            c.version.as_deref().unwrap_or("-"),
            c.purl.as_ref().map_or("-".into(), |p| p.to_string()),
            if c.found_in.is_empty() {
                "-"
            } else {
                c.found_in.as_str()
            },
            c.scope.map_or("-", |sc| sc.label()),
        );
    }
    s
}

/// Renders the differential report for a fixture pair as stable text.
fn diff_report(a: &IngestOutcome, b: &IngestOutcome) -> String {
    let keys_a = key_set(&a.sbom);
    let keys_b = key_set(&b.sbom);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "jaccard: {}",
        jaccard(&keys_a, &keys_b).map_or("-".into(), |j| format!("{j:.3}"))
    );
    let _ = writeln!(s, "intersection: {}", keys_a.intersection(&keys_b).count());
    for (label, mine, other) in [("only_a", &keys_a, &keys_b), ("only_b", &keys_b, &keys_a)] {
        let only: Vec<_> = mine.difference(other).collect();
        let _ = writeln!(s, "{label}: {}", only.len());
        for k in only {
            let _ = writeln!(s, "  {k}");
        }
    }
    s
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_dir().join("golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); bless with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; bless intentional changes with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fixtures_ingest_to_pinned_summaries() {
    for name in FIXTURES {
        let outcome = ingest_fixture(name);
        check_golden(&format!("{name}.summary.txt"), &summary(&outcome));
    }
}

#[test]
fn fixture_pairs_diff_to_blessed_reports() {
    let outcomes: Vec<_> = FIXTURES.iter().map(|n| ingest_fixture(n)).collect();
    for (i, j) in [(0, 1), (1, 2), (0, 2)] {
        let name = format!(
            "{}_vs_{}.diff.txt",
            FIXTURES[i].split('.').next().unwrap(),
            FIXTURES[j].split('.').next().unwrap()
        );
        check_golden(&name, &diff_report(&outcomes[i], &outcomes[j]));
    }
}

#[test]
fn streaming_matches_in_memory_on_every_fixture() {
    for name in FIXTURES {
        let bytes = load(name);
        let oneshot = ingest_bytes(&bytes);
        for chunk in [512usize, 4096] {
            let opts = IngestOptions {
                chunk_size: chunk,
                fault_key: String::new(),
            };
            let streamed = ingest_reader(bytes.as_slice(), opts, &mut |_| {});
            assert_eq!(streamed.format, oneshot.format, "{name}");
            let ser =
                |o: &IngestOutcome| sbomdiff::sbomfmt::SbomFormat::CycloneDx.serialize(&o.sbom);
            assert_eq!(ser(&streamed), ser(&oneshot), "{name} chunk={chunk}");
        }
    }
}

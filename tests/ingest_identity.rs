//! Ingest-vs-emit identity: every document the studied tool emulators and
//! the best-practice generator emit, in every serialization format, must
//! re-ingest through the streaming reader to a byte-identical document —
//! for every corpus repo × profile, with jobs=1 and jobs=4 emitting
//! byte-identical inputs, and an empty diff against itself.
//!
//! This is the paper's differential method turned on our own consumption
//! path: the emit side and the ingest side are independent
//! implementations, so any divergence between them is a correctness bug
//! in one of the two.

use sbomdiff::corpus::{Corpus, CorpusConfig};
use sbomdiff::diff::key_set;
use sbomdiff::generators::{studied_tools, BestPracticeGenerator, ParseCache, SbomGenerator};
use sbomdiff::registry::Registries;
use sbomdiff::sbomfmt::ingest::{ingest_bytes, ingest_reader, IngestOptions};
use sbomdiff::sbomfmt::SbomFormat;
use sbomdiff::Ecosystem;

const FORMATS: [SbomFormat; 3] = [
    SbomFormat::CycloneDx,
    SbomFormat::Spdx,
    SbomFormat::SpdxTagValue,
];

#[test]
fn every_emitted_document_reingests_to_identity() {
    let regs = Registries::generate(271);
    let config = CorpusConfig {
        repos_per_language: 4,
        seed: 828,
    };
    for eco in [Ecosystem::Python, Ecosystem::JavaScript, Ecosystem::Rust] {
        let repos = Corpus::build_language(&regs, &config, eco);
        let tools = studied_tools(&regs, 0.0);
        for repo in &repos {
            let mut sboms: Vec<_> = tools.iter().map(|t| t.generate(repo)).collect();
            sboms.push(BestPracticeGenerator::new(&regs).generate(repo));
            for sbom in &sboms {
                for format in FORMATS {
                    let text = format.serialize(sbom);
                    let outcome = ingest_bytes(text.as_bytes());
                    assert!(
                        outcome.fatal.is_none(),
                        "{:?} for {} did not re-ingest: {:?}",
                        format,
                        repo.name(),
                        outcome.fatal
                    );
                    // Identity: re-serializing the ingested document
                    // reproduces the emitted bytes exactly.
                    assert_eq!(
                        format.serialize(&outcome.sbom),
                        text,
                        "{:?} ingest of {} is not the identity",
                        format,
                        repo.name()
                    );
                    // …so the diff against itself is empty.
                    let emitted = key_set(sbom);
                    let ingested = key_set(&outcome.sbom);
                    assert!(emitted.difference(&ingested).next().is_none());
                    assert!(ingested.difference(&emitted).next().is_none());
                    // Streaming in small chunks sees the same document.
                    let opts = IngestOptions {
                        chunk_size: 512,
                        fault_key: String::new(),
                    };
                    let streamed = ingest_reader(text.as_bytes(), opts, &mut |_| {});
                    assert_eq!(format.serialize(&streamed.sbom), text);
                }
            }
        }
    }
}

#[test]
fn parallel_emit_is_byte_identical_then_reingests() {
    let regs = Registries::generate(99);
    let repos = Corpus::build_language(
        &regs,
        &CorpusConfig {
            repos_per_language: 6,
            seed: 515,
        },
        Ecosystem::Go,
    );
    let tools = studied_tools(&regs, 0.0);
    let emit = |jobs: usize| -> Vec<String> {
        let cache = ParseCache::new();
        repos
            .iter()
            .flat_map(|repo| {
                let sboms = sbomdiff::parallel::par_map(jobs, &tools, |_, t| {
                    t.generate_with_cache(repo, &cache)
                });
                sboms
                    .iter()
                    .map(|s| SbomFormat::CycloneDx.serialize(s))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    let serial = emit(1);
    let parallel = emit(4);
    assert_eq!(
        serial, parallel,
        "jobs=1 and jobs=4 emits must be identical"
    );
    for text in &serial {
        let outcome = ingest_bytes(text.as_bytes());
        assert!(outcome.fatal.is_none());
        assert_eq!(&SbomFormat::CycloneDx.serialize(&outcome.sbom), text);
    }
}

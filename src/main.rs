//! `sbomdiff` CLI: scan a real directory the way each studied SBOM tool
//! would, emit CycloneDX/SPDX, or diff all tools' views of the same tree —
//! or diff any two externally generated SBOM documents straight from disk.
//!
//! ```text
//! sbomdiff scan <dir> [--tool trivy|syft|sbom-tool|github-dg|best-practice]
//!                     [--format cyclonedx|spdx|spdx-tag-value] [--seed N]
//!                     [--quality]
//! sbomdiff diff <dir> [--seed N] [--jobs N] [--match exact|tiered] [--explain]
//! sbomdiff diff <a.sbom> <b.sbom> [--match exact|tiered] [--explain]
//! ```
//!
//! `diff <dir>` scans the tree with all four studied tools in parallel
//! (`--jobs`, default: available parallelism), sharing one metadata-parse
//! cache; the output is byte-identical for every worker count. `diff` with
//! two file arguments streams both documents through the bounded-memory
//! ingester (CycloneDX 1.4/1.5 JSON, SPDX 2.2/2.3 JSON or tag-value — the
//! sides need not share a format) and prints the differential report.

use sbomdiff::generators::{BestPracticeGenerator, ParseCache, SbomGenerator, ToolEmulator};
use sbomdiff::metadata::RepoFs;
use sbomdiff::registry::Registries;
use sbomdiff::sbomfmt::{ingest, SbomFormat};

const USAGE: &str = "\
sbomdiff - differential SBOM analysis over a directory tree

USAGE:
    sbomdiff scan <dir> [--tool trivy|syft|sbom-tool|github-dg|best-practice]
                        [--format cyclonedx|spdx|spdx-tag-value] [--seed N]
                        [--quality]
    sbomdiff diff <dir> [--seed N] [--jobs N] [--match exact|tiered] [--explain]
    sbomdiff diff <a.sbom> <b.sbom> [--match exact|tiered] [--explain]
    sbomdiff --help | --version

COMMANDS:
    scan    scan <dir> the way one studied tool would and print its SBOM
    diff    scan <dir> with all four studied tools and report disagreements,
            or — given two file paths — stream-ingest and diff any two
            external SBOM documents (CycloneDX 1.4/1.5 JSON, SPDX 2.2/2.3
            JSON or tag-value)

OPTIONS:
    --tool <NAME>      emulator profile for `scan` (default best-practice)
    --format <FMT>     output format for `scan`: cyclonedx (default), spdx,
                       or spdx-tag-value
    --seed <N>         package-registry world seed (default 42)
    --quality          with `scan`, print an NTIA-minimum quality scorecard
                       for the generated document on stderr (per-check
                       pass/miss counts and the weighted 0-100 total)
    --jobs <N>         worker threads for `diff` (default: SBOMDIFF_JOBS or cores)
    --match <MODE>     component identity for `diff`: exact (default), or
                       tiered — multi-tier matching (PURL, alias table,
                       ecosystem normalization, LSH-gated fuzzy) reporting
                       jaccard_exact vs jaccard_matched side by side
    --explain          with --match=tiered, dump every non-exact match with
                       its tier and score
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("sbomdiff {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut positionals: Vec<String> = Vec::new();
    let mut tool = "best-practice".to_string();
    let mut format = SbomFormat::CycloneDx;
    let mut seed = 42u64;
    let mut jobs = 0usize;
    let mut tiered = false;
    let mut explain = false;
    let mut quality = false;
    let set_match = |mode: &str| match mode {
        "exact" => Ok(false),
        "tiered" => Ok(true),
        other => Err(other.to_string()),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--explain" => explain = true,
            "--quality" => quality = true,
            "--match" => {
                i += 1;
                let mode = args.get(i).cloned().unwrap_or_default();
                match set_match(&mode) {
                    Ok(t) => tiered = t,
                    Err(bad) => {
                        eprintln!("unknown match mode: {bad} (exact|tiered)");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--match=") => match set_match(&other["--match=".len()..]) {
                Ok(t) => tiered = t,
                Err(bad) => {
                    eprintln!("unknown match mode: {bad} (exact|tiered)");
                    std::process::exit(2);
                }
            },
            "--tool" => {
                i += 1;
                tool = args.get(i).cloned().unwrap_or_default();
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("spdx") => SbomFormat::Spdx,
                    Some("spdx-tag-value") => SbomFormat::SpdxTagValue,
                    _ => SbomFormat::CycloneDx,
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
            }
            other if positionals.len() < 3 && !other.starts_with('-') => {
                positionals.push(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // `diff a.sbom b.sbom`: two external documents, no directory scan.
    if positionals.len() == 3 && positionals[0] == "diff" {
        diff_files(&positionals[1], &positionals[2], tiered, explain, jobs);
        return;
    }
    let [command, dir] = positionals.as_slice() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let repo = match RepoFs::from_dir(dir) {
        Ok(repo) => repo,
        Err(e) => {
            eprintln!("error reading {dir}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[sbomdiff] {}: {} metadata file(s) found",
        repo.name(),
        repo.metadata_files().len()
    );
    let registries = Registries::generate(seed);

    match command.as_str() {
        "scan" => {
            let generator: Box<dyn SbomGenerator + '_> = match tool.as_str() {
                "trivy" => Box::new(ToolEmulator::trivy()),
                "syft" => Box::new(ToolEmulator::syft()),
                "sbom-tool" => Box::new(ToolEmulator::sbom_tool(&registries, 0.0)),
                "github-dg" | "github" => Box::new(ToolEmulator::github_dg()),
                "best-practice" => Box::new(BestPracticeGenerator::new(&registries)),
                other => {
                    eprintln!(
                        "unknown tool: {other} (trivy|syft|sbom-tool|github-dg|best-practice)"
                    );
                    std::process::exit(2);
                }
            };
            let sbom = generator.generate(&repo);
            eprintln!(
                "[sbomdiff] {} profile reports {} component(s)",
                generator.id().label(),
                sbom.len()
            );
            // Diagnostics go to stderr so the document on stdout stays a
            // clean SBOM (taxonomy: DESIGN.md §13).
            for diag in sbom.diagnostics() {
                eprintln!("[diag] {diag}");
            }
            if quality {
                // The scorecard joins the diagnostics on stderr so stdout
                // stays a clean, pipeable SBOM document.
                use sbomdiff::diff::TextTable;
                use sbomdiff::quality::{evaluate, QualityCheck};
                let report = evaluate(&sbom);
                let mut table =
                    TextTable::new(["Check", "weight", "passed", "missing", "malformed", "score"]);
                for check in QualityCheck::ALL {
                    let r = report.check(check);
                    table.row([
                        check.label().to_string(),
                        check.weight().to_string(),
                        r.passed.to_string(),
                        r.missing.to_string(),
                        r.malformed.to_string(),
                        format!("{:.1}", r.score()),
                    ]);
                }
                eprint!("{table}");
                eprintln!(
                    "[sbomdiff] quality: {:.1}/100 weighted total over {} component(s)",
                    report.score(),
                    report.components
                );
                for diag in &report.diagnostics {
                    eprintln!("[quality] {diag}");
                }
            }
            println!("{}", format.serialize(&sbom));
        }
        "diff" => {
            use sbomdiff::diff::{jaccard, key_set, TextTable};
            let tools = sbomdiff::generators::studied_tools(&registries, 0.0);
            // One worker per tool, one shared parse of each manifest.
            let jobs = sbomdiff::parallel::Jobs::new(jobs).get();
            let cache = ParseCache::new();
            let sboms = sbomdiff::parallel::par_map(jobs, &tools, |_, t| {
                t.generate_with_cache(&repo, &cache)
            });
            let mut counts = TextTable::new(["Tool", "components", "duplicates", "diagnostics"]);
            for (t, s) in tools.iter().zip(&sboms) {
                counts.row([
                    t.id().label().to_string(),
                    s.len().to_string(),
                    s.duplicate_entries().to_string(),
                    s.diagnostics().len().to_string(),
                ]);
            }
            println!("{counts}");
            for (t, s) in tools.iter().zip(&sboms) {
                for diag in s.diagnostics() {
                    println!("{}: {diag}", t.id().label());
                }
            }
            let fmt_j = |j: Option<f64>| j.map(|j| format!("{j:.3}")).unwrap_or_else(|| "-".into());
            if tiered {
                // Exact and tiered similarity side by side, per tool pair
                // (§V-E: the gap is the naming-convention share of drift).
                use sbomdiff::diff::MatchedDiff;
                let cfg = sbomdiff::matching::MatchConfig {
                    jobs,
                    ..sbomdiff::matching::MatchConfig::default()
                };
                let mut pairs =
                    TextTable::new(["Pair", "Jaccard(exact)", "Jaccard(matched)", "recovered"]);
                let mut explains = String::new();
                for a in 0..sboms.len() {
                    for b in (a + 1)..sboms.len() {
                        let label =
                            format!("{} vs {}", tools[a].id().label(), tools[b].id().label());
                        let d = MatchedDiff::compute(&sboms[a], &sboms[b], &cfg);
                        pairs.row([
                            label.clone(),
                            fmt_j(d.jaccard_exact()),
                            fmt_j(d.jaccard_matched()),
                            d.recovered().to_string(),
                        ]);
                        if explain {
                            explains.push_str(&format!("=== {label}\n{}", d.report.explain()));
                        }
                    }
                }
                println!("{pairs}");
                print!("{explains}");
            } else {
                let mut pairs = TextTable::new(["Pair", "Jaccard"]);
                for a in 0..sboms.len() {
                    for b in (a + 1)..sboms.len() {
                        let j = jaccard(&key_set(&sboms[a]), &key_set(&sboms[b]));
                        pairs.row([
                            format!("{} vs {}", tools[a].id().label(), tools[b].id().label()),
                            fmt_j(j),
                        ]);
                    }
                }
                println!("{pairs}");
            }
            // Show the disagreements concretely: keys reported by exactly
            // one tool.
            for (t, s) in tools.iter().zip(&sboms) {
                let mine = key_set(s);
                let others: std::collections::BTreeSet<_> = sboms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| tools[*i].id() != t.id())
                    .flat_map(|(_, other)| key_set(other))
                    .collect();
                let unique: Vec<_> = mine.difference(&others).take(5).collect();
                if !unique.is_empty() {
                    println!("only {} sees:", t.id().label());
                    for k in unique {
                        println!("  {k}");
                    }
                }
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}

/// Diffs two externally generated SBOM documents by streaming each from
/// disk through the bounded-memory ingester. Exits 1 on a fatal
/// ingestion diagnostic; corrupt input is reported, never a panic.
/// With `tiered`, the multi-tier matcher's report is appended to the
/// exact diff (and `explain` dumps every non-exact match).
fn diff_files(a_path: &str, b_path: &str, tiered: bool, explain: bool, jobs: usize) {
    use sbomdiff::diff::{jaccard, key_set, TextTable};

    let mut outcomes = Vec::with_capacity(2);
    for path in [a_path, b_path] {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        };
        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
        let opts = ingest::IngestOptions {
            // Key fault injection by document size, mirroring the service,
            // so chaos plans behave identically against both front ends.
            fault_key: size.to_string(),
            ..ingest::IngestOptions::default()
        };
        let mut last_report = 0usize;
        let outcome = ingest::ingest_reader(file, opts, &mut |stats| {
            // Progress for very large documents, throttled so small ones
            // stay quiet.
            if stats.components >= last_report + 10_000 {
                last_report = stats.components;
                eprintln!(
                    "[sbomdiff] {path}: {} component(s), {} byte(s) so far",
                    stats.components, stats.bytes_read
                );
            }
        });
        for diag in outcome.sbom.diagnostics() {
            eprintln!("[diag] {path}: {diag}");
        }
        if let Some(fatal) = &outcome.fatal {
            eprintln!("[diag] {path}: {fatal}");
            std::process::exit(1);
        }
        eprintln!(
            "[sbomdiff] {path}: {}{} — {} component(s), {} byte(s)",
            outcome.format.map_or("unknown format", |f| f.label()),
            outcome
                .stats
                .spec_version
                .as_deref()
                .map(|v| format!(" {v}"))
                .unwrap_or_default(),
            outcome.stats.components,
            outcome.stats.bytes_read
        );
        outcomes.push(outcome);
    }
    let mut counts = TextTable::new(["Document", "format", "components", "duplicates", "diags"]);
    for (path, o) in [a_path, b_path].iter().zip(&outcomes) {
        counts.row([
            path.to_string(),
            o.format.map_or("unknown", |f| f.label()).to_string(),
            o.sbom.len().to_string(),
            o.sbom.duplicate_entries().to_string(),
            o.sbom.diagnostics().len().to_string(),
        ]);
    }
    println!("{counts}");
    let keys_a = key_set(&outcomes[0].sbom);
    let keys_b = key_set(&outcomes[1].sbom);
    let j = jaccard(&keys_a, &keys_b);
    println!(
        "jaccard: {}",
        j.map(|j| format!("{j:.3}")).unwrap_or_else(|| "-".into())
    );
    println!("intersection: {}", keys_a.intersection(&keys_b).count());
    const KEY_SAMPLE: usize = 20;
    for (label, mine, other) in [
        ("only in a", &keys_a, &keys_b),
        ("only in b", &keys_b, &keys_a),
    ] {
        let only: Vec<_> = mine.difference(other).collect();
        println!("{label}: {}", only.len());
        for k in only.iter().take(KEY_SAMPLE) {
            println!("  {k}");
        }
        if only.len() > KEY_SAMPLE {
            println!("  … and {} more", only.len() - KEY_SAMPLE);
        }
    }
    if tiered {
        let cfg = sbomdiff::matching::MatchConfig {
            jobs: sbomdiff::parallel::Jobs::new(jobs).get(),
            ..sbomdiff::matching::MatchConfig::default()
        };
        let d = sbomdiff::diff::MatchedDiff::compute(&outcomes[0].sbom, &outcomes[1].sbom, &cfg);
        let fmt_j = |j: Option<f64>| j.map(|j| format!("{j:.3}")).unwrap_or_else(|| "-".into());
        println!("jaccard_exact: {}", fmt_j(d.jaccard_exact()));
        println!("jaccard_matched: {}", fmt_j(d.jaccard_matched()));
        let breakdown = d
            .tier_breakdown()
            .iter()
            .map(|(label, n)| format!("{label}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("tiers: {breakdown}");
        if explain {
            print!("{}", d.report.explain());
        }
    }
}

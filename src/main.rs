//! `sbomdiff` CLI: scan a real directory the way each studied SBOM tool
//! would, emit CycloneDX/SPDX, or diff all tools' views of the same tree.
//!
//! ```text
//! sbomdiff scan <dir> [--tool trivy|syft|sbom-tool|github-dg|best-practice]
//!                     [--format cyclonedx|spdx] [--seed N]
//! sbomdiff diff <dir> [--seed N] [--jobs N]
//! ```
//!
//! `diff` scans the tree with all four studied tools in parallel (`--jobs`,
//! default: available parallelism), sharing one metadata-parse cache; the
//! output is byte-identical for every worker count.

use sbomdiff::generators::{BestPracticeGenerator, ParseCache, SbomGenerator, ToolEmulator};
use sbomdiff::metadata::RepoFs;
use sbomdiff::registry::Registries;
use sbomdiff::sbomfmt::SbomFormat;

const USAGE: &str = "\
sbomdiff - differential SBOM analysis over a directory tree

USAGE:
    sbomdiff scan <dir> [--tool trivy|syft|sbom-tool|github-dg|best-practice]
                        [--format cyclonedx|spdx] [--seed N]
    sbomdiff diff <dir> [--seed N] [--jobs N]
    sbomdiff --help | --version

COMMANDS:
    scan    scan <dir> the way one studied tool would and print its SBOM
    diff    scan <dir> with all four studied tools and report disagreements

OPTIONS:
    --tool <NAME>      emulator profile for `scan` (default best-practice)
    --format <FMT>     output format for `scan`: cyclonedx (default) or spdx
    --seed <N>         package-registry world seed (default 42)
    --jobs <N>         worker threads for `diff` (default: SBOMDIFF_JOBS or cores)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("sbomdiff {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut command = None;
    let mut dir = None;
    let mut tool = "best-practice".to_string();
    let mut format = SbomFormat::CycloneDx;
    let mut seed = 42u64;
    let mut jobs = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--tool" => {
                i += 1;
                tool = args.get(i).cloned().unwrap_or_default();
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("spdx") => SbomFormat::Spdx,
                    _ => SbomFormat::CycloneDx,
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
            }
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (Some(command), Some(dir)) = (command, dir) else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let repo = match RepoFs::from_dir(&dir) {
        Ok(repo) => repo,
        Err(e) => {
            eprintln!("error reading {dir}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[sbomdiff] {}: {} metadata file(s) found",
        repo.name(),
        repo.metadata_files().len()
    );
    let registries = Registries::generate(seed);

    match command.as_str() {
        "scan" => {
            let generator: Box<dyn SbomGenerator + '_> = match tool.as_str() {
                "trivy" => Box::new(ToolEmulator::trivy()),
                "syft" => Box::new(ToolEmulator::syft()),
                "sbom-tool" => Box::new(ToolEmulator::sbom_tool(&registries, 0.0)),
                "github-dg" | "github" => Box::new(ToolEmulator::github_dg()),
                "best-practice" => Box::new(BestPracticeGenerator::new(&registries)),
                other => {
                    eprintln!(
                        "unknown tool: {other} (trivy|syft|sbom-tool|github-dg|best-practice)"
                    );
                    std::process::exit(2);
                }
            };
            let sbom = generator.generate(&repo);
            eprintln!(
                "[sbomdiff] {} profile reports {} component(s)",
                generator.id().label(),
                sbom.len()
            );
            // Diagnostics go to stderr so the document on stdout stays a
            // clean SBOM (taxonomy: DESIGN.md §13).
            for diag in sbom.diagnostics() {
                eprintln!("[diag] {diag}");
            }
            println!("{}", format.serialize(&sbom));
        }
        "diff" => {
            use sbomdiff::diff::{jaccard, key_set, TextTable};
            let tools = sbomdiff::generators::studied_tools(&registries, 0.0);
            // One worker per tool, one shared parse of each manifest.
            let jobs = sbomdiff::parallel::Jobs::new(jobs).get();
            let cache = ParseCache::new();
            let sboms = sbomdiff::parallel::par_map(jobs, &tools, |_, t| {
                t.generate_with_cache(&repo, &cache)
            });
            let mut counts = TextTable::new(["Tool", "components", "duplicates", "diagnostics"]);
            for (t, s) in tools.iter().zip(&sboms) {
                counts.row([
                    t.id().label().to_string(),
                    s.len().to_string(),
                    s.duplicate_entries().to_string(),
                    s.diagnostics().len().to_string(),
                ]);
            }
            println!("{counts}");
            for (t, s) in tools.iter().zip(&sboms) {
                for diag in s.diagnostics() {
                    println!("{}: {diag}", t.id().label());
                }
            }
            let mut pairs = TextTable::new(["Pair", "Jaccard"]);
            for a in 0..sboms.len() {
                for b in (a + 1)..sboms.len() {
                    let j = jaccard(&key_set(&sboms[a]), &key_set(&sboms[b]));
                    pairs.row([
                        format!("{} vs {}", tools[a].id().label(), tools[b].id().label()),
                        j.map(|j| format!("{j:.3}")).unwrap_or_else(|| "-".into()),
                    ]);
                }
            }
            println!("{pairs}");
            // Show the disagreements concretely: keys reported by exactly
            // one tool.
            for (t, s) in tools.iter().zip(&sboms) {
                let mine = key_set(s);
                let others: std::collections::BTreeSet<_> = sboms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| tools[*i].id() != t.id())
                    .flat_map(|(_, other)| key_set(other))
                    .collect();
                let unique: Vec<_> = mine.difference(&others).take(5).collect();
                if !unique.is_empty() {
                    println!("only {} sees:", t.id().label());
                    for k in unique {
                        println!("  {k}");
                    }
                }
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}

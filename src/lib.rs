//! # sbomdiff
//!
//! A differential-analysis harness for metadata-based SBOM generation — a
//! from-scratch Rust reproduction of *"On the Correctness of Metadata-Based
//! SBOM Generation: A Differential Analysis Approach"* (Yu, Song, Hu, Yin;
//! DSN 2024).
//!
//! The crate bundles everything the study needs:
//!
//! * [`metadata`] — reference and per-tool-dialect parsers for 30 metadata
//!   file types across nine ecosystems (requirements.txt, package-lock.json,
//!   Gemfile, pom.xml, go.mod, Cargo.lock, Podfile.lock, *.csproj, ...).
//! * [`generators`] — emulators of the four studied SBOM tools (Trivy, Syft,
//!   Microsoft sbom-tool, GitHub Dependency Graph), each a profile of the
//!   behaviors the paper documents, plus the paper's recommended
//!   best-practice generator.
//! * [`registry`] / [`resolver`] — a deterministic synthetic package
//!   registry and the dependency resolvers built on it, including the
//!   `pip install --dry-run` ground-truth engine.
//! * [`corpus`] — a seeded synthetic repository corpus calibrated to the
//!   paper's population statistics.
//! * [`diff`] — the differential engine: Jaccard similarity, package
//!   counts, duplicate rates, precision/recall.
//! * [`matching`] — the multi-tier component matcher for cross-tool diffs:
//!   exact PURL → alias table → ecosystem normalization → LSH-gated fuzzy,
//!   reporting matched-vs-exact Jaccard side by side (§V-E).
//! * [`attack`] — the parser-confusion attack catalog and evaluator
//!   (Table IV reproduces cell-exact).
//! * [`benchx`] — the crafted-metadata benchmark with a scoring harness.
//! * [`parallel`] — the deterministic parallel execution engine: an
//!   ordered `par_map` over seeded work items (byte-identical results for
//!   any worker count), worker-count policy (`--jobs`), and the per-phase
//!   timing profiler the experiment driver reports.
//! * [`sbomfmt`] — CycloneDX 1.5 and SPDX 2.3 document emit/parse.
//! * [`vuln`] — a synthetic advisory database and vulnerability-impact
//!   assessment, quantifying the paper's §I motivation (missed
//!   vulnerabilities and false alarms caused by wrong SBOMs).
//! * [`quality`] — NTIA-minimum / CRA-style field-checklist scoring of
//!   emitted and ingested documents: per-check pass/miss/malformed
//!   counts and a weighted 0–100 score per document.
//!
//! # Quickstart
//!
//! ```
//! use sbomdiff::generators::{SbomGenerator, ToolEmulator};
//! use sbomdiff::metadata::RepoFs;
//! use sbomdiff::registry::Registries;
//!
//! // A repository with one requirements.txt.
//! let mut repo = RepoFs::new("demo");
//! repo.add_text("requirements.txt", "numpy==1.19.2\nrequests>=2.8.1\n");
//!
//! // Scan it the way each studied tool would.
//! let registries = Registries::generate(42);
//! let trivy = ToolEmulator::trivy().generate(&repo);
//! let github = ToolEmulator::github_dg().generate(&repo);
//! let sbom_tool = ToolEmulator::sbom_tool(&registries, 0.0).generate(&repo);
//!
//! // Trivy silently drops the unpinned requests (§V-D)...
//! assert_eq!(trivy.len(), 1);
//! // ...GitHub reports the range verbatim...
//! assert_eq!(github.len(), 2);
//! // ...and sbom-tool pins the latest matching version and pulls
//! // transitive dependencies from the registry (§V-C).
//! assert!(sbom_tool.len() > 2);
//! ```

pub use sbomdiff_attack as attack;
pub use sbomdiff_benchx as benchx;
pub use sbomdiff_corpus as corpus;
pub use sbomdiff_diff as diff;
pub use sbomdiff_generators as generators;
pub use sbomdiff_matching as matching;
pub use sbomdiff_metadata as metadata;
pub use sbomdiff_parallel as parallel;
pub use sbomdiff_quality as quality;
pub use sbomdiff_registry as registry;
pub use sbomdiff_resolver as resolver;
pub use sbomdiff_sbomfmt as sbomfmt;
pub use sbomdiff_textformats as textformats;
pub use sbomdiff_types as types;
pub use sbomdiff_vuln as vuln;

pub use sbomdiff_generators::{SbomGenerator, ToolId};
pub use sbomdiff_metadata::RepoFs;
pub use sbomdiff_types::{Component, Ecosystem, Sbom, Version, VersionReq};
